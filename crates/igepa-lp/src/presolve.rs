//! LP presolve: cheap, provably-safe reductions applied before the simplex.
//!
//! Commercial solvers (the paper uses Gurobi) spend a significant fraction
//! of their speed advantage in presolve. This module implements the subset
//! of classic reductions that are valid for the model shape used throughout
//! the reproduction — `max c·x, A·x ≤ b, 0 ≤ x ≤ u`:
//!
//! * **empty / redundant rows** — rows whose maximum activity already
//!   satisfies the right-hand side are dropped; rows whose *minimum*
//!   activity exceeds it prove infeasibility immediately;
//! * **dominated variables** — a variable with non-positive objective whose
//!   coefficients are all non-negative can only consume capacity, so it is
//!   fixed to 0; a variable with non-negative objective whose coefficients
//!   are all non-positive is fixed to its upper bound;
//! * **bound tightening** — in a row whose coefficients are all
//!   non-negative, every variable's upper bound can be tightened to
//!   `rhs / a_j`;
//! * **singleton rows** — a one-variable row becomes a bound update and is
//!   removed.
//!
//! The reductions iterate to a fixed point. [`PresolvedLp::restore`] maps a
//! solution of the reduced program back to the original variable space, and
//! the objective values agree exactly (up to floating-point noise), which
//! the tests check against the unreduced simplex.

use crate::error::LpError;
use crate::problem::{LinearProgram, VarId};
use crate::simplex::SimplexSolver;
use crate::solution::LpSolution;

/// Statistics of one presolve run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Rows removed because they could never bind.
    pub redundant_rows: usize,
    /// Rows removed because they only involved one variable.
    pub singleton_rows: usize,
    /// Variables fixed at zero.
    pub fixed_at_zero: usize,
    /// Variables fixed at their upper bound.
    pub fixed_at_upper: usize,
    /// Upper bounds tightened.
    pub bounds_tightened: usize,
    /// Number of reduction passes until the fixed point.
    pub passes: usize,
}

impl PresolveStats {
    /// Total number of individual reductions applied.
    pub fn total_reductions(&self) -> usize {
        self.redundant_rows
            + self.singleton_rows
            + self.fixed_at_zero
            + self.fixed_at_upper
            + self.bounds_tightened
    }
}

/// Outcome of presolving a [`LinearProgram`].
#[derive(Debug, Clone)]
pub struct PresolvedLp {
    /// The reduced program (over the surviving variables only).
    pub reduced: LinearProgram,
    /// Original variable index of each reduced variable.
    pub kept_vars: Vec<VarId>,
    /// `(original variable, fixed value)` for every removed variable.
    pub fixed: Vec<(VarId, f64)>,
    /// Objective contribution of the fixed variables.
    pub objective_offset: f64,
    /// Number of variables in the original program.
    pub original_num_vars: usize,
    /// What was reduced.
    pub stats: PresolveStats,
}

impl PresolvedLp {
    /// Maps a solution of the reduced program back to the original
    /// variable space (fixed variables get their fixed values).
    pub fn restore(&self, reduced_values: &[f64]) -> Vec<f64> {
        let mut full = vec![0.0; self.original_num_vars];
        for (&orig, &value) in self.kept_vars.iter().zip(reduced_values.iter()) {
            full[orig] = value;
        }
        for &(orig, value) in &self.fixed {
            full[orig] = value;
        }
        full
    }

    /// Objective value in the *original* program for a reduced-space point.
    pub fn restored_objective(&self, reduced_objective: f64) -> f64 {
        reduced_objective + self.objective_offset
    }
}

/// Applies the presolve reductions until no further reduction fires.
///
/// Returns [`LpError::Infeasible`] when a row can never be satisfied and
/// [`LpError::Unbounded`] when an unbounded variable with positive objective
/// escapes every constraint.
pub fn presolve(lp: &LinearProgram) -> Result<PresolvedLp, LpError> {
    let n = lp.num_vars();
    let mut upper: Vec<f64> = lp.upper_bounds().to_vec();
    let mut fixed_value: Vec<Option<f64>> = vec![None; n];
    // Row representation we can edit: (coefficients, rhs, alive).
    let mut rows: Vec<(Vec<(VarId, f64)>, f64, bool)> = lp
        .constraints()
        .iter()
        .map(|c| (c.coefficients.clone(), c.rhs, true))
        .collect();
    let mut stats = PresolveStats::default();

    const MAX_PASSES: usize = 32;
    for pass in 0..MAX_PASSES {
        let mut changed = false;
        stats.passes = pass + 1;

        // --- Row reductions -------------------------------------------------
        for row in rows.iter_mut().filter(|r| r.2) {
            // Substitute already-fixed variables into the right-hand side.
            let mut coefficients = Vec::with_capacity(row.0.len());
            let mut rhs = row.1;
            for &(var, coeff) in &row.0 {
                match fixed_value[var] {
                    Some(value) => rhs -= coeff * value,
                    None => coefficients.push((var, coeff)),
                }
            }
            if coefficients.len() != row.0.len() {
                changed = true;
            }
            row.0 = coefficients;
            row.1 = rhs;

            // Empty row: either trivially satisfied or infeasible.
            if row.0.is_empty() {
                if row.1 < -1e-9 {
                    return Err(LpError::Infeasible);
                }
                row.2 = false;
                stats.redundant_rows += 1;
                changed = true;
                continue;
            }

            // Activity bounds over 0 ≤ x ≤ u.
            let mut max_activity = 0.0_f64;
            let mut min_activity = 0.0_f64;
            for &(var, coeff) in &row.0 {
                if coeff > 0.0 {
                    max_activity += coeff * upper[var];
                } else {
                    min_activity += coeff * upper[var];
                }
            }
            if min_activity > row.1 + 1e-9 {
                return Err(LpError::Infeasible);
            }
            if max_activity <= row.1 + 1e-12 {
                row.2 = false;
                stats.redundant_rows += 1;
                changed = true;
                continue;
            }

            // Singleton row `a·x ≤ rhs`.
            if row.0.len() == 1 {
                let (var, coeff) = row.0[0];
                if coeff > 0.0 {
                    let implied = row.1 / coeff;
                    if implied < -1e-9 {
                        return Err(LpError::Infeasible);
                    }
                    let implied = implied.max(0.0);
                    if implied < upper[var] - 1e-12 {
                        upper[var] = implied;
                        stats.bounds_tightened += 1;
                    }
                    row.2 = false;
                    stats.singleton_rows += 1;
                    changed = true;
                    continue;
                }
                // coeff < 0: with x ≥ 0 the row is either always satisfied
                // (rhs ≥ 0, handled by the redundancy check via max activity
                // = 0 ≤ rhs) or expresses a lower bound we cannot represent;
                // keep it for the simplex in that case.
            }

            // Bound tightening in all-non-negative rows.
            if row.0.iter().all(|&(_, c)| c >= 0.0) {
                for &(var, coeff) in &row.0 {
                    if coeff > 1e-12 {
                        let implied = row.1 / coeff;
                        if implied < upper[var] - 1e-9 {
                            upper[var] = implied.max(0.0);
                            stats.bounds_tightened += 1;
                            changed = true;
                        }
                    }
                }
            }
        }

        // --- Column (variable) reductions -----------------------------------
        // Sign summary of each free variable's column over the live rows.
        let mut has_positive = vec![false; n];
        let mut has_negative = vec![false; n];
        for (coefficients, _, alive) in rows.iter() {
            if !alive {
                continue;
            }
            for &(var, coeff) in coefficients {
                if coeff > 0.0 {
                    has_positive[var] = true;
                } else if coeff < 0.0 {
                    has_negative[var] = true;
                }
            }
        }
        for var in 0..n {
            if fixed_value[var].is_some() {
                continue;
            }
            let c = lp.objective(var);
            if upper[var] <= 1e-12 {
                // Bound tightening collapsed the domain to {0}.
                fixed_value[var] = Some(0.0);
                stats.fixed_at_zero += 1;
                changed = true;
            } else if c <= 0.0 && !has_negative[var] {
                // Can only consume capacity and never helps the objective.
                fixed_value[var] = Some(0.0);
                stats.fixed_at_zero += 1;
                changed = true;
            } else if c >= 0.0 && !has_positive[var] {
                // Relaxing it never hurts: push to the upper bound.
                if upper[var].is_infinite() {
                    if c > 0.0 {
                        return Err(LpError::Unbounded);
                    }
                    fixed_value[var] = Some(0.0);
                    stats.fixed_at_zero += 1;
                } else {
                    fixed_value[var] = Some(upper[var]);
                    stats.fixed_at_upper += 1;
                }
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // --- Assemble the reduced program ----------------------------------------
    let kept_vars: Vec<VarId> = (0..n).filter(|&v| fixed_value[v].is_none()).collect();
    let new_index: Vec<Option<usize>> = {
        let mut map = vec![None; n];
        for (new, &orig) in kept_vars.iter().enumerate() {
            map[orig] = Some(new);
        }
        map
    };
    let mut reduced = LinearProgram::new();
    for &orig in &kept_vars {
        reduced.add_var(lp.objective(orig), upper[orig]);
    }
    for (coefficients, rhs, alive) in rows.iter() {
        if !alive {
            continue;
        }
        let mut mapped = Vec::with_capacity(coefficients.len());
        let mut adjusted_rhs = *rhs;
        for &(var, coeff) in coefficients {
            match fixed_value[var] {
                Some(value) => adjusted_rhs -= coeff * value,
                None => mapped.push((new_index[var].expect("kept var has an index"), coeff)),
            }
        }
        if mapped.is_empty() {
            if adjusted_rhs < -1e-9 {
                return Err(LpError::Infeasible);
            }
            continue;
        }
        reduced
            .add_le_constraint(mapped, adjusted_rhs)
            .expect("mapped indices are in range");
    }

    let fixed: Vec<(VarId, f64)> = (0..n)
        .filter_map(|v| fixed_value[v].map(|value| (v, value)))
        .collect();
    let objective_offset: f64 = fixed
        .iter()
        .map(|&(v, value)| lp.objective(v) * value)
        .sum();

    Ok(PresolvedLp {
        reduced,
        kept_vars,
        fixed,
        objective_offset,
        original_num_vars: n,
        stats,
    })
}

/// Presolves, solves the reduced program with the given simplex, and maps
/// the solution back to the original variable space.
pub fn presolve_and_solve(
    lp: &LinearProgram,
    solver: &SimplexSolver,
) -> Result<LpSolution, LpError> {
    let presolved = presolve(lp)?;
    if presolved.reduced.num_vars() == 0 {
        let values = presolved.restore(&[]);
        return Ok(LpSolution {
            objective: lp.objective_value(&values),
            values,
            status: crate::solution::SolveStatus::Optimal,
            iterations: 0,
        });
    }
    let reduced_solution = solver.solve(&presolved.reduced)?;
    let values = presolved.restore(&reduced_solution.values);
    Ok(LpSolution {
        objective: lp.objective_value(&values),
        values,
        status: reduced_solution.status,
        iterations: reduced_solution.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn knapsack_like() -> LinearProgram {
        // max 3x + 5y + 0z  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, z ≤ 7
        let mut lp = LinearProgram::new();
        let x = lp.add_var(3.0, f64::INFINITY);
        let y = lp.add_var(5.0, f64::INFINITY);
        let z = lp.add_var(0.0, 10.0);
        lp.add_le_constraint([(x, 1.0)], 4.0).unwrap();
        lp.add_le_constraint([(y, 2.0)], 12.0).unwrap();
        lp.add_le_constraint([(x, 3.0), (y, 2.0)], 18.0).unwrap();
        lp.add_le_constraint([(z, 1.0)], 7.0).unwrap();
        lp
    }

    #[test]
    fn presolve_preserves_the_optimum_of_the_textbook_lp() {
        let lp = knapsack_like();
        let direct = SimplexSolver::default().solve(&lp).unwrap();
        let via_presolve = presolve_and_solve(&lp, &SimplexSolver::default()).unwrap();
        assert!((direct.objective - 36.0).abs() < 1e-6);
        assert!((via_presolve.objective - direct.objective).abs() < 1e-6);
        assert!(lp.is_feasible(&via_presolve.values, 1e-6));
    }

    #[test]
    fn zero_objective_capacity_consumers_are_fixed_at_zero() {
        let lp = knapsack_like();
        let presolved = presolve(&lp).unwrap();
        // z has zero objective and only non-negative coefficients → fixed.
        assert!(presolved
            .fixed
            .iter()
            .any(|&(v, value)| v == 2 && value == 0.0));
        assert!(presolved.stats.fixed_at_zero >= 1);
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let lp = knapsack_like();
        let presolved = presolve(&lp).unwrap();
        assert!(presolved.stats.singleton_rows >= 2);
        // The reduced program keeps only the genuinely coupling row.
        assert!(presolved.reduced.num_constraints() <= 1);
        let solved = SimplexSolver::default().solve(&presolved.reduced).unwrap();
        assert!((presolved.restored_objective(solved.objective) - 36.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_rows_are_dropped() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 2.0);
        let y = lp.add_var(1.0, 3.0);
        // Max activity 2 + 3 = 5 ≤ 100: redundant.
        lp.add_le_constraint([(x, 1.0), (y, 1.0)], 100.0).unwrap();
        lp.add_le_constraint([(x, 1.0), (y, 1.0)], 4.0).unwrap();
        let presolved = presolve(&lp).unwrap();
        assert!(presolved.stats.redundant_rows >= 1);
        let solution = presolve_and_solve(&lp, &SimplexSolver::default()).unwrap();
        assert!((solution.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_rows_are_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 5.0);
        // -x ≤ -10 means x ≥ 10, impossible with x ≤ 5.
        lp.add_le_constraint([(x, -1.0)], -10.0).unwrap();
        assert!(matches!(presolve(&lp), Err(LpError::Infeasible)));
    }

    #[test]
    fn empty_negative_row_is_infeasible() {
        let mut lp = LinearProgram::new();
        let _x = lp.add_var(1.0, 5.0);
        lp.add_le_constraint(std::iter::empty::<(usize, f64)>(), -1.0)
            .unwrap();
        assert!(matches!(presolve(&lp), Err(LpError::Infeasible)));
    }

    #[test]
    fn unconstrained_positive_variable_with_infinite_bound_is_unbounded() {
        let mut lp = LinearProgram::new();
        let _free = lp.add_var(2.0, f64::INFINITY);
        assert!(matches!(presolve(&lp), Err(LpError::Unbounded)));
    }

    #[test]
    fn unconstrained_bounded_variables_are_fixed_at_their_bound() {
        let mut lp = LinearProgram::new();
        let a = lp.add_var(2.0, 3.0);
        let b = lp.add_var(-1.0, 4.0);
        // No constraints at all.
        let presolved = presolve(&lp).unwrap();
        assert!(presolved.fixed.contains(&(a, 3.0)));
        assert!(presolved.fixed.contains(&(b, 0.0)));
        assert_eq!(presolved.reduced.num_vars(), 0);
        let solution = presolve_and_solve(&lp, &SimplexSolver::default()).unwrap();
        assert!((solution.objective - 6.0).abs() < 1e-9);
    }

    #[test]
    fn bound_tightening_caps_variables_by_their_rows() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 100.0);
        let y = lp.add_var(1.0, 100.0);
        lp.add_le_constraint([(x, 2.0), (y, 1.0)], 10.0).unwrap();
        let presolved = presolve(&lp).unwrap();
        assert!(presolved.stats.bounds_tightened >= 2);
        // x ≤ 5, y ≤ 10 after tightening.
        let xi = presolved.kept_vars.iter().position(|&v| v == x);
        let yi = presolved.kept_vars.iter().position(|&v| v == y);
        if let Some(xi) = xi {
            assert!(presolved.reduced.upper_bound(xi) <= 5.0 + 1e-9);
        }
        if let Some(yi) = yi {
            assert!(presolved.reduced.upper_bound(yi) <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn restore_places_values_at_original_indices() {
        let lp = knapsack_like();
        let presolved = presolve(&lp).unwrap();
        let reduced_solution = SimplexSolver::default().solve(&presolved.reduced).unwrap();
        let full = presolved.restore(&reduced_solution.values);
        assert_eq!(full.len(), lp.num_vars());
        assert!(lp.is_feasible(&full, 1e-6));
        assert!((lp.objective_value(&full) - 36.0).abs() < 1e-6);
    }

    #[test]
    fn presolve_agrees_with_direct_simplex_on_random_packing_lps() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..25 {
            let num_vars = rng.gen_range(2..10);
            let num_rows = rng.gen_range(1..8);
            let mut lp = LinearProgram::new();
            for _ in 0..num_vars {
                let objective = rng.gen_range(0.0..5.0);
                let upper = if rng.gen_bool(0.3) {
                    f64::INFINITY
                } else {
                    rng.gen_range(0.5..4.0)
                };
                lp.add_var(objective, upper);
            }
            for _ in 0..num_rows {
                let mut coefficients: Vec<(usize, f64)> = Vec::new();
                for v in 0..num_vars {
                    if rng.gen_bool(0.6) {
                        coefficients.push((v, rng.gen_range(0.1..3.0)));
                    }
                }
                let rhs = rng.gen_range(1.0..10.0);
                lp.add_le_constraint(coefficients, rhs).unwrap();
            }
            // Ensure boundedness: give every infinite-bound variable a row.
            for v in 0..num_vars {
                if lp.upper_bound(v).is_infinite() {
                    lp.add_le_constraint([(v, 1.0)], rng.gen_range(1.0..6.0))
                        .unwrap();
                }
            }
            let direct = SimplexSolver::default().solve(&lp).unwrap();
            let presolved = presolve_and_solve(&lp, &SimplexSolver::default()).unwrap();
            assert!(
                (direct.objective - presolved.objective).abs() < 1e-6,
                "trial {trial}: direct {} vs presolved {}",
                direct.objective,
                presolved.objective
            );
            assert!(lp.is_feasible(&presolved.values, 1e-6), "trial {trial}");
        }
    }
}
