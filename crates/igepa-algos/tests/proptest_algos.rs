//! Property-based tests for the arrangement algorithms: feasibility on
//! arbitrary workloads, dominance relations that must always hold, and the
//! Theorem 2 guarantee on instances small enough for the exact solver.

use igepa_algos::{
    ArrangementAlgorithm, ExactIlp, GreedyArrangement, LocalSearch, LpPacking, OnlineGreedy,
    RandomU, RandomV,
};
use igepa_datagen::{generate_synthetic, SyntheticConfig};
use proptest::prelude::*;

fn small_config_strategy() -> impl Strategy<Value = SyntheticConfig> {
    (
        3usize..10,
        6usize..30,
        1usize..5,
        1usize..4,
        0.0f64..0.8,
        0.0f64..0.9,
        2usize..6,
    )
        .prop_map(
            |(events, users, max_cv, max_cu, pcf, pdeg, bids)| SyntheticConfig {
                num_events: events,
                num_users: users,
                max_event_capacity: max_cv,
                max_user_capacity: max_cu,
                p_conflict: pcf,
                p_friend: pdeg,
                bids_per_user: bids,
                conflict_group_width: 3,
                ..SyntheticConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Feasibility of every algorithm, including the extensions, on random
    /// workloads (the core qualitative requirement of Definition 4).
    #[test]
    fn all_algorithms_feasible(config in small_config_strategy(), seed in 0u64..200) {
        let instance = generate_synthetic(&config, seed);
        let algorithms: Vec<Box<dyn ArrangementAlgorithm>> = vec![
            Box::new(LpPacking::default()),
            Box::new(LpPacking::theoretical()),
            Box::new(GreedyArrangement),
            Box::new(RandomU),
            Box::new(RandomV),
            Box::new(LocalSearch::default()),
            Box::new(OnlineGreedy::default()),
        ];
        for algorithm in algorithms {
            let arrangement = algorithm.run_seeded(&instance, seed);
            prop_assert!(arrangement.is_feasible(&instance), "{} infeasible", algorithm.name());
        }
    }

    /// Local search never does worse than the greedy arrangement it refines.
    #[test]
    fn local_search_dominates_greedy(config in small_config_strategy(), seed in 0u64..200) {
        let instance = generate_synthetic(&config, seed);
        let greedy = GreedyArrangement.run_seeded(&instance, seed).utility(&instance).total;
        let refined = LocalSearch::default().run_seeded(&instance, seed).utility(&instance).total;
        prop_assert!(refined + 1e-9 >= greedy);
    }

    /// The exact ILP optimum dominates every heuristic, and LP-packing with
    /// α = ½ stays above the ¼ guarantee of Theorem 2 (averaged over seeds,
    /// matching the expectation in the theorem statement).
    #[test]
    fn exact_dominates_and_theorem_two_holds(config in small_config_strategy(), seed in 0u64..100) {
        let instance = generate_synthetic(&config, seed);
        let (_, opt) = ExactIlp::default().solve_with_value(&instance);
        prop_assume!(opt > 1e-9);

        for algorithm in [
            &GreedyArrangement as &dyn ArrangementAlgorithm,
            &RandomU,
            &RandomV,
            &OnlineGreedy::default(),
        ] {
            let utility = algorithm.run_seeded(&instance, seed).utility(&instance).total;
            prop_assert!(opt + 1e-6 >= utility, "{} beat the optimum", algorithm.name());
        }

        let theoretical = LpPacking::theoretical();
        let repetitions = 8;
        let mean: f64 = (0..repetitions)
            .map(|rep| theoretical.run_seeded(&instance, rep).utility(&instance).total)
            .sum::<f64>()
            / repetitions as f64;
        prop_assert!(
            mean >= 0.25 * opt - 1e-9,
            "Theorem 2 violated: mean {mean} vs bound {}",
            0.25 * opt
        );
    }
}
