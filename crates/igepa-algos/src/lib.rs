//! # igepa-algos — arrangement algorithms for IGEPA
//!
//! The paper's contribution and every comparison point of its evaluation:
//!
//! | Algorithm | Paper role | Type |
//! |---|---|---|
//! | [`LpPacking`] | Algorithm 1, the proposed ¼-approximation | randomised, LP-guided |
//! | [`GreedyArrangement`] (GG) | strongest baseline (extension of Greedy-GEACC) | deterministic greedy |
//! | [`RandomU`], [`RandomV`] | randomized baselines from GEACC | randomised |
//! | [`ExactIlp`] | optimal solution on small instances (ratio study) | branch & bound |
//! | [`LocalSearch`], [`OnlineGreedy`] | extensions/ablations beyond the paper | heuristic |
//!
//! All algorithms implement [`ArrangementAlgorithm`] and always return
//! feasible arrangements.
//!
//! ```
//! use igepa_algos::{ArrangementAlgorithm, GreedyArrangement, LpPacking, RandomU};
//! use igepa_datagen::{generate_synthetic, SyntheticConfig};
//!
//! let instance = generate_synthetic(&SyntheticConfig::tiny(), 1);
//! let lp = LpPacking::default().run_seeded(&instance, 1);
//! let gg = GreedyArrangement.run_seeded(&instance, 1);
//! let ru = RandomU.run_seeded(&instance, 1);
//! assert!(lp.is_feasible(&instance));
//! assert!(gg.is_feasible(&instance));
//! assert!(ru.is_feasible(&instance));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bottleneck;
pub mod exact;
pub mod greedy;
pub mod lagrangian;
pub mod local_search;
pub mod lp_deterministic;
pub mod lp_packing;
pub mod online_greedy;
pub mod online_ranking;
pub mod portfolio;
pub mod randomized;
pub mod repair;
pub mod runner;
pub mod simulated_annealing;
pub mod tabu_search;
pub mod warm_start;

pub use bottleneck::BottleneckGreedy;
pub use exact::ExactIlp;
pub use greedy::GreedyArrangement;
pub use lagrangian::Lagrangian;
pub use local_search::LocalSearch;
pub use lp_deterministic::LpDeterministic;
pub use lp_packing::{LpBackend, LpPacking};
pub use online_greedy::OnlineGreedy;
pub use online_ranking::OnlineRanking;
pub use portfolio::Portfolio;
pub use randomized::{RandomU, RandomV};
pub use repair::{
    admit_greedily_in, can_assign_in, patch_region, AssignmentState, ComponentSlots,
    ComponentState, PatchOps,
};
pub use runner::{run_and_record, run_repeated, ArrangementAlgorithm, RunRecord};
pub use simulated_annealing::SimulatedAnnealing;
pub use tabu_search::TabuSearch;
pub use warm_start::{
    admit_greedily, admit_greedily_with, can_assign, carry_over_feasible, WarmStart,
};
