//! The common algorithm interface and seeded execution helpers.

use igepa_core::{Arrangement, ArrangementStats, Instance};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// An event-participant arrangement algorithm.
///
/// Every algorithm consumes an [`Instance`] and produces a *feasible*
/// [`Arrangement`]. Randomised algorithms draw from the supplied RNG so that
/// experiments are reproducible; deterministic algorithms simply ignore it.
pub trait ArrangementAlgorithm {
    /// Short, stable name used in reports (e.g. `"LP-packing"`).
    fn name(&self) -> &'static str;

    /// Runs the algorithm with the given randomness source.
    fn run_with_rng(&self, instance: &Instance, rng: &mut dyn RngCore) -> Arrangement;

    /// Runs the algorithm with a seeded RNG.
    fn run_seeded(&self, instance: &Instance, seed: u64) -> Arrangement {
        let mut rng = StdRng::seed_from_u64(seed);
        self.run_with_rng(instance, &mut rng)
    }
}

/// Result of one algorithm execution, as recorded by experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Algorithm name.
    pub algorithm: String,
    /// Seed used for the run.
    pub seed: u64,
    /// Utility achieved.
    pub utility: f64,
    /// Number of (event, user) pairs assigned.
    pub num_pairs: usize,
    /// Whether the output was feasible (always expected to be `true`).
    pub feasible: bool,
    /// Wall-clock runtime in seconds.
    pub runtime_seconds: f64,
}

/// Runs an algorithm once and records utility, size and runtime.
pub fn run_and_record(
    algorithm: &dyn ArrangementAlgorithm,
    instance: &Instance,
    seed: u64,
) -> RunRecord {
    let start = std::time::Instant::now();
    let arrangement = algorithm.run_seeded(instance, seed);
    let runtime_seconds = start.elapsed().as_secs_f64();
    let stats = ArrangementStats::of(instance, &arrangement);
    RunRecord {
        algorithm: algorithm.name().to_string(),
        seed,
        utility: stats.utility,
        num_pairs: stats.num_pairs,
        feasible: stats.feasible,
        runtime_seconds,
    }
}

/// Runs an algorithm over `repetitions` seeds (`base_seed`, `base_seed + 1`,
/// …) and returns the mean utility together with the individual records.
pub fn run_repeated(
    algorithm: &dyn ArrangementAlgorithm,
    instance: &Instance,
    base_seed: u64,
    repetitions: usize,
) -> (f64, Vec<RunRecord>) {
    let records: Vec<RunRecord> = (0..repetitions.max(1))
        .map(|i| run_and_record(algorithm, instance, base_seed + i as u64))
        .collect();
    // lint:allow(no-raw-float-accum): experiment-harness mean over per-run records in repetition order; reporting only, not served state
    let mean = records.iter().map(|r| r.utility).sum::<f64>() / records.len() as f64;
    (mean, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::{AttributeVector, ConstantInterest, EventId, NeverConflict, UserId};

    /// A trivial algorithm that assigns every user their first bid if the
    /// event still has room; used to exercise the runner plumbing.
    struct FirstBid;

    impl ArrangementAlgorithm for FirstBid {
        fn name(&self) -> &'static str {
            "first-bid"
        }

        fn run_with_rng(&self, instance: &Instance, _rng: &mut dyn RngCore) -> Arrangement {
            let mut m = Arrangement::empty_for(instance);
            for user in instance.users() {
                if let Some(&v) = user.bids.first() {
                    if m.load_of(v) < instance.event(v).capacity && user.capacity > 0 {
                        m.assign(v, user.id);
                    }
                }
            }
            m
        }
    }

    fn tiny_instance() -> Instance {
        let mut b = Instance::builder();
        let v0 = b.add_event(1, AttributeVector::empty());
        let v1 = b.add_event(2, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![v0, v1]);
        b.add_user(1, AttributeVector::empty(), vec![v0]);
        b.interaction_scores(vec![0.5, 0.5]);
        b.build(&NeverConflict, &ConstantInterest(1.0)).unwrap()
    }

    #[test]
    fn run_and_record_reports_feasible_result() {
        let inst = tiny_instance();
        let rec = run_and_record(&FirstBid, &inst, 3);
        assert_eq!(rec.algorithm, "first-bid");
        assert!(rec.feasible);
        assert_eq!(rec.num_pairs, 1); // second user loses the capacity race
        assert!(rec.utility > 0.0);
        assert!(rec.runtime_seconds >= 0.0);
    }

    #[test]
    fn run_repeated_averages_over_seeds() {
        let inst = tiny_instance();
        let (mean, records) = run_repeated(&FirstBid, &inst, 0, 5);
        assert_eq!(records.len(), 5);
        // FirstBid is deterministic, so the mean equals any single utility.
        assert!((mean - records[0].utility).abs() < 1e-12);
        assert!(records.iter().all(|r| r.feasible));
    }

    #[test]
    fn run_seeded_is_deterministic() {
        let inst = tiny_instance();
        let a = FirstBid.run_seeded(&inst, 10);
        let b = FirstBid.run_seeded(&inst, 10);
        assert_eq!(a, b);
        assert!(a.contains(EventId::new(0), UserId::new(0)));
    }
}
