//! Warm-start re-solving: reuse a previous arrangement when the instance
//! changed only slightly.
//!
//! The serving engine (`igepa-engine`) maintains a current arrangement
//! under a stream of instance deltas. When its cheap greedy patching is no
//! longer good enough it escalates to a full re-solve — but a from-scratch
//! solve throws away everything the previous arrangement got right. The
//! [`WarmStart`] extension trait lets algorithms accept the previous
//! arrangement as a starting point.
//!
//! Every [`ArrangementAlgorithm`] gets a default (cold-start) impl, so the
//! engine can hold any solver as `Box<dyn WarmStart>`; algorithms with a
//! natural notion of seeding override the default:
//!
//! * [`GreedyArrangement`] replays the still-feasible previous pairs first
//!   (in weight order), then continues the usual global greedy pass;
//! * [`LocalSearch`] starts its neighbourhood walk from the repaired
//!   previous arrangement instead of from the greedy baseline.

use crate::greedy::GreedyArrangement;
use crate::local_search::LocalSearch;
use crate::runner::ArrangementAlgorithm;
use igepa_core::{Arrangement, EventId, Instance, UserId};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Extension of [`ArrangementAlgorithm`] with warm-start re-solving.
///
/// The default implementation ignores the previous arrangement and runs the
/// algorithm cold, so implementing the trait is a one-liner for solvers
/// without a meaningful warm start.
pub trait WarmStart: ArrangementAlgorithm {
    /// Re-solves `instance`, optionally exploiting `previous` (an
    /// arrangement for an earlier version of the instance; it may be
    /// infeasible for the current one and must be re-validated).
    fn resolve_with_rng(
        &self,
        instance: &Instance,
        previous: &Arrangement,
        rng: &mut dyn RngCore,
    ) -> Arrangement {
        let _ = previous;
        self.run_with_rng(instance, rng)
    }

    /// Seeded convenience wrapper around
    /// [`resolve_with_rng`](WarmStart::resolve_with_rng).
    fn resolve_seeded(
        &self,
        instance: &Instance,
        previous: &Arrangement,
        seed: u64,
    ) -> Arrangement {
        let mut rng = StdRng::seed_from_u64(seed);
        self.resolve_with_rng(instance, previous, &mut rng)
    }
}

/// Sorts candidate pairs by decreasing weight (ties broken by ascending
/// `(event, user)` so results are deterministic even with equal or NaN
/// weights) and admits each pair that keeps `arrangement` feasible.
/// Returns the number of pairs admitted. This is the shared greedy
/// admission kernel of GG, warm-start completion and the engine's repair
/// patch.
pub fn admit_greedily(
    instance: &Instance,
    arrangement: &mut Arrangement,
    candidates: impl IntoIterator<Item = (EventId, UserId)>,
) -> usize {
    admit_greedily_with(instance, arrangement, candidates, |_, _| {})
}

/// [`admit_greedily`] with an observer invoked for every pair actually
/// admitted, in admission order. The serving engine threads its
/// incremental utility tracker through here so repair-path admissions
/// update the running sums without a post-hoc re-scan.
pub fn admit_greedily_with(
    instance: &Instance,
    arrangement: &mut Arrangement,
    candidates: impl IntoIterator<Item = (EventId, UserId)>,
    on_admit: impl FnMut(EventId, UserId),
) -> usize {
    crate::repair::admit_greedily_in(instance, arrangement, candidates, on_admit)
}

/// Extracts the pairs of `previous` that remain feasible for `instance`,
/// admitting them greedily in decreasing weight order. Pairs whose event or
/// user no longer exists, whose bid was revoked, that overflow a capacity
/// or that conflict are dropped.
pub fn carry_over_feasible(instance: &Instance, previous: &Arrangement) -> Arrangement {
    let mut kept = Arrangement::empty_for(instance);
    admit_greedily(
        instance,
        &mut kept,
        previous.pairs().filter(|&(v, u)| {
            v.index() < instance.num_events() && u.index() < instance.num_users()
        }),
    );
    kept
}

/// Whether adding `(event, user)` keeps `arrangement` feasible for
/// `instance` (bid, both capacities, conflicts).
pub fn can_assign(
    instance: &Instance,
    arrangement: &Arrangement,
    event: EventId,
    user: UserId,
) -> bool {
    crate::repair::can_assign_in(instance, arrangement, event, user)
}

impl WarmStart for GreedyArrangement {
    fn resolve_with_rng(
        &self,
        instance: &Instance,
        previous: &Arrangement,
        _rng: &mut dyn RngCore,
    ) -> Arrangement {
        // Seed with the surviving previous pairs, then run the usual global
        // greedy pass over all bid pairs to fill what changed.
        let mut arrangement = carry_over_feasible(instance, previous);
        admit_greedily(instance, &mut arrangement, instance.bid_pairs());
        arrangement
    }
}

impl WarmStart for LocalSearch {
    fn resolve_with_rng(
        &self,
        instance: &Instance,
        previous: &Arrangement,
        rng: &mut dyn RngCore,
    ) -> Arrangement {
        // Complete the carried-over pairs greedily, then let the local
        // search refine from there.
        let mut arrangement = GreedyArrangement.resolve_with_rng(instance, previous, rng);
        self.refine(instance, &mut arrangement);
        arrangement
    }
}

impl WarmStart for crate::lp_packing::LpPacking {
    /// Dual warm start: seed the packing LP's row prices from the previous
    /// arrangement (saturated events priced at their marginal attendee
    /// weight, see [`crate::lp_packing::LpPacking::event_prices_from`]),
    /// then round as usual. On the exact simplex backend the seed is
    /// ignored and this is a cold solve.
    fn resolve_with_rng(
        &self,
        instance: &Instance,
        previous: &Arrangement,
        rng: &mut dyn RngCore,
    ) -> Arrangement {
        self.resolve_from_previous(instance, previous, rng)
    }
}

// Cold-start impls for the rest of the roster, so any solver can sit behind
// `Box<dyn WarmStart>` in the engine.
impl WarmStart for crate::lp_deterministic::LpDeterministic {}
impl WarmStart for crate::randomized::RandomU {}
impl WarmStart for crate::randomized::RandomV {}
impl WarmStart for crate::exact::ExactIlp {}
impl WarmStart for crate::bottleneck::BottleneckGreedy {}
impl WarmStart for crate::lagrangian::Lagrangian {}
impl WarmStart for crate::online_greedy::OnlineGreedy {}
impl WarmStart for crate::online_ranking::OnlineRanking {}
impl WarmStart for crate::portfolio::Portfolio {}
impl WarmStart for crate::simulated_annealing::SimulatedAnnealing {}
impl WarmStart for crate::tabu_search::TabuSearch {}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::{
        AttributeVector, CapacityTarget, ConstantInterest, InstanceDelta, NeverConflict,
    };

    fn instance_with_caps(event_caps: &[usize], user_cap: usize) -> Instance {
        let mut b = Instance::builder();
        let events: Vec<EventId> = event_caps
            .iter()
            .map(|&c| b.add_event(c, AttributeVector::empty()))
            .collect();
        b.add_user(user_cap, AttributeVector::empty(), events.clone());
        b.add_user(user_cap, AttributeVector::empty(), events);
        b.interaction_scores(vec![0.5, 0.5]);
        b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
    }

    #[test]
    fn carry_over_drops_pairs_made_infeasible() {
        let mut inst = instance_with_caps(&[2, 2], 2);
        let full = GreedyArrangement.run_seeded(&inst, 0);
        assert_eq!(full.len(), 4);
        // Shrink event 0 to capacity 1: one of its two pairs must go.
        inst.apply_delta(
            &InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(EventId::new(0)),
                capacity: 1,
            },
            &NeverConflict,
            &ConstantInterest(0.5),
        )
        .unwrap();
        let kept = carry_over_feasible(&inst, &full);
        assert!(kept.is_feasible(&inst));
        assert_eq!(kept.load_of(EventId::new(0)), 1);
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn warm_greedy_matches_cold_greedy_quality_on_static_instance() {
        let inst = instance_with_caps(&[1, 2, 1], 2);
        let cold = GreedyArrangement.run_seeded(&inst, 0);
        let warm = GreedyArrangement.resolve_seeded(&inst, &cold, 0);
        assert!(warm.is_feasible(&inst));
        assert!(warm.utility_value(&inst) >= cold.utility_value(&inst) - 1e-12);
    }

    #[test]
    fn warm_start_handles_grown_instance() {
        let mut inst = instance_with_caps(&[1], 3);
        let previous = GreedyArrangement.run_seeded(&inst, 0);
        inst.apply_delta(
            &InstanceDelta::AddEvent {
                capacity: 2,
                attrs: AttributeVector::empty(),
            },
            &NeverConflict,
            &ConstantInterest(0.5),
        )
        .unwrap();
        // Nobody bids for the new event yet; warm solve must stay feasible.
        let warm = GreedyArrangement.resolve_seeded(&inst, &previous, 0);
        assert!(warm.is_feasible(&inst));
        assert_eq!(warm.len(), previous.len());
    }

    #[test]
    fn default_impl_is_cold_start() {
        let inst = instance_with_caps(&[2, 2], 2);
        let previous = Arrangement::empty_for(&inst);
        let warm = crate::randomized::RandomU.resolve_seeded(&inst, &previous, 42);
        let cold = crate::randomized::RandomU.run_seeded(&inst, 42);
        assert_eq!(warm, cold);
    }

    /// A contended instance: one hot event everyone wants plus a spare.
    fn contended_instance(num_users: usize) -> Instance {
        let mut b = igepa_core::Instance::builder();
        let hot = b.add_event(2, igepa_core::AttributeVector::empty());
        let spare = b.add_event(num_users, igepa_core::AttributeVector::empty());
        for _ in 0..num_users {
            b.add_user(2, igepa_core::AttributeVector::empty(), vec![hot, spare]);
        }
        b.interaction_scores((0..num_users).map(|u| (u as f64 * 0.17) % 1.0).collect());
        b.build(
            &igepa_core::NeverConflict,
            &igepa_core::ConstantInterest(0.5),
        )
        .unwrap()
    }

    #[test]
    fn lp_packing_dual_warm_start_is_feasible_and_deterministic() {
        use crate::lp_packing::{LpBackend, LpPacking};
        let inst = contended_instance(12);
        let algo = LpPacking::with_backend(LpBackend::DualSubgradient { rounds: 300 });
        let previous = algo.run_seeded(&inst, 3);
        let warm_a = algo.resolve_seeded(&inst, &previous, 4);
        let warm_b = algo.resolve_seeded(&inst, &previous, 4);
        assert!(warm_a.is_feasible(&inst));
        assert_eq!(warm_a, warm_b, "warm resolve must be deterministic");
    }

    #[test]
    fn lp_packing_event_prices_mark_saturated_events() {
        use crate::lp_packing::LpPacking;
        let inst = contended_instance(6);
        let mut previous = Arrangement::empty_for(&inst);
        // Fill the hot event (capacity 2) and leave the spare unsaturated.
        previous.assign(EventId::new(0), UserId::new(0));
        previous.assign(EventId::new(0), UserId::new(1));
        previous.assign(EventId::new(1), UserId::new(2));
        let prices = LpPacking::event_prices_from(&inst, &previous);
        assert_eq!(prices.len(), 2);
        let expected = inst
            .weight(EventId::new(0), UserId::new(0))
            .min(inst.weight(EventId::new(0), UserId::new(1)));
        assert!((prices[0] - expected).abs() < 1e-12);
        assert_eq!(prices[1], 0.0, "unsaturated events stay free");
    }

    #[test]
    fn lp_packing_warm_start_retains_quality_on_static_instance() {
        use crate::lp_packing::{LpBackend, LpPacking};
        let inst = contended_instance(16);
        let strong = LpPacking::with_backend(LpBackend::DualSubgradient { rounds: 1200 });
        let cold_strong = strong.run_seeded(&inst, 7);
        // A warm resolve with FAR fewer subgradient rounds, seeded by the
        // strong solution's saturation pattern, must stay competitive.
        let quick = LpPacking::with_backend(LpBackend::DualSubgradient { rounds: 60 });
        let warm = quick.resolve_seeded(&inst, &cold_strong, 7);
        assert!(warm.is_feasible(&inst));
        let cold_value = cold_strong.utility_value(&inst);
        let warm_value = warm.utility_value(&inst);
        assert!(
            warm_value >= 0.9 * cold_value,
            "warm {warm_value} fell too far below cold {cold_value}"
        );
    }

    #[test]
    fn lp_packing_simplex_warm_start_is_feasible_and_deterministic() {
        use crate::lp_packing::{LpBackend, LpPacking};
        let inst = contended_instance(4);
        let algo = LpPacking::with_backend(LpBackend::Simplex);
        let previous = algo.run_seeded(&inst, 1);
        let warm_a = algo.resolve_seeded(&inst, &previous, 2);
        let warm_b = algo.resolve_seeded(&inst, &previous, 2);
        assert!(warm_a.is_feasible(&inst));
        assert_eq!(warm_a, warm_b, "warm resolve must be deterministic");
    }

    #[test]
    fn lp_packing_simplex_warm_start_matches_the_cold_lp_value() {
        use crate::lp_packing::{LpBackend, LpPacking};
        use igepa_core::AdmissibleSetIndex;
        let inst = contended_instance(10);
        let algo = LpPacking::with_backend(LpBackend::Simplex);
        let admissible = AdmissibleSetIndex::build(&inst).unwrap();
        let cold = algo.solve_benchmark_lp(&inst, &admissible);
        let previous = algo.run_seeded(&inst, 5);
        let warm = algo.solve_benchmark_lp_warm(&inst, &admissible, Some(&previous));
        // The warm start changes where the simplex begins, never where it
        // ends: the fractional optima carry the same objective value.
        let value = |fractional: &Vec<Vec<(Vec<EventId>, f64)>>| -> f64 {
            fractional
                .iter()
                .enumerate()
                .map(|(u, sets)| {
                    sets.iter()
                        .map(|(s, x)| x * inst.set_weight(UserId::new(u), s))
                        .sum::<f64>()
                })
                .sum()
        };
        let cold_value = value(&cold);
        let warm_value = value(&warm);
        assert!(
            (warm_value - cold_value).abs() < 1e-7,
            "warm {warm_value} vs cold {cold_value}"
        );
    }
}
