//! GG — the global greedy baseline (extension of Greedy-GEACC).
//!
//! The paper compares LP-packing against "GG (an extension of the
//! Greedy-GEACC algorithm)" from She et al.'s conflict-aware arrangement
//! work. GG considers every candidate `(event, user)` bid pair, ordered by
//! decreasing weight `w(u, v) = β·SI + (1−β)·D(G, u)`, and admits a pair
//! whenever doing so keeps the arrangement feasible (event capacity, user
//! capacity, and no conflict with the user's already-assigned events).

use crate::runner::ArrangementAlgorithm;
use igepa_core::{Arrangement, Instance};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The GG greedy arrangement algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreedyArrangement;

impl ArrangementAlgorithm for GreedyArrangement {
    fn name(&self) -> &'static str {
        "GG"
    }

    fn run_with_rng(&self, instance: &Instance, _rng: &mut dyn RngCore) -> Arrangement {
        // All bid pairs ordered by decreasing weight (ties broken by
        // (event, user)), each admitted while it keeps the arrangement
        // feasible — the shared greedy admission kernel.
        let mut arrangement = Arrangement::empty_for(instance);
        crate::warm_start::admit_greedily(instance, &mut arrangement, instance.bid_pairs());
        arrangement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::{
        AttributeVector, ConstantInterest, EventId, Instance, NeverConflict, PairSetConflict,
        TableInterest, UserId,
    };

    #[test]
    fn greedy_picks_the_heaviest_pairs_first() {
        // One event of capacity 1, two users; user 0 has higher weight.
        let mut b = Instance::builder();
        let v0 = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![v0]);
        b.add_user(1, AttributeVector::empty(), vec![v0]);
        b.interaction_scores(vec![1.0, 0.0]);
        let mut interest = TableInterest::zeros(1, 2);
        interest.set(v0, UserId::new(0), 0.9);
        interest.set(v0, UserId::new(1), 0.1);
        let inst = b.build(&NeverConflict, &interest).unwrap();
        let m = GreedyArrangement.run_seeded(&inst, 0);
        assert!(m.contains(v0, UserId::new(0)));
        assert!(!m.contains(v0, UserId::new(1)));
    }

    #[test]
    fn greedy_respects_conflicts() {
        let mut b = Instance::builder();
        let v0 = b.add_event(5, AttributeVector::empty());
        let v1 = b.add_event(5, AttributeVector::empty());
        b.add_user(2, AttributeVector::empty(), vec![v0, v1]);
        b.interaction_scores(vec![0.3]);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        let inst = b.build(&sigma, &ConstantInterest(0.7)).unwrap();
        let m = GreedyArrangement.run_seeded(&inst, 0);
        assert_eq!(m.len(), 1);
        assert!(m.is_feasible(&inst));
    }

    #[test]
    fn greedy_respects_user_capacity() {
        let mut b = Instance::builder();
        let events: Vec<EventId> = (0..4)
            .map(|_| b.add_event(5, AttributeVector::empty()))
            .collect();
        b.add_user(2, AttributeVector::empty(), events.clone());
        b.interaction_scores(vec![0.5]);
        let inst = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        let m = GreedyArrangement.run_seeded(&inst, 0);
        assert_eq!(m.len(), 2);
        assert!(m.is_feasible(&inst));
    }

    #[test]
    fn greedy_is_deterministic() {
        let inst = {
            let mut b = Instance::builder();
            let v0 = b.add_event(2, AttributeVector::empty());
            let v1 = b.add_event(1, AttributeVector::empty());
            b.add_user(1, AttributeVector::empty(), vec![v0, v1]);
            b.add_user(1, AttributeVector::empty(), vec![v0, v1]);
            b.interaction_scores(vec![0.4, 0.6]);
            b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
        };
        assert_eq!(
            GreedyArrangement.run_seeded(&inst, 1),
            GreedyArrangement.run_seeded(&inst, 999)
        );
    }

    #[test]
    fn greedy_can_be_suboptimal_by_committing_early() {
        // Classic greedy trap: the heaviest pair blocks two medium pairs.
        // Event a (cap 1) is wanted by user 0 (weight 1.0) and user 1
        // (weight 0.9); event b (cap 1) is wanted only by user 0 (weight
        // 0.8). Greedy gives a→0 then b cannot host user 1 (no bid), so the
        // optimum a→1, b→0 (1.7) beats greedy... unless user capacity lets
        // user 0 take both. Restrict user 0 to capacity 1.
        let mut b = Instance::builder();
        let a = b.add_event(1, AttributeVector::empty());
        let eb = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![a, eb]);
        b.add_user(1, AttributeVector::empty(), vec![a]);
        b.interaction_scores(vec![0.0, 0.0]);
        let mut interest = TableInterest::zeros(2, 2);
        interest.set(a, UserId::new(0), 1.0);
        interest.set(a, UserId::new(1), 0.9);
        interest.set(eb, UserId::new(0), 0.8);
        let mut builder = b;
        builder.beta(1.0);
        let inst = builder.build(&NeverConflict, &interest).unwrap();
        let m = GreedyArrangement.run_seeded(&inst, 0);
        // Greedy assigns a→0 (weight 1.0) and then nothing else for user 0;
        // user 1 cannot be placed. Utility 1.0 < optimal 1.7.
        assert!((m.utility(&inst).total - 1.0).abs() < 1e-9);
        assert!(m.is_feasible(&inst));
    }
}
