//! Simulated annealing over feasible arrangements (extension / ablation).
//!
//! A metaheuristic comparison point that is *not* in the paper: it explores
//! the feasible region with random add / remove / swap moves and a
//! Metropolis acceptance rule under a geometrically cooled temperature.
//! Every visited state is feasible by construction, so the best state seen
//! is always a valid arrangement. The experiment harness uses it to show
//! how much of LP-packing's advantage comes from the LP guidance rather
//! than from sheer local exploration.

use crate::greedy::GreedyArrangement;
use crate::runner::ArrangementAlgorithm;
use igepa_core::{Arrangement, EventId, Instance, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Simulated annealing configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatedAnnealing {
    /// Number of proposed moves.
    pub iterations: usize,
    /// Initial temperature (in utility units).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied every iteration.
    pub cooling: f64,
    /// Whether to start from the GG greedy arrangement (otherwise empty).
    pub warm_start: bool,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            iterations: 20_000,
            initial_temperature: 1.0,
            cooling: 0.9995,
            warm_start: true,
        }
    }
}

/// A candidate move on the current arrangement.
enum Move {
    Add { v: EventId, u: UserId },
    Remove { v: EventId, u: UserId },
    Swap { out: EventId, v: EventId, u: UserId },
}

impl SimulatedAnnealing {
    /// A cheap configuration for tests and tiny instances.
    pub fn quick() -> Self {
        SimulatedAnnealing {
            iterations: 2_000,
            ..Self::default()
        }
    }

    /// Proposes a random move for a random user; `None` when the drawn user
    /// admits no move of the drawn kind.
    fn propose(
        &self,
        instance: &Instance,
        arrangement: &Arrangement,
        rng: &mut dyn RngCore,
    ) -> Option<Move> {
        if instance.num_users() == 0 {
            return None;
        }
        let user_index = (rng.next_u64() % instance.num_users() as u64) as usize;
        let user = instance.user(UserId::new(user_index));
        if user.bids.is_empty() {
            return None;
        }
        let current = arrangement.events_of(user.id).to_vec();
        let kind = rng.next_u64() % 3;
        match kind {
            // Add a random feasible bid.
            0 => {
                if current.len() >= user.capacity {
                    return None;
                }
                let candidates: Vec<EventId> = user
                    .bids
                    .iter()
                    .copied()
                    .filter(|&v| {
                        !arrangement.contains(v, user.id)
                            && arrangement.load_of(v) < instance.event(v).capacity
                            && !current
                                .iter()
                                .any(|&w| instance.conflicts().conflicts(w, v))
                    })
                    .collect();
                if candidates.is_empty() {
                    return None;
                }
                let v = candidates[(rng.next_u64() % candidates.len() as u64) as usize];
                Some(Move::Add { v, u: user.id })
            }
            // Remove a random currently assigned event.
            1 => {
                if current.is_empty() {
                    return None;
                }
                let v = current[(rng.next_u64() % current.len() as u64) as usize];
                Some(Move::Remove { v, u: user.id })
            }
            // Swap one assigned event for another bid.
            _ => {
                if current.is_empty() {
                    return None;
                }
                let out = current[(rng.next_u64() % current.len() as u64) as usize];
                let candidates: Vec<EventId> = user
                    .bids
                    .iter()
                    .copied()
                    .filter(|&v| {
                        v != out
                            && !arrangement.contains(v, user.id)
                            && arrangement.load_of(v) < instance.event(v).capacity
                            && !current
                                .iter()
                                .filter(|&&w| w != out)
                                .any(|&w| instance.conflicts().conflicts(w, v))
                    })
                    .collect();
                if candidates.is_empty() {
                    return None;
                }
                let v = candidates[(rng.next_u64() % candidates.len() as u64) as usize];
                Some(Move::Swap { out, v, u: user.id })
            }
        }
    }

    /// Utility change of applying the move.
    fn gain(&self, instance: &Instance, mv: &Move) -> f64 {
        match mv {
            Move::Add { v, u } => instance.weight(*v, *u),
            Move::Remove { v, u } => -instance.weight(*v, *u),
            Move::Swap { out, v, u } => instance.weight(*v, *u) - instance.weight(*out, *u),
        }
    }

    fn apply(&self, arrangement: &mut Arrangement, mv: &Move) {
        match mv {
            Move::Add { v, u } => {
                arrangement.assign(*v, *u);
            }
            Move::Remove { v, u } => {
                arrangement.unassign(*v, *u);
            }
            Move::Swap { out, v, u } => {
                arrangement.unassign(*out, *u);
                arrangement.assign(*v, *u);
            }
        }
    }

    /// Anneals starting from `start`, returning the best arrangement found.
    pub fn anneal(
        &self,
        instance: &Instance,
        start: Arrangement,
        rng: &mut dyn RngCore,
    ) -> Arrangement {
        let mut current = start;
        let mut current_utility = current.utility(instance).total;
        let mut best = current.clone();
        let mut best_utility = current_utility;
        let mut temperature = self.initial_temperature.max(1e-9);

        for _ in 0..self.iterations {
            if let Some(mv) = self.propose(instance, &current, rng) {
                let gain = self.gain(instance, &mv);
                let accept = if gain >= 0.0 {
                    true
                } else {
                    let p = (gain / temperature).exp();
                    (rng.next_u64() as f64 / u64::MAX as f64) < p
                };
                if accept {
                    self.apply(&mut current, &mv);
                    // lint:allow(no-raw-float-accum): solver-internal incremental objective, deterministic for a given seed; the final arrangement is re-scored exactly before serving
                    current_utility += gain;
                    if current_utility > best_utility {
                        best = current.clone();
                        best_utility = current_utility;
                    }
                }
            }
            temperature *= self.cooling;
        }
        best
    }
}

impl ArrangementAlgorithm for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SimulatedAnnealing"
    }

    fn run_with_rng(&self, instance: &Instance, rng: &mut dyn RngCore) -> Arrangement {
        let start = if self.warm_start {
            GreedyArrangement.run_with_rng(instance, rng)
        } else {
            Arrangement::empty_for(instance)
        };
        self.anneal(instance, start, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::{AttributeVector, ConstantInterest, NeverConflict, TableInterest};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_always_feasible() {
        let config = SyntheticConfig::tiny();
        for seed in 0..4 {
            let instance = generate_synthetic(&config, seed);
            let m = SimulatedAnnealing::quick().run_seeded(&instance, seed);
            assert!(m.is_feasible(&instance), "seed {seed}");
        }
    }

    #[test]
    fn annealing_never_loses_to_its_warm_start() {
        let config = SyntheticConfig::tiny();
        for seed in 0..4 {
            let instance = generate_synthetic(&config, seed);
            let greedy = GreedyArrangement.run_seeded(&instance, seed);
            let sa = SimulatedAnnealing::quick().run_seeded(&instance, seed);
            assert!(
                sa.utility(&instance).total + 1e-9 >= greedy.utility(&instance).total,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn cold_start_escapes_the_empty_arrangement() {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 7);
        let sa = SimulatedAnnealing {
            warm_start: false,
            iterations: 5_000,
            ..SimulatedAnnealing::default()
        };
        let m = sa.run_seeded(&instance, 7);
        assert!(m.is_feasible(&instance));
        assert!(m.utility(&instance).total > 0.0);
    }

    #[test]
    fn finds_the_coordinated_reassignment_greedy_misses() {
        // The classic trap: greedy gives event a to user 0 (weight 1.0) and
        // leaves user 1 (who only bids a, weight 0.9) empty-handed. The
        // optimum moves user 0 to b (0.8) and seats user 1 at a: 1.7 total.
        let mut b = igepa_core::Instance::builder();
        let ea = b.add_event(1, AttributeVector::empty());
        let eb = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![ea, eb]);
        b.add_user(1, AttributeVector::empty(), vec![ea]);
        b.interaction_scores(vec![0.0, 0.0]);
        b.beta(1.0);
        let mut interest = TableInterest::zeros(2, 2);
        interest.set(ea, UserId::new(0), 1.0);
        interest.set(ea, UserId::new(1), 0.9);
        interest.set(eb, UserId::new(0), 0.8);
        let instance = b.build(&NeverConflict, &interest).unwrap();

        // Annealing with enough iterations should find the 1.7 optimum from
        // at least one seed.
        let sa = SimulatedAnnealing {
            iterations: 20_000,
            initial_temperature: 0.5,
            cooling: 0.9995,
            warm_start: true,
        };
        let best = (0..5)
            .map(|seed| sa.run_seeded(&instance, seed).utility(&instance).total)
            .fold(0.0_f64, f64::max);
        assert!(best > 1.6, "best {best}");
    }

    #[test]
    fn degenerate_instances_are_handled() {
        // No users.
        let mut b = igepa_core::Instance::builder();
        b.add_event(3, AttributeVector::empty());
        b.interaction_scores(vec![]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        let m = SimulatedAnnealing::quick().run_seeded(&instance, 0);
        assert!(m.is_empty());

        // Users without bids.
        let mut b = igepa_core::Instance::builder();
        b.add_event(1, AttributeVector::empty());
        b.add_user(2, AttributeVector::empty(), vec![]);
        b.interaction_scores(vec![0.3]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        let m = SimulatedAnnealing::quick().run_seeded(&instance, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 3);
        let sa = SimulatedAnnealing::quick();
        let a = sa.run_seeded(&instance, 11);
        let b = sa.run_seeded(&instance, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn anneal_accepts_downhill_moves_at_high_temperature() {
        // Statistical smoke test: with a huge temperature the walk must move
        // away from the greedy start at least sometimes, yet the *returned*
        // arrangement is the best seen, so it never degrades.
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 5);
        let sa = SimulatedAnnealing {
            iterations: 3_000,
            initial_temperature: 50.0,
            cooling: 1.0,
            warm_start: true,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let start = GreedyArrangement.run_seeded(&instance, 5);
        let start_utility = start.utility(&instance).total;
        let best = sa.anneal(&instance, start, &mut rng);
        assert!(best.utility(&instance).total + 1e-9 >= start_utility);
        assert!(best.is_feasible(&instance));
    }
}
