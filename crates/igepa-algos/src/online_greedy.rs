//! Online greedy arrangement (extension).
//!
//! The paper studies the offline ("global") setting, but its related-work
//! discussion contrasts with online variants where users arrive one by one.
//! This extension models that regime: users arrive in a random order and the
//! platform must irrevocably decide the arriving user's events before seeing
//! later arrivals. Each arriving user receives their best feasible
//! admissible set with respect to the *remaining* event capacities.
//!
//! Comparing this against LP-packing quantifies the price of making
//! arrangement decisions online — one of the ablations reported by the
//! experiment harness.

use crate::runner::ArrangementAlgorithm;
use igepa_core::{enumerate_for_user, Arrangement, Instance, UserId, DEFAULT_SET_LIMIT};
use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Online greedy: users arrive in random order and greedily take their best
/// feasible admissible set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineGreedy {
    /// Per-user admissible-set enumeration limit.
    pub admissible_set_limit: usize,
    /// When `false`, users arrive in id order instead of a random order
    /// (useful for deterministic ablations).
    pub shuffle_arrivals: bool,
}

impl Default for OnlineGreedy {
    fn default() -> Self {
        OnlineGreedy {
            admissible_set_limit: DEFAULT_SET_LIMIT,
            shuffle_arrivals: true,
        }
    }
}

impl ArrangementAlgorithm for OnlineGreedy {
    fn name(&self) -> &'static str {
        "Online-Greedy"
    }

    fn run_with_rng(&self, instance: &Instance, rng: &mut dyn RngCore) -> Arrangement {
        let mut arrival: Vec<usize> = (0..instance.num_users()).collect();
        if self.shuffle_arrivals {
            arrival.shuffle(rng);
        }
        let mut arrangement = Arrangement::empty_for(instance);

        for user_index in arrival {
            let user_id = UserId::new(user_index);
            let sets = enumerate_for_user(instance, user_id, self.admissible_set_limit)
                .expect("admissible-set enumeration within limit");
            // Best admissible set that fits the remaining capacities; the
            // arrangement's O(1) per-event loads are the remaining-capacity
            // bookkeeping (no parallel vector to keep in sync).
            let mut best: Option<(f64, &Vec<igepa_core::EventId>)> = None;
            for set in &sets {
                if set
                    .iter()
                    .any(|&v| arrangement.load_of(v) >= instance.event(v).capacity)
                {
                    continue;
                }
                let weight = instance.set_weight(user_id, set);
                match best {
                    Some((w, _)) if w >= weight => {}
                    _ => best = Some((weight, set)),
                }
            }
            if let Some((_, set)) = best {
                for &v in set {
                    arrangement.assign(v, user_id);
                }
            }
        }
        arrangement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIlp;
    use igepa_core::{AttributeVector, ConstantInterest, Instance, NeverConflict, PairSetConflict};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};

    #[test]
    fn online_greedy_is_feasible_on_synthetic_workloads() {
        let inst = generate_synthetic(&SyntheticConfig::tiny(), 4);
        for seed in 0..5 {
            let m = OnlineGreedy::default().run_seeded(&inst, seed);
            assert!(m.is_feasible(&inst));
        }
    }

    #[test]
    fn online_greedy_never_beats_the_exact_optimum() {
        let config = SyntheticConfig::tiny();
        for seed in 0..3 {
            let inst = generate_synthetic(&config, seed);
            let (_, opt) = ExactIlp::default().solve_with_value(&inst);
            let online = OnlineGreedy::default()
                .run_seeded(&inst, seed)
                .utility(&inst)
                .total;
            assert!(opt + 1e-6 >= online);
        }
    }

    #[test]
    fn deterministic_arrival_order_is_reproducible() {
        let inst = generate_synthetic(&SyntheticConfig::tiny(), 9);
        let algo = OnlineGreedy {
            shuffle_arrivals: false,
            ..Default::default()
        };
        assert_eq!(algo.run_seeded(&inst, 1), algo.run_seeded(&inst, 2));
    }

    #[test]
    fn takes_the_best_set_for_a_lone_user() {
        let mut b = Instance::builder();
        let v0 = b.add_event(1, AttributeVector::empty());
        let v1 = b.add_event(1, AttributeVector::empty());
        let v2 = b.add_event(1, AttributeVector::empty());
        b.add_user(2, AttributeVector::empty(), vec![v0, v1, v2]);
        b.interaction_scores(vec![0.0]);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        let inst = b.build(&sigma, &ConstantInterest(0.5)).unwrap();
        let m = OnlineGreedy::default().run_seeded(&inst, 0);
        // The best admissible set has two non-conflicting events.
        assert_eq!(m.len(), 2);
        assert!(m.is_feasible(&inst));
    }

    #[test]
    fn respects_depleted_event_capacity() {
        let mut b = Instance::builder();
        let v0 = b.add_event(1, AttributeVector::empty());
        for _ in 0..3 {
            b.add_user(1, AttributeVector::empty(), vec![v0]);
        }
        b.interaction_scores(vec![0.1, 0.2, 0.3]);
        let inst = b.build(&NeverConflict, &ConstantInterest(0.9)).unwrap();
        let m = OnlineGreedy::default().run_seeded(&inst, 0);
        assert_eq!(m.len(), 1);
        assert!(m.is_feasible(&inst));
    }
}
