//! Bottleneck-aware greedy (related-work baseline, Tong et al. WWWJ 2016).
//!
//! The paper contrasts IGEPA with the *max-min* arrangement objective of
//! Tong et al., which maximises the utility of the worst-off event rather
//! than the total utility. This module implements the natural greedy for
//! that objective — repeatedly give the currently poorest event its best
//! remaining feasible bidder — so the experiments can show what optimising
//! the bottleneck costs in total utility (and vice versa, what LP-packing
//! costs in fairness), replicating the positioning argument of Section V.

use crate::runner::ArrangementAlgorithm;
use igepa_core::{Arrangement, EventId, Instance, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Greedy maximiser of the minimum per-event utility.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BottleneckGreedy;

impl BottleneckGreedy {
    /// Per-event accumulated utility of an arrangement (the quantity the
    /// max-min objective cares about). Events with no bidders are excluded
    /// from the bottleneck because no algorithm can serve them.
    pub fn event_utilities(instance: &Instance, arrangement: &Arrangement) -> Vec<f64> {
        let mut totals = vec![0.0; instance.num_events()];
        for (v, u) in arrangement.pairs() {
            // lint:allow(no-raw-float-accum): solver-internal diagnostic fold in fixed pair order; served utilities are recomputed exactly by the engine, never read from this vector
            totals[v.index()] += instance.weight(v, u);
        }
        totals
    }

    /// The bottleneck value: minimum accumulated utility over events that
    /// have at least one bidder. Returns 0.0 when there is no such event.
    pub fn bottleneck_value(instance: &Instance, arrangement: &Arrangement) -> f64 {
        let totals = Self::event_utilities(instance, arrangement);
        let min = instance
            .events()
            .iter()
            .filter(|e| e.num_bidders() > 0 && e.capacity > 0)
            .map(|e| totals[e.id.index()])
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }
}

impl ArrangementAlgorithm for BottleneckGreedy {
    fn name(&self) -> &'static str {
        "Bottleneck-greedy"
    }

    fn run_with_rng(&self, instance: &Instance, _rng: &mut dyn RngCore) -> Arrangement {
        let mut arrangement = Arrangement::empty_for(instance);
        let mut event_total = vec![0.0_f64; instance.num_events()];

        loop {
            // Order serviceable events by their current accumulated utility:
            // the poorest event gets the next pick (ties by id for
            // determinism).
            let mut open_events: Vec<EventId> = instance
                .events()
                .iter()
                .filter(|e| e.capacity > arrangement.load_of(e.id) && e.num_bidders() > 0)
                .map(|e| e.id)
                .collect();
            open_events.sort_by(|&a, &b| {
                event_total[a.index()]
                    .partial_cmp(&event_total[b.index()])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.index().cmp(&b.index()))
            });

            let mut assigned = false;
            for v in open_events {
                // Best remaining feasible bidder for this event.
                let mut best: Option<(f64, UserId)> = None;
                for &u in &instance.event(v).bidders {
                    if arrangement.contains(v, u) {
                        continue;
                    }
                    let user = instance.user(u);
                    let current = arrangement.events_of(u);
                    if current.len() >= user.capacity {
                        continue;
                    }
                    if current
                        .iter()
                        .any(|&w| instance.conflicts().conflicts(w, v))
                    {
                        continue;
                    }
                    let weight = instance.weight(v, u);
                    match &best {
                        Some((w, _)) if *w >= weight => {}
                        _ => best = Some((weight, u)),
                    }
                }
                if let Some((weight, u)) = best {
                    arrangement.assign(v, u);
                    // lint:allow(no-raw-float-accum): solver-internal heuristic accumulator with a deterministic update order; the arrangement it produces is re-scored exactly downstream
                    event_total[v.index()] += weight;
                    assigned = true;
                    break;
                }
            }
            if !assigned {
                break;
            }
        }
        arrangement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyArrangement;
    use igepa_core::{AttributeVector, ConstantInterest, NeverConflict, TableInterest};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};

    #[test]
    fn output_is_always_feasible() {
        let config = SyntheticConfig::tiny();
        for seed in 0..4 {
            let instance = generate_synthetic(&config, seed);
            let m = BottleneckGreedy.run_seeded(&instance, seed);
            assert!(m.is_feasible(&instance), "seed {seed}");
        }
    }

    #[test]
    fn spreads_users_across_events_instead_of_piling_them_up() {
        // Two events, four users who all prefer event 0. The total-utility
        // greedy fills event 0 first; the bottleneck greedy alternates so
        // the poorer event is served too.
        let mut b = igepa_core::Instance::builder();
        let popular = b.add_event(4, AttributeVector::empty());
        let niche = b.add_event(4, AttributeVector::empty());
        for _ in 0..4 {
            b.add_user(1, AttributeVector::empty(), vec![popular, niche]);
        }
        b.interaction_scores(vec![0.0; 4]);
        b.beta(1.0);
        let mut interest = TableInterest::zeros(2, 4);
        for u in 0..4 {
            interest.set(popular, UserId::new(u), 0.9);
            interest.set(niche, UserId::new(u), 0.5);
        }
        let instance = b.build(&NeverConflict, &interest).unwrap();

        let bottleneck = BottleneckGreedy.run_seeded(&instance, 0);
        assert!(bottleneck.load_of(niche) >= 2, "niche event starved");
        let min_ours = BottleneckGreedy::bottleneck_value(&instance, &bottleneck);

        let greedy = GreedyArrangement.run_seeded(&instance, 0);
        let min_greedy = BottleneckGreedy::bottleneck_value(&instance, &greedy);
        assert!(
            min_ours >= min_greedy,
            "bottleneck {min_ours} < greedy's {min_greedy}"
        );
        // And the flip side of the trade-off: total utility is not higher.
        assert!(bottleneck.utility(&instance).total <= greedy.utility(&instance).total + 1e-9);
    }

    #[test]
    fn bottleneck_value_ignores_events_nobody_bid_for() {
        let mut b = igepa_core::Instance::builder();
        let wanted = b.add_event(1, AttributeVector::empty());
        let _ghost = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![wanted]);
        b.interaction_scores(vec![0.0]);
        b.beta(1.0);
        let mut interest = TableInterest::zeros(2, 1);
        interest.set(wanted, UserId::new(0), 0.6);
        let instance = b.build(&NeverConflict, &interest).unwrap();
        let m = BottleneckGreedy.run_seeded(&instance, 0);
        assert!((BottleneckGreedy::bottleneck_value(&instance, &m) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_value_of_unserviceable_instance_is_zero() {
        let mut b = igepa_core::Instance::builder();
        b.add_event(2, AttributeVector::empty());
        b.interaction_scores(vec![]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        let m = BottleneckGreedy.run_seeded(&instance, 0);
        assert_eq!(BottleneckGreedy::bottleneck_value(&instance, &m), 0.0);
    }

    #[test]
    fn respects_conflicts_and_user_capacity() {
        let config = SyntheticConfig::small();
        let instance = generate_synthetic(&config, 3);
        let m = BottleneckGreedy.run_seeded(&instance, 3);
        assert!(m.is_feasible(&instance));
        assert!(!m.is_empty());
    }

    #[test]
    fn deterministic_across_seeds() {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 8);
        let a = BottleneckGreedy.run_seeded(&instance, 1);
        let b = BottleneckGreedy.run_seeded(&instance, 2);
        assert_eq!(a, b);
    }
}
