//! Algorithm portfolio: run several arrangement algorithms and keep the best.
//!
//! A thin but practically useful wrapper: EBSN platforms re-arrange
//! periodically and can afford to run the cheap baselines alongside
//! LP-packing, keeping whichever arrangement scores highest on the current
//! workload. The portfolio is also the natural "upper envelope" curve in the
//! ablation plots.

use crate::greedy::GreedyArrangement;
use crate::local_search::LocalSearch;
use crate::lp_packing::LpPacking;
use crate::runner::ArrangementAlgorithm;
use igepa_core::{Arrangement, Instance};
use rand::RngCore;

/// Runs every member algorithm and returns the arrangement with the highest
/// utility (ties go to the earlier member).
pub struct Portfolio {
    members: Vec<Box<dyn ArrangementAlgorithm>>,
}

impl Default for Portfolio {
    /// LP-packing, GG greedy and GG + local search.
    fn default() -> Self {
        Portfolio {
            members: vec![
                Box::new(LpPacking::default()),
                Box::new(GreedyArrangement),
                Box::new(LocalSearch::default()),
            ],
        }
    }
}

impl Portfolio {
    /// Builds a portfolio from explicit members. Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn ArrangementAlgorithm>>) -> Self {
        assert!(!members.is_empty(), "a portfolio needs at least one member");
        Portfolio { members }
    }

    /// Number of member algorithms.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the portfolio has no members (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Runs every member and returns `(winner name, arrangement)`.
    pub fn run_detailed(
        &self,
        instance: &Instance,
        rng: &mut dyn RngCore,
    ) -> (&'static str, Arrangement) {
        let mut best: Option<(&'static str, f64, Arrangement)> = None;
        for member in &self.members {
            let arrangement = member.run_with_rng(instance, rng);
            let utility = arrangement.utility(instance).total;
            match &best {
                Some((_, u, _)) if *u >= utility => {}
                _ => best = Some((member.name(), utility, arrangement)),
            }
        }
        let (name, _, arrangement) = best.expect("portfolio has at least one member");
        (name, arrangement)
    }
}

impl ArrangementAlgorithm for Portfolio {
    fn name(&self) -> &'static str {
        "Portfolio"
    }

    fn run_with_rng(&self, instance: &Instance, rng: &mut dyn RngCore) -> Arrangement {
        self.run_detailed(instance, rng).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomized::{RandomU, RandomV};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};

    #[test]
    fn portfolio_is_at_least_as_good_as_each_member() {
        let config = SyntheticConfig::tiny();
        for seed in 0..3 {
            let instance = generate_synthetic(&config, seed);
            let portfolio = Portfolio::default().run_seeded(&instance, seed);
            let portfolio_utility = portfolio.utility(&instance).total;
            assert!(portfolio.is_feasible(&instance));
            // Not an exact dominance claim (the RNG stream differs between a
            // standalone run and a portfolio run), but the deterministic
            // greedy member is a hard floor.
            let greedy = GreedyArrangement.run_seeded(&instance, seed);
            assert!(portfolio_utility + 1e-9 >= greedy.utility(&instance).total);
        }
    }

    #[test]
    fn reports_the_winning_member() {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 1);
        let portfolio = Portfolio::default();
        let mut rng = rand::rngs::mock::StepRng::new(42, 13);
        let (winner, arrangement) = portfolio.run_detailed(&instance, &mut rng);
        assert!(["LP-packing", "GG", "GG+LocalSearch"].contains(&winner));
        assert!(arrangement.is_feasible(&instance));
    }

    #[test]
    fn custom_portfolios_work_with_cheap_members_only() {
        let portfolio = Portfolio::new(vec![Box::new(RandomU), Box::new(RandomV)]);
        assert_eq!(portfolio.len(), 2);
        assert!(!portfolio.is_empty());
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 2);
        let m = portfolio.run_seeded(&instance, 2);
        assert!(m.is_feasible(&instance));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolios_are_rejected() {
        let _ = Portfolio::new(Vec::new());
    }
}
