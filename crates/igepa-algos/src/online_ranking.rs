//! Online ranking arrangement (extension, after Karp–Vazirani–Vazirani).
//!
//! The online variants cited in Section V process users one at a time and
//! must commit immediately. [`crate::OnlineGreedy`] takes each arriving
//! user's locally best bids; the classical alternative is *ranking*: every
//! event draws a random rank once, and each arriving user is matched to the
//! feasible bid that maximises a rank-perturbed score. Randomising the
//! priority of events hedges against adversarial arrival orders, the reason
//! the ranking algorithm beats greedy in the worst case for online
//! bipartite matching. The experiments compare both online rules against
//! the offline algorithms to quantify the price of online arrival.

use crate::runner::ArrangementAlgorithm;
use igepa_core::{Arrangement, EventId, Instance, UserId};
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Online arrangement with randomised event ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineRanking {
    /// Weight of the random rank in the selection score, in `[0, 1]`.
    /// 0 reduces to online greedy; 1 ignores the utility entirely.
    pub rank_weight: f64,
    /// Whether users arrive in a random order (true) or by id (false).
    pub shuffle_arrivals: bool,
}

impl Default for OnlineRanking {
    fn default() -> Self {
        OnlineRanking {
            rank_weight: 0.3,
            shuffle_arrivals: true,
        }
    }
}

impl OnlineRanking {
    /// Processes users in the given arrival order and returns the (always
    /// feasible) arrangement. `ranks[v]` is event `v`'s random priority.
    pub fn arrange_in_order(
        &self,
        instance: &Instance,
        arrival_order: &[usize],
        ranks: &[f64],
    ) -> Arrangement {
        let weight = self.rank_weight.clamp(0.0, 1.0);
        let mut arrangement = Arrangement::empty_for(instance);
        for &user_index in arrival_order {
            if user_index >= instance.num_users() {
                continue;
            }
            let user = instance.user(UserId::new(user_index));
            // Score every bid by a convex combination of its utility weight
            // and the event's random rank, then take bids greedily while
            // they stay feasible for this user.
            let mut scored: Vec<(EventId, f64)> = user
                .bids
                .iter()
                .map(|&v| {
                    let rank = ranks.get(v.index()).copied().unwrap_or(0.5);
                    let score = (1.0 - weight) * instance.weight(v, user.id) + weight * rank;
                    (v, score)
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let mut taken: Vec<EventId> = Vec::new();
            for (v, _) in scored {
                if taken.len() >= user.capacity {
                    break;
                }
                if arrangement.load_of(v) >= instance.event(v).capacity {
                    continue;
                }
                if taken.iter().any(|&w| instance.conflicts().conflicts(w, v)) {
                    continue;
                }
                arrangement.assign(v, user.id);
                taken.push(v);
            }
        }
        arrangement
    }
}

impl ArrangementAlgorithm for OnlineRanking {
    fn name(&self) -> &'static str {
        "Online-Ranking"
    }

    fn run_with_rng(&self, instance: &Instance, rng: &mut dyn RngCore) -> Arrangement {
        // Draw the event ranks once, up front (the defining trait of ranking).
        let ranks: Vec<f64> = (0..instance.num_events())
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        let mut order: Vec<usize> = (0..instance.num_users()).collect();
        if self.shuffle_arrivals {
            // Fisher–Yates with the trait-object RNG.
            for i in (1..order.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
        self.arrange_in_order(instance, &order, &ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyArrangement;
    use igepa_core::{AttributeVector, NeverConflict, TableInterest};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};

    #[test]
    fn output_is_always_feasible() {
        let config = SyntheticConfig::tiny();
        for seed in 0..4 {
            let instance = generate_synthetic(&config, seed);
            let m = OnlineRanking::default().run_seeded(&instance, seed);
            assert!(m.is_feasible(&instance), "seed {seed}");
        }
    }

    #[test]
    fn zero_rank_weight_with_fixed_order_matches_per_user_greedy() {
        // With rank_weight = 0 and id-order arrivals the algorithm is the
        // deterministic per-user greedy, so two different seeds agree.
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 1);
        let algo = OnlineRanking {
            rank_weight: 0.0,
            shuffle_arrivals: false,
        };
        let a = algo.run_seeded(&instance, 1);
        let b = algo.run_seeded(&instance, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn arrange_in_order_processes_exactly_the_given_users() {
        let mut b = igepa_core::Instance::builder();
        let v = b.add_event(5, AttributeVector::empty());
        for _ in 0..3 {
            b.add_user(1, AttributeVector::empty(), vec![v]);
        }
        b.interaction_scores(vec![0.0; 3]);
        b.beta(1.0);
        let mut interest = TableInterest::zeros(1, 3);
        for u in 0..3 {
            interest.set(v, UserId::new(u), 0.5);
        }
        let instance = b.build(&NeverConflict, &interest).unwrap();
        let algo = OnlineRanking::default();
        // Only users 0 and 2 arrive.
        let m = algo.arrange_in_order(&instance, &[0, 2], &[0.5]);
        assert!(m.contains(v, UserId::new(0)));
        assert!(!m.contains(v, UserId::new(1)));
        assert!(m.contains(v, UserId::new(2)));
        // Out-of-range arrivals are ignored rather than panicking.
        let m = algo.arrange_in_order(&instance, &[7, 99, 1], &[0.5]);
        assert!(m.contains(v, UserId::new(1)));
    }

    #[test]
    fn capacity_is_respected_under_adversarial_arrival() {
        // A single hot event of capacity 1; whoever arrives first gets it.
        let mut b = igepa_core::Instance::builder();
        let hot = b.add_event(1, AttributeVector::empty());
        for _ in 0..4 {
            b.add_user(1, AttributeVector::empty(), vec![hot]);
        }
        b.interaction_scores(vec![0.2; 4]);
        let mut interest = TableInterest::zeros(1, 4);
        for u in 0..4 {
            interest.set(hot, UserId::new(u), 0.9);
        }
        let instance = b.build(&NeverConflict, &interest).unwrap();
        let m = OnlineRanking::default().run_seeded(&instance, 3);
        assert_eq!(m.load_of(hot), 1);
        assert!(m.is_feasible(&instance));
    }

    #[test]
    fn stays_within_a_constant_factor_of_offline_greedy_on_average() {
        let config = SyntheticConfig::small();
        let mut online_total = 0.0;
        let mut offline_total = 0.0;
        for seed in 0..3 {
            let instance = generate_synthetic(&config, seed);
            online_total += OnlineRanking::default()
                .run_seeded(&instance, seed)
                .utility(&instance)
                .total;
            offline_total += GreedyArrangement
                .run_seeded(&instance, seed)
                .utility(&instance)
                .total;
        }
        assert!(
            online_total > 0.4 * offline_total,
            "online {online_total} collapsed vs offline {offline_total}"
        );
        assert!(online_total <= offline_total + 1e-9 || online_total > 0.0);
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 9);
        let a = OnlineRanking::default().run_seeded(&instance, 4);
        let b = OnlineRanking::default().run_seeded(&instance, 4);
        assert_eq!(a, b);
    }
}
