//! Random-U and Random-V — the randomized baselines from the GEACC paper.
//!
//! Both baselines build a feasible arrangement by random exploration:
//!
//! * **Random-U** iterates over users in random order; each user scans their
//!   bid list in random order and takes every event that is still feasible
//!   (event capacity left, user capacity left, no conflict with events the
//!   user already holds).
//! * **Random-V** iterates over events in random order; each event scans its
//!   bidders in random order and admits every user that is still feasible.
//!
//! Neither looks at the weights, so they serve as the "how much does
//! optimisation actually buy" floor in the paper's comparison.

use crate::runner::ArrangementAlgorithm;
use igepa_core::{Arrangement, EventId, Instance, UserId};
use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The Random-U baseline (user-driven random assignment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomU;

/// The Random-V baseline (event-driven random assignment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomV;

fn can_assign(instance: &Instance, arrangement: &Arrangement, v: EventId, u: UserId) -> bool {
    if arrangement.load_of(v) >= instance.event(v).capacity {
        return false;
    }
    let current = arrangement.events_of(u);
    if current.len() >= instance.user(u).capacity {
        return false;
    }
    if current
        .iter()
        .any(|&w| instance.conflicts().conflicts(w, v))
    {
        return false;
    }
    true
}

impl ArrangementAlgorithm for RandomU {
    fn name(&self) -> &'static str {
        "Random-U"
    }

    fn run_with_rng(&self, instance: &Instance, rng: &mut dyn RngCore) -> Arrangement {
        let mut arrangement = Arrangement::empty_for(instance);
        let mut user_order: Vec<usize> = (0..instance.num_users()).collect();
        user_order.shuffle(rng);
        for user_index in user_order {
            let user_id = UserId::new(user_index);
            let mut bids = instance.user(user_id).bids.clone();
            bids.shuffle(rng);
            for v in bids {
                if can_assign(instance, &arrangement, v, user_id) {
                    arrangement.assign(v, user_id);
                }
            }
        }
        arrangement
    }
}

impl ArrangementAlgorithm for RandomV {
    fn name(&self) -> &'static str {
        "Random-V"
    }

    fn run_with_rng(&self, instance: &Instance, rng: &mut dyn RngCore) -> Arrangement {
        let mut arrangement = Arrangement::empty_for(instance);
        let mut event_order: Vec<usize> = (0..instance.num_events()).collect();
        event_order.shuffle(rng);
        for event_index in event_order {
            let event_id = EventId::new(event_index);
            let mut bidders = instance.event(event_id).bidders.clone();
            bidders.shuffle(rng);
            for u in bidders {
                if can_assign(instance, &arrangement, event_id, u) {
                    arrangement.assign(event_id, u);
                }
            }
        }
        arrangement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::{AttributeVector, ConstantInterest, NeverConflict, PairSetConflict};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};

    fn contention_instance() -> Instance {
        let mut b = Instance::builder();
        let v0 = b.add_event(1, AttributeVector::empty());
        let v1 = b.add_event(1, AttributeVector::empty());
        for _ in 0..4 {
            b.add_user(2, AttributeVector::empty(), vec![v0, v1]);
        }
        b.interaction_scores(vec![0.1, 0.2, 0.3, 0.4]);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        b.build(&sigma, &ConstantInterest(0.5)).unwrap()
    }

    #[test]
    fn random_u_output_is_feasible() {
        let inst = contention_instance();
        for seed in 0..10 {
            let m = RandomU.run_seeded(&inst, seed);
            assert!(m.is_feasible(&inst));
            assert!(m.len() <= 2);
        }
    }

    #[test]
    fn random_v_output_is_feasible() {
        let inst = contention_instance();
        for seed in 0..10 {
            let m = RandomV.run_seeded(&inst, seed);
            assert!(m.is_feasible(&inst));
            assert!(m.len() <= 2);
        }
    }

    #[test]
    fn both_fill_uncontested_capacity() {
        let mut b = Instance::builder();
        let v0 = b.add_event(10, AttributeVector::empty());
        for _ in 0..5 {
            b.add_user(1, AttributeVector::empty(), vec![v0]);
        }
        b.interaction_scores(vec![0.5; 5]);
        let inst = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        assert_eq!(RandomU.run_seeded(&inst, 1).len(), 5);
        assert_eq!(RandomV.run_seeded(&inst, 1).len(), 5);
    }

    #[test]
    fn different_seeds_explore_different_assignments() {
        let inst = contention_instance();
        let outcomes: std::collections::HashSet<Vec<(igepa_core::EventId, igepa_core::UserId)>> =
            (0..20)
                .map(|s| RandomU.run_seeded(&inst, s).pairs().collect::<Vec<_>>())
                .collect();
        assert!(outcomes.len() > 1, "Random-U never varied across 20 seeds");
    }

    #[test]
    fn feasible_on_synthetic_workloads() {
        let inst = generate_synthetic(&SyntheticConfig::small(), 3);
        let mu = RandomU.run_seeded(&inst, 0);
        let mv = RandomV.run_seeded(&inst, 0);
        assert!(mu.is_feasible(&inst));
        assert!(mv.is_feasible(&inst));
        assert!(!mu.is_empty());
        assert!(!mv.is_empty());
    }
}
