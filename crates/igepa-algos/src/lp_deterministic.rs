//! Deterministic LP rounding (ablation of LP-packing's sampling step).
//!
//! Algorithm 1 rounds the benchmark LP by *sampling* an admissible set per
//! user with probability `α·x*` — that independence is what the ¼ guarantee
//! needs. This ablation keeps lines 1 and 4–8 of the algorithm but replaces
//! the sampling with a deterministic rule: process users in decreasing order
//! of their best fractional mass and give each the feasible admissible set
//! with the largest `x*·w(u, S)` score whose events still have residual
//! capacity. It has no approximation guarantee, but the experiments show it
//! tracks (and sometimes beats) the sampled variant on the synthetic
//! workloads, which is exactly the kind of gap-closing evidence an ablation
//! is meant to produce.

use crate::lp_packing::LpPacking;
use crate::runner::ArrangementAlgorithm;
use igepa_core::{AdmissibleSetIndex, Arrangement, EventId, Instance, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// LP-guided deterministic rounding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LpDeterministic {
    /// The underlying LP-packing configuration (backend, set limit). Its α
    /// is ignored — there is no sampling step.
    pub lp: LpPacking,
}

impl ArrangementAlgorithm for LpDeterministic {
    fn name(&self) -> &'static str {
        "LP-deterministic"
    }

    fn run_with_rng(&self, instance: &Instance, _rng: &mut dyn RngCore) -> Arrangement {
        let admissible =
            AdmissibleSetIndex::build_with_limit(instance, self.lp.admissible_set_limit)
                .expect("admissible-set enumeration within limit");
        let fractional = self.lp.solve_benchmark_lp(instance, &admissible);

        // Score every user's admissible sets and remember the best one.
        // Users whose LP mass is concentrated (large max x*) are the ones the
        // LP is most confident about, so they are seated first.
        let mut order: Vec<(usize, f64)> = fractional
            .iter()
            .enumerate()
            .map(|(user_index, sets)| {
                let best = sets
                    .iter()
                    .map(|(set, x)| x * instance.set_weight(UserId::new(user_index), set))
                    .fold(0.0_f64, f64::max);
                (user_index, best)
            })
            .collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        let mut residual: Vec<usize> = instance.events().iter().map(|e| e.capacity).collect();
        let mut arrangement = Arrangement::empty_for(instance);

        for (user_index, _) in order {
            let user = UserId::new(user_index);
            // Best admissible set by x*·weight whose events all still fit;
            // fall back to the best *truncation* of that set if only some do.
            let mut best_set: Option<(f64, Vec<EventId>)> = None;
            for (set, x) in &fractional[user_index] {
                if *x <= 1e-9 || set.is_empty() {
                    continue;
                }
                let feasible: Vec<EventId> = set
                    .iter()
                    .copied()
                    .filter(|v| residual[v.index()] > 0)
                    .collect();
                if feasible.is_empty() {
                    continue;
                }
                let score = x * instance.set_weight(user, &feasible);
                match &best_set {
                    Some((s, _)) if *s >= score => {}
                    _ => best_set = Some((score, feasible)),
                }
            }
            if let Some((_, set)) = best_set {
                for v in set {
                    if residual[v.index()] > 0 {
                        residual[v.index()] -= 1;
                        arrangement.assign(v, user);
                    }
                }
            }
        }
        arrangement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_packing::LpBackend;
    use crate::randomized::RandomV;
    use igepa_core::{AttributeVector, NeverConflict, PairSetConflict, TableInterest};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};

    #[test]
    fn output_is_always_feasible() {
        let config = SyntheticConfig::tiny();
        for seed in 0..4 {
            let instance = generate_synthetic(&config, seed);
            let m = LpDeterministic::default().run_seeded(&instance, seed);
            assert!(m.is_feasible(&instance), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_across_seeds() {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 5);
        let algo = LpDeterministic {
            lp: LpPacking::with_backend(LpBackend::Simplex),
        };
        let a = algo.run_seeded(&instance, 1);
        let b = algo.run_seeded(&instance, 999);
        assert_eq!(a, b);
    }

    #[test]
    fn recovers_the_integral_lp_optimum_on_the_coordination_trap() {
        // The LP already solves the trap exactly (x* is integral), so the
        // deterministic rounding must recover the optimum of 1.7.
        let mut b = igepa_core::Instance::builder();
        let ea = b.add_event(1, AttributeVector::empty());
        let eb = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![ea, eb]);
        b.add_user(1, AttributeVector::empty(), vec![ea]);
        b.interaction_scores(vec![0.0, 0.0]);
        b.beta(1.0);
        let mut interest = TableInterest::zeros(2, 2);
        interest.set(ea, UserId::new(0), 1.0);
        interest.set(ea, UserId::new(1), 0.9);
        interest.set(eb, UserId::new(0), 0.8);
        let instance = b.build(&NeverConflict, &interest).unwrap();

        let algo = LpDeterministic {
            lp: LpPacking::with_backend(LpBackend::Simplex),
        };
        let m = algo.run_seeded(&instance, 0);
        assert!((m.utility(&instance).total - 1.7).abs() < 1e-6);
    }

    #[test]
    fn respects_event_capacities_under_heavy_contention() {
        // One event of capacity 2 with five bidders.
        let mut b = igepa_core::Instance::builder();
        let hot = b.add_event(2, AttributeVector::empty());
        for _ in 0..5 {
            b.add_user(1, AttributeVector::empty(), vec![hot]);
        }
        b.interaction_scores(vec![0.1; 5]);
        let mut interest = TableInterest::zeros(1, 5);
        for u in 0..5 {
            interest.set(hot, UserId::new(u), 0.2 * (u + 1) as f64);
        }
        let instance = b.build(&NeverConflict, &interest).unwrap();
        let m = LpDeterministic::default().run_seeded(&instance, 0);
        assert!(m.is_feasible(&instance));
        assert_eq!(m.load_of(hot), 2);
    }

    #[test]
    fn respects_conflicts_within_a_users_selection() {
        let mut b = igepa_core::Instance::builder();
        let v0 = b.add_event(5, AttributeVector::empty());
        let v1 = b.add_event(5, AttributeVector::empty());
        b.add_user(2, AttributeVector::empty(), vec![v0, v1]);
        b.interaction_scores(vec![0.5]);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        let mut interest = TableInterest::zeros(2, 1);
        interest.set(v0, UserId::new(0), 0.9);
        interest.set(v1, UserId::new(0), 0.8);
        let instance = b.build(&sigma, &interest).unwrap();
        let m = LpDeterministic::default().run_seeded(&instance, 0);
        assert!(m.is_feasible(&instance));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn beats_the_randomized_baselines_on_small_synthetic_workloads() {
        let config = SyntheticConfig::small();
        let mut ours = 0.0;
        let mut baseline = 0.0;
        for seed in 0..3 {
            let instance = generate_synthetic(&config, seed);
            ours += LpDeterministic::default()
                .run_seeded(&instance, seed)
                .utility(&instance)
                .total;
            baseline += RandomV.run_seeded(&instance, seed).utility(&instance).total;
        }
        assert!(ours > baseline, "ours {ours} vs RandomV {baseline}");
    }
}
