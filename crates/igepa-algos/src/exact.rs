//! Exact IGEPA via the benchmark ILP.
//!
//! Restricting the benchmark LP's variables `x_{u,S}` to `{0, 1}` yields an
//! integer program whose optimum *is* the IGEPA optimum (the observation
//! behind Lemma 1 of the paper). Solving that ILP with the branch-and-bound
//! solver gives the exact baseline used by the approximation-ratio study.
//! The solver is exponential in the worst case, so it is guarded by a
//! variable-count limit and only meant for small instances.

use crate::runner::ArrangementAlgorithm;
use igepa_core::{AdmissibleSetIndex, Arrangement, EventId, Instance, UserId};
use igepa_lp::{BranchBoundSolver, IntegerProgram, LinearProgram};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Exact ILP-based arrangement (small instances only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExactIlp {
    /// Hard cap on the number of ILP variables (total admissible sets); the
    /// algorithm panics if the instance exceeds it, as a guard against
    /// accidentally running the exponential solver on a large workload.
    pub max_variables: usize,
    /// Branch-and-bound node limit.
    pub max_nodes: usize,
}

impl Default for ExactIlp {
    fn default() -> Self {
        ExactIlp {
            max_variables: 5_000,
            max_nodes: 200_000,
        }
    }
}

impl ExactIlp {
    /// Solves the instance exactly and also returns the optimal utility.
    pub fn solve_with_value(&self, instance: &Instance) -> (Arrangement, f64) {
        let admissible =
            AdmissibleSetIndex::build(instance).expect("admissible-set enumeration within limit");
        let total = admissible.total_sets();
        assert!(
            total <= self.max_variables,
            "exact ILP guard: {total} admissible sets exceed the limit of {}",
            self.max_variables
        );

        let mut lp = LinearProgram::new();
        let mut var_meta: Vec<(UserId, Vec<EventId>)> = Vec::with_capacity(total);
        let mut event_terms: Vec<Vec<(usize, f64)>> = vec![Vec::new(); instance.num_events()];
        let mut user_terms: Vec<Vec<(usize, f64)>> = vec![Vec::new(); instance.num_users()];
        for user_sets in admissible.iter() {
            for set in &user_sets.sets {
                let weight = instance.set_weight(user_sets.user, set);
                let var = lp.add_var(weight, 1.0);
                var_meta.push((user_sets.user, set.clone()));
                user_terms[user_sets.user.index()].push((var, 1.0));
                for &v in set {
                    event_terms[v.index()].push((var, 1.0));
                }
            }
        }
        for terms in user_terms.into_iter().filter(|t| !t.is_empty()) {
            lp.add_le_constraint(terms, 1.0).expect("valid user row");
        }
        for (event_index, terms) in event_terms.into_iter().enumerate() {
            if !terms.is_empty() {
                let capacity = instance.event(EventId::new(event_index)).capacity as f64;
                lp.add_le_constraint(terms, capacity)
                    .expect("valid event row");
            }
        }

        let solver = BranchBoundSolver {
            max_nodes: self.max_nodes,
            ..Default::default()
        };
        let solution = solver
            .solve(&IntegerProgram::all_integer(lp))
            .expect("the benchmark ILP always admits the empty arrangement");

        let mut arrangement = Arrangement::empty_for(instance);
        for (var, (user, set)) in var_meta.iter().enumerate() {
            if solution.values[var] > 0.5 {
                for &v in set {
                    arrangement.assign(v, *user);
                }
            }
        }
        let value = arrangement.utility(instance).total;
        (arrangement, value)
    }
}

impl ArrangementAlgorithm for ExactIlp {
    fn name(&self) -> &'static str {
        "Exact-ILP"
    }

    fn run_with_rng(&self, instance: &Instance, _rng: &mut dyn RngCore) -> Arrangement {
        self.solve_with_value(instance).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyArrangement;
    use crate::lp_packing::LpPacking;
    use igepa_core::{AttributeVector, ConstantInterest, Instance, PairSetConflict, TableInterest};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};

    #[test]
    fn exact_beats_or_matches_greedy_on_the_greedy_trap() {
        // Same trap as in the greedy tests: exact must find utility 1.7.
        let mut b = Instance::builder();
        let a = b.add_event(1, AttributeVector::empty());
        let eb = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![a, eb]);
        b.add_user(1, AttributeVector::empty(), vec![a]);
        b.interaction_scores(vec![0.0, 0.0]);
        b.beta(1.0);
        let mut interest = TableInterest::zeros(2, 2);
        interest.set(a, UserId::new(0), 1.0);
        interest.set(a, UserId::new(1), 0.9);
        interest.set(eb, UserId::new(0), 0.8);
        let inst = b.build(&igepa_core::NeverConflict, &interest).unwrap();

        let (exact, value) = ExactIlp::default().solve_with_value(&inst);
        assert!(exact.is_feasible(&inst));
        assert!((value - 1.7).abs() < 1e-6);
        let greedy = GreedyArrangement.run_seeded(&inst, 0);
        assert!(value >= greedy.utility(&inst).total - 1e-9);
    }

    #[test]
    fn exact_respects_conflicts_and_capacities() {
        let mut b = Instance::builder();
        let v0 = b.add_event(1, AttributeVector::empty());
        let v1 = b.add_event(1, AttributeVector::empty());
        let v2 = b.add_event(1, AttributeVector::empty());
        for _ in 0..3 {
            b.add_user(2, AttributeVector::empty(), vec![v0, v1, v2]);
        }
        b.interaction_scores(vec![0.3, 0.6, 0.9]);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        let inst = b.build(&sigma, &ConstantInterest(0.5)).unwrap();
        let (m, value) = ExactIlp::default().solve_with_value(&inst);
        assert!(m.is_feasible(&inst));
        assert!(value > 0.0);
    }

    #[test]
    fn exact_dominates_every_heuristic_on_tiny_synthetic_instances() {
        let config = SyntheticConfig::tiny();
        for seed in 0..3 {
            let inst = generate_synthetic(&config, seed);
            let (_, opt) = ExactIlp::default().solve_with_value(&inst);
            let greedy = GreedyArrangement
                .run_seeded(&inst, seed)
                .utility(&inst)
                .total;
            let lp = LpPacking::default()
                .run_seeded(&inst, seed)
                .utility(&inst)
                .total;
            assert!(
                opt + 1e-6 >= greedy,
                "seed {seed}: opt {opt} < greedy {greedy}"
            );
            assert!(opt + 1e-6 >= lp, "seed {seed}: opt {opt} < lp {lp}");
        }
    }

    #[test]
    #[should_panic(expected = "exact ILP guard")]
    fn variable_guard_trips_on_large_instances() {
        let inst = generate_synthetic(&SyntheticConfig::small(), 1);
        let guard = ExactIlp {
            max_variables: 10,
            ..Default::default()
        };
        let _ = guard.solve_with_value(&inst);
    }
}
