//! Local-search refinement (extension / ablation).
//!
//! Not part of the paper, but a natural ablation: starting from any feasible
//! arrangement (by default the GG greedy one), repeatedly apply the best
//! improving move until none exists or the iteration budget runs out. Two
//! move types are considered:
//!
//! * **add** — insert a currently unassigned feasible `(event, user)` pair;
//! * **swap** — replace one event in a user's assignment by a different
//!   event of the same user's bid list when that increases the utility and
//!   stays feasible.
//!
//! The experiment harness uses this to quantify how much head-room the
//! greedy baseline leaves on the table compared to LP-packing.

use crate::greedy::GreedyArrangement;
use crate::runner::ArrangementAlgorithm;
use igepa_core::{Arrangement, EventId, Instance, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Hill-climbing local search over feasible arrangements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalSearch {
    /// Maximum number of improving moves applied.
    pub max_moves: usize,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch { max_moves: 10_000 }
    }
}

impl LocalSearch {
    /// Refines a given starting arrangement in place and returns the number
    /// of improving moves applied.
    pub fn refine(&self, instance: &Instance, arrangement: &mut Arrangement) -> usize {
        let mut moves = 0;
        while moves < self.max_moves {
            if !self.apply_best_move(instance, arrangement) {
                break;
            }
            moves += 1;
        }
        moves
    }

    /// Applies the single best improving move, returning whether one existed.
    fn apply_best_move(&self, instance: &Instance, arrangement: &mut Arrangement) -> bool {
        let mut best: Option<(f64, Move)> = None;

        for user in instance.users() {
            let u = user.id;
            // A direct slice borrow: the move is only applied after the
            // scan, so no allocation per user is needed.
            let current = arrangement.events_of(u);
            // Add moves.
            if current.len() < user.capacity {
                for &v in &user.bids {
                    if arrangement.contains(v, u) {
                        continue;
                    }
                    if arrangement.load_of(v) >= instance.event(v).capacity {
                        continue;
                    }
                    if current
                        .iter()
                        .any(|&w| instance.conflicts().conflicts(w, v))
                    {
                        continue;
                    }
                    let gain = instance.weight(v, u);
                    if gain > 1e-12 {
                        match &best {
                            Some((g, _)) if *g >= gain => {}
                            _ => best = Some((gain, Move::Add { v, u })),
                        }
                    }
                }
            }
            // Swap moves: replace `out` with `v`.
            for &out in current {
                for &v in &user.bids {
                    if v == out || arrangement.contains(v, u) {
                        continue;
                    }
                    if arrangement.load_of(v) >= instance.event(v).capacity {
                        continue;
                    }
                    if current
                        .iter()
                        .filter(|&&w| w != out)
                        .any(|&w| instance.conflicts().conflicts(w, v))
                    {
                        continue;
                    }
                    let gain = instance.weight(v, u) - instance.weight(out, u);
                    if gain > 1e-12 {
                        match &best {
                            Some((g, _)) if *g >= gain => {}
                            _ => best = Some((gain, Move::Swap { out, v, u })),
                        }
                    }
                }
            }
        }

        match best {
            Some((_, Move::Add { v, u })) => {
                arrangement.assign(v, u);
                true
            }
            Some((_, Move::Swap { out, v, u })) => {
                arrangement.unassign(out, u);
                arrangement.assign(v, u);
                true
            }
            None => false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Move {
    Add { v: EventId, u: UserId },
    Swap { out: EventId, v: EventId, u: UserId },
}

impl ArrangementAlgorithm for LocalSearch {
    fn name(&self) -> &'static str {
        "GG+LocalSearch"
    }

    fn run_with_rng(&self, instance: &Instance, rng: &mut dyn RngCore) -> Arrangement {
        let mut arrangement = GreedyArrangement.run_with_rng(instance, rng);
        self.refine(instance, &mut arrangement);
        arrangement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::{AttributeVector, Instance, NeverConflict, TableInterest};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};

    #[test]
    fn local_search_matches_greedy_on_the_single_move_trap() {
        // In this trap the only improving change is a *coordinated* pair of
        // moves (user 0 moves to event b AND user 1 takes event a). Single
        // add/swap hill climbing cannot find it, so local search honestly
        // reports the greedy value — documenting the limitation the
        // LP-guided algorithm does not have.
        let mut b = Instance::builder();
        let a = b.add_event(1, AttributeVector::empty());
        let eb = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![a, eb]);
        b.add_user(1, AttributeVector::empty(), vec![a]);
        b.interaction_scores(vec![0.0, 0.0]);
        b.beta(1.0);
        let mut interest = TableInterest::zeros(2, 2);
        interest.set(a, UserId::new(0), 1.0);
        interest.set(a, UserId::new(1), 0.9);
        interest.set(eb, UserId::new(0), 0.8);
        let inst = b.build(&NeverConflict, &interest).unwrap();

        let m = LocalSearch::default().run_seeded(&inst, 0);
        assert!(m.is_feasible(&inst));
        assert!((m.utility(&inst).total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn add_and_swap_moves_improve_a_poor_start() {
        // Start from a deliberately bad arrangement: user 0 holds the
        // low-weight event while the high-weight event is free.
        let mut b = Instance::builder();
        let low = b.add_event(1, AttributeVector::empty());
        let high = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![low, high]);
        b.add_user(1, AttributeVector::empty(), vec![low]);
        b.interaction_scores(vec![0.0, 0.0]);
        b.beta(1.0);
        let mut interest = TableInterest::zeros(2, 2);
        interest.set(low, UserId::new(0), 0.2);
        interest.set(high, UserId::new(0), 0.9);
        interest.set(low, UserId::new(1), 0.5);
        let inst = b.build(&NeverConflict, &interest).unwrap();

        let mut m = Arrangement::empty_for(&inst);
        m.assign(low, UserId::new(0));
        let moves = LocalSearch::default().refine(&inst, &mut m);
        assert!(moves >= 2);
        assert!(m.is_feasible(&inst));
        // Swap user 0 onto the high event, then add user 1 onto the freed
        // low event: utility 0.9 + 0.5.
        assert!((m.utility(&inst).total - 1.4).abs() < 1e-9);
    }

    #[test]
    fn refinement_never_decreases_utility_and_stays_feasible() {
        let config = SyntheticConfig::tiny();
        for seed in 0..5 {
            let inst = generate_synthetic(&config, seed);
            let mut m = GreedyArrangement.run_seeded(&inst, seed);
            let before = m.utility(&inst).total;
            LocalSearch::default().refine(&inst, &mut m);
            let after = m.utility(&inst).total;
            assert!(after + 1e-9 >= before, "seed {seed}: {after} < {before}");
            assert!(m.is_feasible(&inst));
        }
    }

    #[test]
    fn move_budget_is_respected() {
        let inst = generate_synthetic(&SyntheticConfig::tiny(), 2);
        let mut empty = Arrangement::empty_for(&inst);
        let search = LocalSearch { max_moves: 1 };
        let applied = search.refine(&inst, &mut empty);
        assert!(applied <= 1);
        assert!(empty.len() <= 1);
    }
}
