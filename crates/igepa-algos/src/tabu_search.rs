//! Tabu search over feasible arrangements (extension / ablation).
//!
//! A second metaheuristic comparison point. Starting from the GG greedy
//! arrangement, every iteration applies the best non-tabu move (add, remove
//! or swap on a single user) even if it worsens the utility, and records the
//! touched `(event, user)` pairs in a fixed-length tabu list so the search
//! does not immediately undo itself. An aspiration rule overrides the tabu
//! status when a move would beat the best utility seen so far.

use crate::greedy::GreedyArrangement;
use crate::runner::ArrangementAlgorithm;
use igepa_core::{Arrangement, EventId, Instance, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Tabu-search configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TabuSearch {
    /// Number of iterations (moves applied).
    pub iterations: usize,
    /// Length of the tabu list, in `(event, user)` pairs.
    pub tenure: usize,
}

impl Default for TabuSearch {
    fn default() -> Self {
        TabuSearch {
            iterations: 400,
            tenure: 25,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Move {
    Add { v: EventId, u: UserId },
    Remove { v: EventId, u: UserId },
    Swap { out: EventId, v: EventId, u: UserId },
}

impl Move {
    /// The `(event, user)` pairs this move touches (used for the tabu list).
    fn touched(&self) -> Vec<(EventId, UserId)> {
        match *self {
            Move::Add { v, u } | Move::Remove { v, u } => vec![(v, u)],
            Move::Swap { out, v, u } => vec![(out, u), (v, u)],
        }
    }
}

impl TabuSearch {
    /// A cheap configuration for tests.
    pub fn quick() -> Self {
        TabuSearch {
            iterations: 60,
            tenure: 10,
        }
    }

    /// Enumerates every feasible move on the current arrangement together
    /// with its utility gain.
    fn candidate_moves(&self, instance: &Instance, arrangement: &Arrangement) -> Vec<(Move, f64)> {
        let mut moves = Vec::new();
        for user in instance.users() {
            let u = user.id;
            // Slice borrow — the chosen move is applied after enumeration,
            // so no per-user copy is required.
            let current = arrangement.events_of(u);
            // Removals.
            for &v in current {
                moves.push((Move::Remove { v, u }, -instance.weight(v, u)));
            }
            // Additions.
            if current.len() < user.capacity {
                for &v in &user.bids {
                    if arrangement.contains(v, u)
                        || arrangement.load_of(v) >= instance.event(v).capacity
                        || current
                            .iter()
                            .any(|&w| instance.conflicts().conflicts(w, v))
                    {
                        continue;
                    }
                    moves.push((Move::Add { v, u }, instance.weight(v, u)));
                }
            }
            // Swaps.
            for &out in current {
                for &v in &user.bids {
                    if v == out
                        || arrangement.contains(v, u)
                        || arrangement.load_of(v) >= instance.event(v).capacity
                        || current
                            .iter()
                            .filter(|&&w| w != out)
                            .any(|&w| instance.conflicts().conflicts(w, v))
                    {
                        continue;
                    }
                    moves.push((
                        Move::Swap { out, v, u },
                        instance.weight(v, u) - instance.weight(out, u),
                    ));
                }
            }
        }
        moves
    }

    fn apply(arrangement: &mut Arrangement, mv: &Move) {
        match *mv {
            Move::Add { v, u } => {
                arrangement.assign(v, u);
            }
            Move::Remove { v, u } => {
                arrangement.unassign(v, u);
            }
            Move::Swap { out, v, u } => {
                arrangement.unassign(out, u);
                arrangement.assign(v, u);
            }
        }
    }

    /// Runs the tabu search from a given start and returns the best
    /// arrangement encountered.
    pub fn search(&self, instance: &Instance, start: Arrangement) -> Arrangement {
        let mut current = start;
        let mut current_utility = current.utility(instance).total;
        let mut best = current.clone();
        let mut best_utility = current_utility;
        let mut tabu: VecDeque<(EventId, UserId)> = VecDeque::with_capacity(self.tenure + 2);

        for _ in 0..self.iterations {
            let candidates = self.candidate_moves(instance, &current);
            // Pick the best move, skipping tabu ones unless they beat the
            // incumbent (aspiration).
            let mut chosen: Option<(Move, f64)> = None;
            for (mv, gain) in candidates {
                let is_tabu = mv.touched().iter().any(|pair| tabu.contains(pair));
                let aspires = current_utility + gain > best_utility + 1e-12;
                if is_tabu && !aspires {
                    continue;
                }
                match &chosen {
                    Some((_, g)) if *g >= gain => {}
                    _ => chosen = Some((mv, gain)),
                }
            }
            let Some((mv, gain)) = chosen else {
                break;
            };
            Self::apply(&mut current, &mv);
            // lint:allow(no-raw-float-accum): solver-internal incremental objective with a deterministic move order; the final arrangement is re-scored exactly before serving
            current_utility += gain;
            for pair in mv.touched() {
                tabu.push_back(pair);
            }
            while tabu.len() > self.tenure {
                tabu.pop_front();
            }
            if current_utility > best_utility {
                best = current.clone();
                best_utility = current_utility;
            }
        }
        best
    }
}

impl ArrangementAlgorithm for TabuSearch {
    fn name(&self) -> &'static str {
        "TabuSearch"
    }

    fn run_with_rng(&self, instance: &Instance, rng: &mut dyn RngCore) -> Arrangement {
        let start = GreedyArrangement.run_with_rng(instance, rng);
        self.search(instance, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::{AttributeVector, ConstantInterest, NeverConflict, TableInterest};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};

    #[test]
    fn output_is_always_feasible_and_not_worse_than_greedy() {
        let config = SyntheticConfig::tiny();
        for seed in 0..4 {
            let instance = generate_synthetic(&config, seed);
            let greedy = GreedyArrangement.run_seeded(&instance, seed);
            let tabu = TabuSearch::quick().run_seeded(&instance, seed);
            assert!(tabu.is_feasible(&instance), "seed {seed}");
            assert!(
                tabu.utility(&instance).total + 1e-9 >= greedy.utility(&instance).total,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn escapes_the_single_move_trap_that_stops_hill_climbing() {
        // Hill climbing (LocalSearch) provably cannot improve this instance;
        // tabu search can, because it applies the best move even when that
        // move is downhill (kicking user 0 off event a), and the tabu list
        // prevents the immediate undo.
        let mut b = igepa_core::Instance::builder();
        let ea = b.add_event(1, AttributeVector::empty());
        let eb = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![ea, eb]);
        b.add_user(1, AttributeVector::empty(), vec![ea]);
        b.interaction_scores(vec![0.0, 0.0]);
        b.beta(1.0);
        let mut interest = TableInterest::zeros(2, 2);
        interest.set(ea, UserId::new(0), 1.0);
        interest.set(ea, UserId::new(1), 0.9);
        interest.set(eb, UserId::new(0), 0.8);
        let instance = b.build(&NeverConflict, &interest).unwrap();

        let tabu = TabuSearch {
            iterations: 50,
            tenure: 4,
        };
        let m = tabu.run_seeded(&instance, 0);
        assert!(m.is_feasible(&instance));
        assert!(
            (m.utility(&instance).total - 1.7).abs() < 1e-9,
            "utility {}",
            m.utility(&instance).total
        );
    }

    #[test]
    fn zero_iterations_returns_the_greedy_start() {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 1);
        let tabu = TabuSearch {
            iterations: 0,
            tenure: 5,
        };
        let greedy = GreedyArrangement.run_seeded(&instance, 1);
        let m = tabu.run_seeded(&instance, 1);
        assert!((m.utility(&instance).total - greedy.utility(&instance).total).abs() < 1e-9);
    }

    #[test]
    fn handles_instances_without_any_possible_move() {
        let mut b = igepa_core::Instance::builder();
        b.add_event(1, AttributeVector::empty());
        b.add_user(0, AttributeVector::empty(), vec![EventId::new(0)]);
        b.interaction_scores(vec![0.2]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        let m = TabuSearch::quick().run_seeded(&instance, 0);
        assert!(m.is_empty());
        assert!(m.is_feasible(&instance));
    }

    #[test]
    fn deterministic_given_the_greedy_start() {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 6);
        let a = TabuSearch::quick().run_seeded(&instance, 9);
        let b = TabuSearch::quick().run_seeded(&instance, 9);
        assert_eq!(a, b);
    }
}
