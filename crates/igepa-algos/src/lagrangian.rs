//! Lagrangian-relaxation heuristic (extension / ablation).
//!
//! The benchmark LP of the paper couples users only through the per-event
//! capacity rows (constraint (3)). Relaxing those rows with multipliers
//! `λ_v ≥ 0` decomposes the problem into independent per-user subproblems:
//! pick the admissible bid subset maximising `Σ (w(u, v) − λ_v)`. A
//! projected subgradient ascent on `λ` balances demand against capacity,
//! and after every round the per-user best responses are repaired into a
//! feasible arrangement (the same capacity repair LP-packing uses). The
//! best feasible arrangement across rounds is returned.
//!
//! This is the "prices instead of an LP solver" ablation: it shares
//! LP-packing's structure (guidance + repair) but replaces the exact LP
//! solution with dual prices, and the experiments quantify what that costs.

use crate::runner::ArrangementAlgorithm;
use igepa_core::{Arrangement, EventId, Instance, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Lagrangian-relaxation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lagrangian {
    /// Number of subgradient rounds.
    pub rounds: usize,
    /// Initial step size of the multiplier update.
    pub initial_step: f64,
    /// Multiplicative decay of the step size per round.
    pub step_decay: f64,
}

impl Default for Lagrangian {
    fn default() -> Self {
        Lagrangian {
            rounds: 150,
            initial_step: 0.1,
            step_decay: 0.97,
        }
    }
}

impl Lagrangian {
    /// A cheap configuration for tests.
    pub fn quick() -> Self {
        Lagrangian {
            rounds: 30,
            ..Self::default()
        }
    }

    /// Per-user best response to the current prices: greedily pick bids by
    /// decreasing reduced weight `w(u, v) − λ_v`, skipping conflicts and
    /// stopping at the user's capacity. Only strictly positive reduced
    /// weights are taken (an empty set is always admissible).
    fn best_response(&self, instance: &Instance, user: UserId, prices: &[f64]) -> Vec<EventId> {
        let u = instance.user(user);
        if u.capacity == 0 || u.bids.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(EventId, f64)> = u
            .bids
            .iter()
            .map(|&v| (v, instance.weight(v, user) - prices[v.index()]))
            .filter(|&(_, reduced)| reduced > 1e-12)
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut chosen: Vec<EventId> = Vec::new();
        for (v, _) in scored {
            if chosen.len() >= u.capacity {
                break;
            }
            if chosen.iter().any(|&w| instance.conflicts().conflicts(w, v)) {
                continue;
            }
            chosen.push(v);
        }
        chosen
    }

    /// Repairs per-user selections into a feasible arrangement by keeping,
    /// for every over-subscribed event, its `c_v` highest-weight takers.
    fn repair(&self, instance: &Instance, mut selections: Vec<Vec<EventId>>) -> Arrangement {
        let mut takers: Vec<Vec<UserId>> = vec![Vec::new(); instance.num_events()];
        for (user_index, set) in selections.iter().enumerate() {
            for &v in set {
                takers[v.index()].push(UserId::new(user_index));
            }
        }
        for (event_index, users) in takers.iter_mut().enumerate() {
            let event_id = EventId::new(event_index);
            let capacity = instance.event(event_id).capacity;
            if users.len() <= capacity {
                continue;
            }
            users.sort_by(|&a, &b| {
                instance
                    .weight(event_id, b)
                    .partial_cmp(&instance.weight(event_id, a))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &user in users.iter().skip(capacity) {
                selections[user.index()].retain(|&v| v != event_id);
            }
        }
        let mut arrangement = Arrangement::empty_for(instance);
        for (user_index, set) in selections.into_iter().enumerate() {
            for v in set {
                arrangement.assign(v, UserId::new(user_index));
            }
        }
        arrangement
    }
}

impl ArrangementAlgorithm for Lagrangian {
    fn name(&self) -> &'static str {
        "Lagrangian"
    }

    fn run_with_rng(&self, instance: &Instance, _rng: &mut dyn RngCore) -> Arrangement {
        let num_events = instance.num_events();
        let mut prices = vec![0.0_f64; num_events];
        let mut step = self.initial_step;
        let mut best: Option<(f64, Arrangement)> = None;

        for _ in 0..self.rounds.max(1) {
            // Decomposed best responses under the current prices.
            let selections: Vec<Vec<EventId>> = (0..instance.num_users())
                .map(|i| self.best_response(instance, UserId::new(i), &prices))
                .collect();

            // Demand per event, for the subgradient.
            let mut demand = vec![0usize; num_events];
            for set in &selections {
                for &v in set {
                    demand[v.index()] += 1;
                }
            }

            // Feasible primal candidate via capacity repair.
            let arrangement = self.repair(instance, selections);
            let utility = arrangement.utility(instance).total;
            match &best {
                Some((u, _)) if *u >= utility => {}
                _ => best = Some((utility, arrangement)),
            }

            // Projected subgradient step on the relaxed capacity rows.
            for event in instance.events() {
                let violation = demand[event.id.index()] as f64 - event.capacity as f64;
                prices[event.id.index()] = (prices[event.id.index()] + step * violation).max(0.0);
            }
            step *= self.step_decay;
        }

        best.map(|(_, m)| m)
            .unwrap_or_else(|| Arrangement::empty_for(instance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyArrangement;
    use crate::randomized::RandomU;
    use igepa_core::{AttributeVector, ConstantInterest, NeverConflict, TableInterest};
    use igepa_datagen::{generate_synthetic, SyntheticConfig};

    #[test]
    fn output_is_always_feasible() {
        let config = SyntheticConfig::tiny();
        for seed in 0..4 {
            let instance = generate_synthetic(&config, seed);
            let m = Lagrangian::quick().run_seeded(&instance, seed);
            assert!(m.is_feasible(&instance), "seed {seed}");
        }
    }

    #[test]
    fn uncontended_instances_are_solved_exactly() {
        // Plenty of capacity and no conflicts: every user should simply get
        // their best bids, matching the greedy optimum.
        let mut b = igepa_core::Instance::builder();
        let v0 = b.add_event(10, AttributeVector::empty());
        let v1 = b.add_event(10, AttributeVector::empty());
        for _ in 0..5 {
            b.add_user(2, AttributeVector::empty(), vec![v0, v1]);
        }
        b.interaction_scores(vec![0.0; 5]);
        b.beta(1.0);
        let mut interest = TableInterest::zeros(2, 5);
        for u in 0..5 {
            interest.set(v0, UserId::new(u), 0.9);
            interest.set(v1, UserId::new(u), 0.7);
        }
        let instance = b.build(&NeverConflict, &interest).unwrap();
        let m = Lagrangian::quick().run_seeded(&instance, 0);
        assert!((m.utility(&instance).total - 5.0 * 1.6).abs() < 1e-9);
    }

    #[test]
    fn prices_resolve_contention_better_than_random() {
        let config = SyntheticConfig::small();
        let mut lagrangian_total = 0.0;
        let mut random_total = 0.0;
        for seed in 0..3 {
            let instance = generate_synthetic(&config, seed);
            lagrangian_total += Lagrangian::default()
                .run_seeded(&instance, seed)
                .utility(&instance)
                .total;
            random_total += RandomU.run_seeded(&instance, seed).utility(&instance).total;
        }
        assert!(
            lagrangian_total > random_total,
            "lagrangian {lagrangian_total} vs random {random_total}"
        );
    }

    #[test]
    fn stays_close_to_greedy_on_contended_workloads() {
        // A sanity band rather than a strict dominance claim: the heuristic
        // should land within 25% of GG on the small synthetic workload.
        let config = SyntheticConfig::small();
        for seed in 0..2 {
            let instance = generate_synthetic(&config, seed);
            let lagrangian = Lagrangian::default()
                .run_seeded(&instance, seed)
                .utility(&instance)
                .total;
            let greedy = GreedyArrangement
                .run_seeded(&instance, seed)
                .utility(&instance)
                .total;
            assert!(
                lagrangian > 0.75 * greedy,
                "seed {seed}: lagrangian {lagrangian} vs greedy {greedy}"
            );
        }
    }

    #[test]
    fn handles_empty_instances() {
        let mut b = igepa_core::Instance::builder();
        b.add_event(1, AttributeVector::empty());
        b.interaction_scores(vec![]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.2)).unwrap();
        let m = Lagrangian::quick().run_seeded(&instance, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn runs_are_deterministic() {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 2);
        let a = Lagrangian::quick().run_seeded(&instance, 1);
        let b = Lagrangian::quick().run_seeded(&instance, 2);
        // The algorithm ignores the RNG entirely, so different seeds agree.
        assert_eq!(a, b);
    }
}
