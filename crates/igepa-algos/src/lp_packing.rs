//! LP-packing (Algorithm 1 of the paper).
//!
//! The algorithm solves the benchmark LP (1)–(4) over admissible event sets,
//! samples one admissible set per user with probability `α · x*_{u,S}`, and
//! repairs event-capacity violations by removing events from the sampled
//! sets. With `α = ½` the expected utility is at least ¼ of the optimum
//! (Theorem 2); the paper's experiments set `α = 1`, which empirically works
//! better because the repair step already handles over-subscription.
//!
//! The LP backend is pluggable:
//!
//! * [`LpBackend::Simplex`] — the exact bounded-variable simplex of
//!   `igepa-lp` (what the paper obtains from Gurobi);
//! * [`LpBackend::DualSubgradient`] — the structure-aware approximate
//!   packing solver, which scales to the paper's largest sweeps;
//! * [`LpBackend::Auto`] — simplex when the LP is small enough
//!   (`|U| + |V|` below a threshold), the packing solver otherwise.

use crate::runner::ArrangementAlgorithm;
use igepa_core::{AdmissibleSetIndex, Arrangement, EventId, Instance, UserId};
use igepa_lp::{
    BlockPackingProblem, BlockPackingSolver, LinearProgram, PackingBlock, PackingColumn,
    SimplexSolver,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Which LP solver backs the benchmark LP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LpBackend {
    /// Exact bounded-variable revised simplex.
    Simplex,
    /// Approximate dual-subgradient packing solver with the given number of
    /// rounds.
    DualSubgradient {
        /// Subgradient rounds (600–2000 is a good range).
        rounds: usize,
    },
    /// Simplex when `|U| + |V|` is at most the threshold, dual subgradient
    /// otherwise.
    Auto {
        /// Row-count threshold above which the approximate solver is used.
        row_threshold: usize,
    },
}

impl Default for LpBackend {
    fn default() -> Self {
        LpBackend::Auto {
            row_threshold: 1200,
        }
    }
}

/// The LP-packing algorithm (Algorithm 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpPacking {
    /// Sampling parameter α. Theorem 2 uses ½; the paper's evaluation uses 1.
    pub alpha: f64,
    /// LP backend.
    pub backend: LpBackend,
    /// Per-user cap on admissible-set enumeration.
    pub admissible_set_limit: usize,
}

impl Default for LpPacking {
    /// The paper's empirical configuration: `α = 1`, automatic backend.
    fn default() -> Self {
        LpPacking {
            alpha: 1.0,
            backend: LpBackend::default(),
            admissible_set_limit: igepa_core::DEFAULT_SET_LIMIT,
        }
    }
}

impl LpPacking {
    /// LP-packing with the theoretical `α = ½` (used by the approximation
    /// ratio study).
    pub fn theoretical() -> Self {
        LpPacking {
            alpha: 0.5,
            ..Self::default()
        }
    }

    /// LP-packing with a specific α.
    pub fn with_alpha(alpha: f64) -> Self {
        LpPacking {
            alpha,
            ..Self::default()
        }
    }

    /// LP-packing forced onto a specific backend.
    pub fn with_backend(backend: LpBackend) -> Self {
        LpPacking {
            backend,
            ..Self::default()
        }
    }

    /// Solves the benchmark LP (1)–(4) and returns, per user, the admissible
    /// sets together with their fractional values `x*_{u,S}`.
    pub fn solve_benchmark_lp(
        &self,
        instance: &Instance,
        admissible: &AdmissibleSetIndex,
    ) -> Vec<Vec<(Vec<EventId>, f64)>> {
        self.solve_benchmark_lp_warm(instance, admissible, None)
    }

    /// As [`LpPacking::solve_benchmark_lp`], optionally warm-started from
    /// a previous arrangement. On the dual-subgradient backend the
    /// previous arrangement seeds the row prices (see
    /// [`LpPacking::event_prices_from`]) — the dual warm start. The exact
    /// simplex backend crashes a primal basis from it instead
    /// ([`SimplexBasis`]): every admissible set a user held verbatim in
    /// the previous arrangement starts at its upper bound, so the
    /// re-solve pays only the pivots the instance change requires while
    /// returning exactly the cold optimum.
    pub fn solve_benchmark_lp_warm(
        &self,
        instance: &Instance,
        admissible: &AdmissibleSetIndex,
        previous: Option<&Arrangement>,
    ) -> Vec<Vec<(Vec<EventId>, f64)>> {
        let use_simplex = match self.backend {
            LpBackend::Simplex => true,
            LpBackend::DualSubgradient { .. } => false,
            LpBackend::Auto { row_threshold } => {
                instance.num_users() + instance.num_events() <= row_threshold
            }
        };
        if use_simplex {
            self.solve_with_simplex(instance, admissible, previous)
        } else {
            let rounds = match self.backend {
                LpBackend::DualSubgradient { rounds } => rounds,
                // Auto backend: spend more rounds on larger LPs so that the
                // dual prices have converged enough to prioritise the right
                // users on contended events.
                _ => 1500,
            };
            let prices = previous.map(|prev| Self::event_prices_from(instance, prev));
            self.solve_with_packing(instance, admissible, rounds, prices.as_deref())
        }
    }

    /// Derives initial dual prices (one per event) from a previous
    /// arrangement: an event that was filled to capacity is priced at the
    /// marginal (lowest) weight of its attendees — the classic dual
    /// estimate "what does one more seat earn" — while under-subscribed
    /// events stay free. Feeding these into
    /// [`BlockPackingSolver::solve_warm`] lets the subgradient ascent
    /// start near the prices the previous solve ended at instead of
    /// re-pricing every contended event from zero.
    pub fn event_prices_from(instance: &Instance, previous: &Arrangement) -> Vec<f64> {
        let num_events = instance.num_events();
        let mut load = vec![0usize; num_events];
        let mut min_weight = vec![f64::INFINITY; num_events];
        for (v, u) in previous.pairs() {
            if v.index() >= num_events || u.index() >= instance.num_users() {
                continue;
            }
            load[v.index()] += 1;
            let w = instance.weight(v, u);
            if w < min_weight[v.index()] {
                min_weight[v.index()] = w;
            }
        }
        (0..num_events)
            .map(|i| {
                let capacity = instance.event(EventId::new(i)).capacity;
                if capacity > 0 && load[i] >= capacity && min_weight[i].is_finite() {
                    min_weight[i]
                } else {
                    0.0
                }
            })
            .collect()
    }

    fn solve_with_simplex(
        &self,
        instance: &Instance,
        admissible: &AdmissibleSetIndex,
        previous: Option<&Arrangement>,
    ) -> Vec<Vec<(Vec<EventId>, f64)>> {
        let mut lp = LinearProgram::new();
        // One variable per (user, admissible set). A set the user held
        // verbatim in the previous arrangement flags its variable for the
        // warm-start crash basis: the previous (integral) solution is a
        // vertex of the new LP whenever it is still feasible, so starting
        // there leaves only the pivots the change requires.
        let mut at_upper: Vec<bool> = Vec::new();
        let mut var_of: Vec<Vec<usize>> = Vec::with_capacity(instance.num_users());
        let mut event_terms: Vec<Vec<(usize, f64)>> = vec![Vec::new(); instance.num_events()];
        for user_sets in admissible.iter() {
            let held = previous
                .filter(|prev| user_sets.user.index() < prev.num_users())
                .map(|prev| prev.events_of(user_sets.user));
            let mut ids = Vec::with_capacity(user_sets.sets.len());
            for set in &user_sets.sets {
                let weight = instance.set_weight(user_sets.user, set);
                let var = lp.add_var(weight, 1.0);
                at_upper.push(held.is_some_and(|h| !h.is_empty() && h == set.as_slice()));
                ids.push(var);
                for &v in set {
                    event_terms[v.index()].push((var, 1.0));
                }
            }
            var_of.push(ids);
        }
        // Constraint (2): per-user convexity.
        for (user_index, ids) in var_of.iter().enumerate() {
            if !ids.is_empty() {
                lp.add_le_constraint(ids.iter().map(|&v| (v, 1.0)), 1.0)
                    .unwrap_or_else(|e| panic!("user {user_index} convexity row: {e}"));
            }
        }
        // Constraint (3): per-event capacity.
        for (event_index, terms) in event_terms.into_iter().enumerate() {
            if !terms.is_empty() {
                let capacity = instance.event(EventId::new(event_index)).capacity as f64;
                lp.add_le_constraint(terms, capacity)
                    .unwrap_or_else(|e| panic!("event {event_index} capacity row: {e}"));
            }
        }
        let solver = SimplexSolver::default();
        let basis = igepa_lp::SimplexBasis::from_upper_flags(at_upper);
        let solution = if basis.is_empty() {
            solver.solve(&lp)
        } else {
            solver.solve_warm(&lp, &basis)
        }
        .expect("benchmark LP is always feasible (x = 0)");
        admissible
            .iter()
            .zip(var_of)
            .map(|(user_sets, ids)| {
                user_sets
                    .sets
                    .iter()
                    .zip(ids)
                    .map(|(set, var)| (set.clone(), solution.values[var].clamp(0.0, 1.0)))
                    .collect()
            })
            .collect()
    }

    fn solve_with_packing(
        &self,
        instance: &Instance,
        admissible: &AdmissibleSetIndex,
        rounds: usize,
        event_prices: Option<&[f64]>,
    ) -> Vec<Vec<(Vec<EventId>, f64)>> {
        // Global rows: one per event with positive capacity.
        let mut row_of_event: Vec<Option<usize>> = vec![None; instance.num_events()];
        let mut capacities = Vec::new();
        for event in instance.events() {
            if event.capacity > 0 {
                row_of_event[event.id.index()] = Some(capacities.len());
                capacities.push(event.capacity as f64);
            }
        }
        let mut problem = BlockPackingProblem::new(capacities);
        for user_sets in admissible.iter() {
            let columns: Vec<PackingColumn> = user_sets
                .sets
                .iter()
                .filter(|set| set.iter().all(|v| row_of_event[v.index()].is_some()))
                .map(|set| PackingColumn {
                    profit: instance.set_weight(user_sets.user, set),
                    usage: set
                        .iter()
                        .map(|v| (row_of_event[v.index()].expect("filtered"), 1.0))
                        .collect(),
                })
                .collect();
            problem.add_block(PackingBlock { columns });
        }
        let solver = BlockPackingSolver::with_rounds(rounds);
        let solution = match event_prices {
            Some(prices) => {
                // Re-index the per-event prices onto the problem's rows
                // (events with zero capacity have no row).
                let row_prices: Vec<f64> = row_of_event
                    .iter()
                    .enumerate()
                    .filter_map(|(event, row)| {
                        row.map(|_| prices.get(event).copied().unwrap_or(0.0))
                    })
                    .collect();
                solver.solve_warm(&problem, &row_prices)
            }
            None => solver.solve(&problem),
        }
        .expect("block packing LP is well-formed");
        admissible
            .iter()
            .enumerate()
            .map(|(block_index, user_sets)| {
                // Re-associate values with the (unfiltered) admissible sets.
                let mut out = Vec::with_capacity(user_sets.sets.len());
                let mut value_iter = solution.values[block_index].iter();
                for set in &user_sets.sets {
                    let usable = set.iter().all(|v| row_of_event[v.index()].is_some());
                    let value = if usable {
                        *value_iter.next().unwrap_or(&0.0)
                    } else {
                        0.0
                    };
                    out.push((set.clone(), value.clamp(0.0, 1.0)));
                }
                out
            })
            .collect()
    }
}

impl ArrangementAlgorithm for LpPacking {
    fn name(&self) -> &'static str {
        "LP-packing"
    }

    fn run_with_rng(&self, instance: &Instance, rng: &mut dyn RngCore) -> Arrangement {
        // Line 1: admissible sets and the benchmark LP.
        let admissible = AdmissibleSetIndex::build_with_limit(instance, self.admissible_set_limit)
            .expect("admissible-set enumeration within limit");
        let fractional = self.solve_benchmark_lp(instance, &admissible);
        self.round_fractional(instance, &fractional, rng)
    }
}

impl LpPacking {
    /// Warm-start re-solve used by the `WarmStart` impl: solve the LP
    /// seeded from `previous` — dual prices on the subgradient backend, a
    /// primal crash basis on the exact simplex backend — then round.
    pub(crate) fn resolve_from_previous(
        &self,
        instance: &Instance,
        previous: &Arrangement,
        rng: &mut dyn RngCore,
    ) -> Arrangement {
        let admissible = AdmissibleSetIndex::build_with_limit(instance, self.admissible_set_limit)
            .expect("admissible-set enumeration within limit");
        let fractional = self.solve_benchmark_lp_warm(instance, &admissible, Some(previous));
        self.round_fractional(instance, &fractional, rng)
    }

    /// Lines 2–8 of Algorithm 1: randomised rounding of the fractional
    /// solution plus the capacity repair step (shared by the cold and
    /// warm-start paths).
    fn round_fractional(
        &self,
        instance: &Instance,
        fractional: &[Vec<(Vec<EventId>, f64)>],
        rng: &mut dyn RngCore,
    ) -> Arrangement {
        use rand::Rng;

        // Lines 2–3: sample one admissible set per user with probability
        // α · x*_{u,S}.
        let alpha = self.alpha.clamp(0.0, 1.0);
        let mut sampled: Vec<Vec<EventId>> = Vec::with_capacity(instance.num_users());
        for per_user in fractional {
            let mut threshold: f64 = rng.gen_range(0.0..1.0);
            let mut chosen: Vec<EventId> = Vec::new();
            for (set, value) in per_user {
                let p = alpha * value;
                if threshold < p {
                    chosen = set.clone();
                    break;
                }
                // lint:allow(no-raw-float-accum): seeded rounding walk over a fixed candidate order — deterministic for a given seed, and never part of served or replayed state
                threshold -= p;
            }
            sampled.push(chosen);
        }

        // Lines 4–7: repair event-capacity violations. The paper iterates
        // over users and removes an event from a user's sampled set whenever
        // keeping it would violate the event's capacity; the iteration order
        // is left unspecified. Because each event's over-subscription is
        // independent of the others (dropping `v` from one user never changes
        // another event's demand), we instantiate the order per event and
        // keep the `c_v` highest-weight sampled pairs — the same repair rule,
        // with the removals charged to the least valuable pairs first.
        let mut takers: Vec<Vec<UserId>> = vec![Vec::new(); instance.num_events()];
        for (user_index, set) in sampled.iter().enumerate() {
            for &v in set {
                takers[v.index()].push(UserId::new(user_index));
            }
        }
        for (event_index, users) in takers.iter_mut().enumerate() {
            let event_id = EventId::new(event_index);
            let capacity = instance.event(event_id).capacity;
            if users.len() <= capacity {
                continue;
            }
            // Sort the over-subscribed event's takers by decreasing weight and
            // drop the tail from their sampled sets.
            users.sort_by(|&a, &b| {
                instance
                    .weight(event_id, b)
                    .partial_cmp(&instance.weight(event_id, a))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &user in users.iter().skip(capacity) {
                sampled[user.index()].retain(|&v| v != event_id);
            }
        }

        // Line 8: assemble the arrangement.
        let mut arrangement = Arrangement::empty_for(instance);
        for (user_index, set) in sampled.into_iter().enumerate() {
            for v in set {
                arrangement.assign(v, UserId::new(user_index));
            }
        }
        arrangement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::{AttributeVector, ConstantInterest, PairSetConflict, TableInterest};

    /// Two events (capacity 1 each, conflicting), three users all bidding
    /// for both. A user can take at most one of the two events.
    fn conflicting_instance() -> Instance {
        let mut b = Instance::builder();
        let v0 = b.add_event(1, AttributeVector::empty());
        let v1 = b.add_event(1, AttributeVector::empty());
        for _ in 0..3 {
            b.add_user(2, AttributeVector::empty(), vec![v0, v1]);
        }
        b.interaction_scores(vec![0.9, 0.5, 0.1]);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        b.build(&sigma, &ConstantInterest(0.8)).unwrap()
    }

    #[test]
    fn output_is_always_feasible() {
        let inst = conflicting_instance();
        for seed in 0..20 {
            let m = LpPacking::default().run_seeded(&inst, seed);
            assert!(
                m.is_feasible(&inst),
                "seed {seed} produced infeasible output"
            );
        }
    }

    #[test]
    fn respects_event_capacities_under_contention() {
        let inst = conflicting_instance();
        let m = LpPacking::default().run_seeded(&inst, 7);
        assert!(m.load_of(EventId::new(0)) <= 1);
        assert!(m.load_of(EventId::new(1)) <= 1);
        assert!(m.len() <= 2);
    }

    #[test]
    fn alpha_one_fills_uncontested_capacity() {
        // One event with plenty of room; every user should get it.
        let mut b = Instance::builder();
        let v0 = b.add_event(10, AttributeVector::empty());
        for _ in 0..4 {
            b.add_user(1, AttributeVector::empty(), vec![v0]);
        }
        b.interaction_scores(vec![0.2; 4]);
        let inst = b
            .build(&igepa_core::NeverConflict, &ConstantInterest(0.9))
            .unwrap();
        let m = LpPacking::default().run_seeded(&inst, 1);
        assert_eq!(m.len(), 4);
        assert!(m.is_feasible(&inst));
    }

    #[test]
    fn alpha_zero_assigns_nothing() {
        let inst = conflicting_instance();
        let m = LpPacking::with_alpha(0.0).run_seeded(&inst, 3);
        assert!(m.is_empty());
    }

    #[test]
    fn simplex_and_packing_backends_agree_on_lp_value() {
        let inst = conflicting_instance();
        let admissible = AdmissibleSetIndex::build(&inst).unwrap();
        let exact = LpPacking::with_backend(LpBackend::Simplex);
        let approx = LpPacking::with_backend(LpBackend::DualSubgradient { rounds: 3000 });
        let value = |fractional: &Vec<Vec<(Vec<EventId>, f64)>>| -> f64 {
            fractional
                .iter()
                .enumerate()
                .map(|(u, sets)| {
                    sets.iter()
                        .map(|(s, x)| x * inst.set_weight(UserId::new(u), s))
                        .sum::<f64>()
                })
                .sum()
        };
        let exact_value = value(&exact.solve_benchmark_lp(&inst, &admissible));
        let approx_value = value(&approx.solve_benchmark_lp(&inst, &admissible));
        assert!(approx_value <= exact_value + 1e-6);
        assert!(
            approx_value >= 0.85 * exact_value,
            "approx {approx_value} vs exact {exact_value}"
        );
    }

    #[test]
    fn lp_value_upper_bounds_any_feasible_arrangement() {
        // Lemma 1: the LP optimum dominates the utility of every feasible
        // arrangement, in particular the rounded one.
        let inst = conflicting_instance();
        let admissible = AdmissibleSetIndex::build(&inst).unwrap();
        let algo = LpPacking::with_backend(LpBackend::Simplex);
        let fractional = algo.solve_benchmark_lp(&inst, &admissible);
        let lp_value: f64 = fractional
            .iter()
            .enumerate()
            .map(|(u, sets)| {
                sets.iter()
                    .map(|(s, x)| x * inst.set_weight(UserId::new(u), s))
                    .sum::<f64>()
            })
            .sum();
        for seed in 0..10 {
            let m = algo.run_seeded(&inst, seed);
            assert!(m.utility(&inst).total <= lp_value + 1e-6);
        }
    }

    #[test]
    fn theoretical_alpha_is_half() {
        assert_eq!(LpPacking::theoretical().alpha, 0.5);
        assert_eq!(LpPacking::default().alpha, 1.0);
    }

    #[test]
    fn prefers_high_weight_users_when_capacity_is_scarce() {
        // One event of capacity 1; two users, one with far higher weight.
        let mut b = Instance::builder();
        let v0 = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![v0]);
        b.add_user(1, AttributeVector::empty(), vec![v0]);
        b.interaction_scores(vec![1.0, 0.0]);
        let mut interest = TableInterest::zeros(1, 2);
        interest.set(v0, UserId::new(0), 1.0);
        interest.set(v0, UserId::new(1), 0.05);
        let inst = b.build(&igepa_core::NeverConflict, &interest).unwrap();
        // The LP puts all capacity on user 0, so across seeds user 0 wins
        // essentially always.
        let algo = LpPacking::with_backend(LpBackend::Simplex);
        let mut user0_wins = 0;
        for seed in 0..20 {
            let m = algo.run_seeded(&inst, seed);
            if m.contains(v0, UserId::new(0)) {
                user0_wins += 1;
            }
        }
        assert!(user0_wins >= 18, "user 0 won only {user0_wins}/20 times");
    }
}
