//! Region-scoped greedy repair: the serving engine's patch kernel,
//! generalised over the state it mutates.
//!
//! The engine's repair pass (prune dirty users → evict overflow at dirty
//! events → greedily re-admit the heaviest feasible candidates) used to
//! be welded to the full [`Arrangement`]. [`patch_region`] is the same
//! pass expressed against the [`AssignmentState`] trait, so it can run
//!
//! * directly on the shard's arrangement (the serial path — identical
//!   behaviour, op-for-op), or
//! * on a [`ComponentState`] sandbox holding only the slice of state an
//!   independent dirty component can touch, enabling components to be
//!   repaired **concurrently** and their recorded [`PatchOps`] replayed
//!   onto the real arrangement afterwards.
//!
//! Determinism: for a fixed `(instance, state, dirty_users,
//! dirty_events)` the pass is a pure function — candidate sets are
//! ordered (`BTreeSet`), ties break on ids, and the recorded op lists
//! come back in execution order. Because a component's candidates are a
//! weight-ordered subsequence of the global candidate ordering and
//! cross-component candidates never share feasibility state, repairing
//! components separately reproduces the global pass exactly.

use igepa_core::{Arrangement, EventId, Instance, UserId};
use std::collections::BTreeSet;

/// The mutable assignment state the repair pass runs against — either
/// the full [`Arrangement`] or a component-local [`ComponentState`].
///
/// Semantics mirror the [`Arrangement`] methods of the same names; rows
/// are sorted ascending and loads agree with memberships for every
/// event the pass touches.
pub trait AssignmentState {
    /// Events currently assigned to `user`, sorted.
    fn events_of(&self, user: UserId) -> &[EventId];
    /// Users currently assigned to `event`, sorted. Only called for
    /// events passed as dirty to [`patch_region`].
    fn users_of(&self, event: EventId) -> &[UserId];
    /// Current load of `event`.
    fn load_of(&self, event: EventId) -> usize;
    /// Whether `(event, user)` is assigned.
    fn contains(&self, event: EventId, user: UserId) -> bool;
    /// Adds `(event, user)`; returns whether it was newly inserted.
    fn assign(&mut self, event: EventId, user: UserId) -> bool;
    /// Removes `(event, user)`; returns whether it was present.
    fn unassign(&mut self, event: EventId, user: UserId) -> bool;
    /// Removes every assignment of `user`, returning the events they
    /// were removed from.
    fn remove_user_assignments(&mut self, user: UserId) -> Vec<EventId>;
}

impl AssignmentState for Arrangement {
    fn events_of(&self, user: UserId) -> &[EventId] {
        Arrangement::events_of(self, user)
    }
    fn users_of(&self, event: EventId) -> &[UserId] {
        Arrangement::users_of(self, event)
    }
    fn load_of(&self, event: EventId) -> usize {
        Arrangement::load_of(self, event)
    }
    fn contains(&self, event: EventId, user: UserId) -> bool {
        Arrangement::contains(self, event, user)
    }
    fn assign(&mut self, event: EventId, user: UserId) -> bool {
        Arrangement::assign(self, event, user)
    }
    fn unassign(&mut self, event: EventId, user: UserId) -> bool {
        Arrangement::unassign(self, event, user)
    }
    fn remove_user_assignments(&mut self, user: UserId) -> Vec<EventId> {
        Arrangement::remove_user_assignments(self, user)
    }
}

/// Epoch-stamped dense slot tables shared by every [`ComponentState`]
/// of one repair pass: global user/event ids map to sequential slots in
/// the order components registered them, so sandbox state lives in
/// plain vectors and every lookup on the repair hot path is O(1) — no
/// tree or hash walk per candidate check.
///
/// One table serves all components because components are disjoint: a
/// global id is registered by at most one component per epoch, and each
/// sandbox range-checks the slot against its own contiguous block.
/// [`ComponentSlots::begin`] resets the mapping in O(1) by bumping the
/// epoch, so a repair pays O(touched) writes per round and O(universe)
/// memory once, amortised across the shard's lifetime.
#[derive(Debug, Clone, Default)]
pub struct ComponentSlots {
    epoch: u32,
    next_user: u32,
    next_event: u32,
    /// `epoch << 32 | slot` per user index; stale epochs mean "not in
    /// any component this round".
    user_slot: Vec<u64>,
    event_slot: Vec<u64>,
}

impl ComponentSlots {
    /// Starts a fresh round over `num_events` events and `num_users`
    /// users. O(1) unless the tables need to grow (or the 32-bit epoch
    /// wraps, forcing one O(universe) clear every 2^32 rounds).
    pub fn begin(&mut self, num_events: usize, num_users: usize) {
        if self.epoch == u32::MAX {
            self.user_slot.clear();
            self.event_slot.clear();
            self.epoch = 0;
        }
        self.epoch += 1;
        self.next_user = 0;
        self.next_event = 0;
        if self.user_slot.len() < num_users {
            self.user_slot.resize(num_users, 0);
        }
        if self.event_slot.len() < num_events {
            self.event_slot.resize(num_events, 0);
        }
    }

    /// Registers `u` under the next sequential user slot. Components
    /// must register their members contiguously (all of one component,
    /// then all of the next) for the sandboxes' range checks to hold.
    pub fn push_user(&mut self, u: UserId) -> u32 {
        let slot = self.next_user;
        self.next_user += 1;
        self.user_slot[u.index()] = (u64::from(self.epoch) << 32) | u64::from(slot);
        slot
    }

    /// Registers `v` under the next sequential event slot.
    pub fn push_event(&mut self, v: EventId) -> u32 {
        let slot = self.next_event;
        self.next_event += 1;
        self.event_slot[v.index()] = (u64::from(self.epoch) << 32) | u64::from(slot);
        slot
    }

    fn user(&self, u: UserId) -> Option<u32> {
        let entry = *self.user_slot.get(u.index())?;
        ((entry >> 32) as u32 == self.epoch).then_some(entry as u32)
    }

    fn event(&self, v: EventId) -> Option<u32> {
        let entry = *self.event_slot.get(v.index())?;
        ((entry >> 32) as u32 == self.epoch).then_some(entry as u32)
    }
}

/// Sparse sandbox over the slice of an arrangement one independent
/// dirty component can read or write: complete assignment rows for the
/// component's users, loads for the component's events, and complete
/// attendee rows for the component's *dirty* events (the only events
/// whose attendees the pass inspects).
///
/// Extraction is O(component): a handful of row copies, never a scan of
/// the full arrangement — and it borrows the arrangement and the slot
/// tables immutably, so components extract *inside* their parallel
/// repair jobs rather than serially up front.
#[derive(Debug, Clone)]
pub struct ComponentState<'a> {
    slots: &'a ComponentSlots,
    /// First user/event slot of this component's contiguous block.
    user_base: u32,
    event_base: u32,
    /// Assignment rows per component user, indexed by `slot - base`.
    per_user: Vec<Vec<EventId>>,
    load: Vec<usize>,
    /// Attendee rows, `Some` only for the dirty events.
    attendees: Vec<Option<Vec<UserId>>>,
}

impl<'a> ComponentState<'a> {
    /// Copies the component's slice out of `arrangement`.
    ///
    /// `users` must cover every user the repair may touch (dirty users,
    /// attendees and bidders of dirty events); `events` every event
    /// whose load it may read or write; `attendee_events` the events
    /// whose full attendee lists it inspects (the dirty events). Both
    /// lists must have been registered in `slots` in this exact order,
    /// as one contiguous block per list.
    pub fn extract(
        arrangement: &Arrangement,
        slots: &'a ComponentSlots,
        users: &[UserId],
        events: &[EventId],
        attendee_events: &[EventId],
    ) -> Self {
        let user_base = users
            .first()
            .map(|&u| slots.user(u).expect("component users must be registered"))
            .unwrap_or(0);
        let event_base = events
            .first()
            .map(|&v| slots.event(v).expect("component events must be registered"))
            .unwrap_or(0);
        let per_user: Vec<Vec<EventId>> = users
            .iter()
            .map(|&u| arrangement.events_of(u).to_vec())
            .collect();
        let load: Vec<usize> = events.iter().map(|&v| arrangement.load_of(v)).collect();
        let mut attendees: Vec<Option<Vec<UserId>>> = vec![None; events.len()];
        for &v in attendee_events {
            let i =
                (slots.event(v).expect("dirty events must be registered") - event_base) as usize;
            attendees[i] = Some(arrangement.users_of(v).to_vec());
        }
        if cfg!(debug_assertions) {
            for (i, &u) in users.iter().enumerate() {
                debug_assert_eq!(slots.user(u), Some(user_base + i as u32));
            }
            for (i, &v) in events.iter().enumerate() {
                debug_assert_eq!(slots.event(v), Some(event_base + i as u32));
            }
        }
        ComponentState {
            slots,
            user_base,
            event_base,
            per_user,
            load,
            attendees,
        }
    }

    /// Local row index of `u`, `None` when `u` is outside this
    /// component (its slot falls outside the contiguous block).
    fn user_index(&self, u: UserId) -> Option<usize> {
        let i = self.slots.user(u)?.checked_sub(self.user_base)? as usize;
        (i < self.per_user.len()).then_some(i)
    }

    fn event_index(&self, v: EventId) -> Option<usize> {
        let i = self.slots.event(v)?.checked_sub(self.event_base)? as usize;
        (i < self.load.len()).then_some(i)
    }
}

fn sorted_insert<T: Ord>(row: &mut Vec<T>, value: T) -> bool {
    match row.binary_search(&value) {
        Ok(_) => false,
        Err(pos) => {
            row.insert(pos, value);
            true
        }
    }
}

fn sorted_remove<T: Ord>(row: &mut Vec<T>, value: &T) -> bool {
    match row.binary_search(value) {
        Ok(pos) => {
            row.remove(pos);
            true
        }
        Err(_) => false,
    }
}

impl AssignmentState for ComponentState<'_> {
    fn events_of(&self, user: UserId) -> &[EventId] {
        self.user_index(user)
            .map(|i| self.per_user[i].as_slice())
            .unwrap_or_default()
    }

    fn users_of(&self, event: EventId) -> &[UserId] {
        self.event_index(event)
            .and_then(|i| self.attendees[i].as_deref())
            .unwrap_or_default()
    }

    fn load_of(&self, event: EventId) -> usize {
        let i = self
            .event_index(event)
            .expect("component touched an event outside its extracted slice");
        self.load[i]
    }

    fn contains(&self, event: EventId, user: UserId) -> bool {
        self.user_index(user)
            .is_some_and(|i| self.per_user[i].binary_search(&event).is_ok())
    }

    fn assign(&mut self, event: EventId, user: UserId) -> bool {
        let u = self
            .user_index(user)
            .expect("component touched a user outside its extracted slice");
        if !sorted_insert(&mut self.per_user[u], event) {
            return false;
        }
        let i = self
            .event_index(event)
            .expect("component touched an event outside its extracted slice");
        if let Some(list) = self.attendees[i].as_mut() {
            sorted_insert(list, user);
        }
        self.load[i] += 1;
        true
    }

    fn unassign(&mut self, event: EventId, user: UserId) -> bool {
        let Some(u) = self.user_index(user) else {
            return false;
        };
        if !sorted_remove(&mut self.per_user[u], &event) {
            return false;
        }
        let i = self
            .event_index(event)
            .expect("component touched an event outside its extracted slice");
        if let Some(list) = self.attendees[i].as_mut() {
            sorted_remove(list, &user);
        }
        self.load[i] -= 1;
        true
    }

    fn remove_user_assignments(&mut self, user: UserId) -> Vec<EventId> {
        let Some(u) = self.user_index(user) else {
            return Vec::new();
        };
        let events = std::mem::take(&mut self.per_user[u]);
        for &v in &events {
            let i = self
                .event_index(v)
                .expect("component touched an event outside its extracted slice");
            if let Some(list) = self.attendees[i].as_mut() {
                sorted_remove(list, &user);
            }
            self.load[i] -= 1;
        }
        events
    }
}

/// Whether adding `(event, user)` keeps `state` feasible for `instance`
/// — bid, both capacities, conflicts. The generic form of
/// [`crate::warm_start::can_assign`].
pub fn can_assign_in<S: AssignmentState + ?Sized>(
    instance: &Instance,
    state: &S,
    event: EventId,
    user: UserId,
) -> bool {
    if !instance.user(user).has_bid(event) {
        return false;
    }
    if state.load_of(event) >= instance.event(event).capacity {
        return false;
    }
    let current = state.events_of(user);
    if current.len() >= instance.user(user).capacity {
        return false;
    }
    if state.contains(event, user) {
        return false;
    }
    !current
        .iter()
        .any(|&w| instance.conflicts().conflicts(w, event))
}

/// Sorts candidate pairs by decreasing weight (ties broken by ascending
/// `(event, user)`) and admits each pair that keeps `state` feasible,
/// invoking `on_admit` per admission. The generic form of
/// [`crate::warm_start::admit_greedily_with`].
pub fn admit_greedily_in<S: AssignmentState + ?Sized>(
    instance: &Instance,
    state: &mut S,
    candidates: impl IntoIterator<Item = (EventId, UserId)>,
    mut on_admit: impl FnMut(EventId, UserId),
) -> usize {
    let mut pairs: Vec<(f64, EventId, UserId)> = candidates
        .into_iter()
        .map(|(v, u)| (instance.weight(v, u), v, u))
        .collect();
    pairs.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
    });
    let mut added = 0;
    for (_, v, u) in pairs {
        if can_assign_in(instance, state, v, u) {
            state.assign(v, u);
            on_admit(v, u);
            added += 1;
        }
    }
    added
}

/// The pair edits a repair pass performed, in execution order: all
/// removals (prunes then evictions), then all admissions.
///
/// Replaying `removed` then `added` onto any state that matched the
/// repaired one pre-pass reproduces the post-pass state exactly; the
/// same lists drive incremental utility-tracker updates (exact sums are
/// order-independent, so post-hoc replay is bit-identical to inline
/// tracking).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatchOps {
    /// Pairs removed, in removal order.
    pub removed: Vec<(EventId, UserId)>,
    /// Pairs admitted, in admission order.
    pub added: Vec<(EventId, UserId)>,
}

impl PatchOps {
    /// Whether the pass changed nothing.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }

    /// Appends another pass's ops after this one's.
    pub fn extend(&mut self, other: PatchOps) {
        self.removed.extend(other.removed);
        self.added.extend(other.added);
    }
}

/// The engine's greedy repair pass over a dirty region: prune every
/// dirty user, evict overflow at every dirty event (lightest attendees
/// first), then greedily re-admit the heaviest feasible candidates
/// around the region. Returns the recorded edits.
///
/// `dirty_users` and `dirty_events` must be sorted ascending (callers
/// hold them in ordered sets); determinism of the pass relies on it.
pub fn patch_region<S: AssignmentState + ?Sized>(
    instance: &Instance,
    state: &mut S,
    dirty_users: &[UserId],
    dirty_events: &[EventId],
) -> PatchOps {
    let mut ops = PatchOps::default();

    // Re-seat every dirty user from scratch: removing all their pairs
    // and re-adding greedily uniformly handles revoked bids, shrunk
    // user capacities and conflict structure around new assignments.
    for &u in dirty_users {
        for v in state.remove_user_assignments(u) {
            ops.removed.push((v, u));
        }
    }

    // Evict overflow at dirty events (capacity may have shrunk),
    // dropping the lightest attendees first.
    let mut evicted_users: BTreeSet<UserId> = BTreeSet::new();
    for &v in dirty_events {
        let capacity = instance.event(v).capacity;
        if state.load_of(v) <= capacity {
            continue;
        }
        let mut attendees: Vec<(f64, UserId)> = state
            .users_of(v)
            .iter()
            .map(|&u| (instance.weight(v, u), u))
            .collect();
        attendees.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        let overflow = state.load_of(v) - capacity;
        for &(_, u) in attendees.iter().take(overflow) {
            state.unassign(v, u);
            ops.removed.push((v, u));
            evicted_users.insert(u);
        }
    }

    // Candidate pairs: dirty users × their bids, dirty events × their
    // bidders, and every bid of a user evicted above (they may fit
    // elsewhere).
    let mut candidates: BTreeSet<(EventId, UserId)> = BTreeSet::new();
    for &u in dirty_users.iter().chain(evicted_users.iter()) {
        for &v in &instance.user(u).bids {
            candidates.insert((v, u));
        }
    }
    for &v in dirty_events {
        for &u in &instance.event(v).bidders {
            candidates.insert((v, u));
        }
    }

    admit_greedily_in(instance, state, candidates, |v, u| ops.added.push((v, u)));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::{AttributeVector, ConstantInterest, PairSetConflict};

    /// 4 events (caps 2, 1, 2, 1; events 0 & 1 conflict), 4 users
    /// bidding broadly.
    fn instance() -> Instance {
        let mut b = Instance::builder();
        let v0 = b.add_event(2, AttributeVector::empty());
        let v1 = b.add_event(1, AttributeVector::empty());
        let v2 = b.add_event(2, AttributeVector::empty());
        let v3 = b.add_event(1, AttributeVector::empty());
        b.add_user(2, AttributeVector::empty(), vec![v0, v1, v2]);
        b.add_user(2, AttributeVector::empty(), vec![v0, v2, v3]);
        b.add_user(1, AttributeVector::empty(), vec![v1, v2]);
        b.add_user(2, AttributeVector::empty(), vec![v0, v3]);
        b.interaction_scores(vec![0.9, 0.5, 0.7, 0.3]);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        b.build(&sigma, &ConstantInterest(0.5)).unwrap()
    }

    fn full_arrangement(instance: &Instance) -> Arrangement {
        let mut m = Arrangement::empty_for(instance);
        admit_greedily_in(instance, &mut m, instance.bid_pairs(), |_, _| {});
        m
    }

    fn register(slots: &mut ComponentSlots, inst: &Instance, users: &[UserId], events: &[EventId]) {
        slots.begin(inst.num_events(), inst.num_users());
        for &u in users {
            slots.push_user(u);
        }
        for &v in events {
            slots.push_event(v);
        }
    }

    #[test]
    fn patching_the_full_arrangement_matches_component_sandbox_replay() {
        let inst = instance();
        let mut direct = full_arrangement(&inst);
        let baseline = direct.clone();
        let dirty_users = vec![UserId::new(0), UserId::new(2)];
        let dirty_events = vec![EventId::new(1)];
        let ops = patch_region(&inst, &mut direct, &dirty_users, &dirty_events);

        // Same region repaired inside an extracted sandbox, ops replayed.
        let users: Vec<UserId> = (0..inst.num_users()).map(UserId::new).collect();
        let events: Vec<EventId> = (0..inst.num_events()).map(EventId::new).collect();
        let mut slots = ComponentSlots::default();
        register(&mut slots, &inst, &users, &events);
        let mut sandbox =
            ComponentState::extract(&baseline, &slots, &users, &events, &dirty_events);
        let sandbox_ops = patch_region(&inst, &mut sandbox, &dirty_users, &dirty_events);
        assert_eq!(ops, sandbox_ops);

        let mut replayed = baseline.clone();
        for &(v, u) in &sandbox_ops.removed {
            assert!(replayed.unassign(v, u));
        }
        for &(v, u) in &sandbox_ops.added {
            assert!(replayed.assign(v, u));
        }
        assert_eq!(replayed, direct);
        assert!(direct.is_feasible(&inst));
    }

    #[test]
    fn eviction_drops_the_lightest_attendees() {
        let inst = instance();
        let mut m = Arrangement::empty_for(&inst);
        // Overload event 0 (capacity 2) with three attendees by hand.
        m.assign(EventId::new(0), UserId::new(0));
        m.assign(EventId::new(0), UserId::new(1));
        m.assign(EventId::new(0), UserId::new(3));
        let ops = patch_region(&inst, &mut m, &[], &[EventId::new(0)]);
        // User 3 has the lowest interaction score → lightest → evicted
        // (and greedily re-seated elsewhere if feasible).
        assert!(ops.removed.contains(&(EventId::new(0), UserId::new(3))));
        assert_eq!(m.load_of(EventId::new(0)), 2);
        assert!(m.is_feasible(&inst));
    }

    #[test]
    fn component_state_mirrors_arrangement_semantics() {
        let inst = instance();
        let m = full_arrangement(&inst);
        let users: Vec<UserId> = (0..inst.num_users()).map(UserId::new).collect();
        let events: Vec<EventId> = (0..inst.num_events()).map(EventId::new).collect();
        let mut slots = ComponentSlots::default();
        register(&mut slots, &inst, &users, &events);
        let mut s = ComponentState::extract(&m, &slots, &users, &events, &events);
        for &v in &events {
            assert_eq!(s.load_of(v), m.load_of(v));
            assert_eq!(s.users_of(v), m.users_of(v));
        }
        for &u in &users {
            assert_eq!(s.events_of(u), m.events_of(u));
        }
        // Mutations keep rows and loads in lockstep.
        let removed = s.remove_user_assignments(UserId::new(0));
        assert_eq!(removed, m.events_of(UserId::new(0)));
        for &v in &removed {
            assert_eq!(s.load_of(v), m.load_of(v) - 1);
            assert!(!s.users_of(v).contains(&UserId::new(0)));
        }
    }
}
