//! Property-based tests for the core problem model: feasibility checking,
//! utility accounting, conflict matrices and admissible-set enumeration are
//! cross-checked against brute-force reference implementations on random
//! instances.

use igepa_core::{
    enumerate_for_user, Arrangement, AttributeVector, ConflictMatrix, EventId, Instance,
    PairSetConflict, TableInterest, UserId, Violation,
};
use proptest::prelude::*;

/// A compact random-instance description proptest can shrink.
#[derive(Debug, Clone)]
struct RawInstance {
    event_capacities: Vec<usize>,
    user_capacities: Vec<usize>,
    /// bids[u] ⊆ events, encoded as indices
    bids: Vec<Vec<usize>>,
    /// unordered conflicting pairs (i, j), i < j
    conflicts: Vec<(usize, usize)>,
    interests: Vec<f64>,
    interactions: Vec<f64>,
    beta: f64,
}

fn raw_instance_strategy() -> impl Strategy<Value = RawInstance> {
    (2usize..6, 2usize..6).prop_flat_map(|(num_events, num_users)| {
        let caps_e = proptest::collection::vec(1usize..4, num_events);
        let caps_u = proptest::collection::vec(1usize..4, num_users);
        let bids = proptest::collection::vec(
            proptest::collection::btree_set(0..num_events, 1..=num_events.min(4)),
            num_users,
        )
        .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect());
        let conflicts = proptest::collection::btree_set(
            (0..num_events, 0..num_events).prop_filter_map("ordered pair", |(a, b)| {
                if a < b {
                    Some((a, b))
                } else {
                    None
                }
            }),
            0..=num_events,
        )
        .prop_map(|s| s.into_iter().collect::<Vec<_>>());
        let interests = proptest::collection::vec(0.0f64..=1.0, num_events * num_users);
        let interactions = proptest::collection::vec(0.0f64..=1.0, num_users);
        (
            caps_e,
            caps_u,
            bids,
            conflicts,
            interests,
            interactions,
            0.0f64..=1.0,
        )
            .prop_map(
                move |(
                    event_capacities,
                    user_capacities,
                    bids,
                    conflicts,
                    interests,
                    interactions,
                    beta,
                )| {
                    RawInstance {
                        event_capacities,
                        user_capacities,
                        bids,
                        conflicts,
                        interests,
                        interactions,
                        beta,
                    }
                },
            )
    })
}

fn build(raw: &RawInstance) -> Instance {
    let mut builder = Instance::builder();
    let events: Vec<EventId> = raw
        .event_capacities
        .iter()
        .map(|&c| builder.add_event(c, AttributeVector::empty()))
        .collect();
    for (u, bids) in raw.bids.iter().enumerate() {
        let bid_ids: Vec<EventId> = bids.iter().map(|&e| events[e]).collect();
        builder.add_user(raw.user_capacities[u], AttributeVector::empty(), bid_ids);
    }
    builder.interaction_scores(raw.interactions.clone());
    builder.beta(raw.beta);
    let mut sigma = PairSetConflict::new();
    for &(a, b) in &raw.conflicts {
        sigma.add(events[a], events[b]);
    }
    let interest = TableInterest::from_values(
        raw.event_capacities.len(),
        raw.user_capacities.len(),
        raw.interests.clone(),
    );
    builder
        .build(&sigma, &interest)
        .expect("valid random instance")
}

/// Brute-force feasibility check straight from Definition 4.
fn brute_force_feasible(instance: &Instance, arrangement: &Arrangement) -> bool {
    // Bid constraint.
    for (v, u) in arrangement.pairs() {
        if !instance.user(u).has_bid(v) {
            return false;
        }
    }
    // Capacity constraints.
    for event in instance.events() {
        let load = arrangement.pairs().filter(|&(v, _)| v == event.id).count();
        if load > event.capacity {
            return false;
        }
    }
    for user in instance.users() {
        let count = arrangement.pairs().filter(|&(_, u)| u == user.id).count();
        if count > user.capacity {
            return false;
        }
    }
    // Conflict constraint.
    for user in instance.users() {
        let events: Vec<EventId> = arrangement.events_of(user.id).to_vec();
        for (i, &a) in events.iter().enumerate() {
            for &b in &events[i + 1..] {
                if instance.conflicts().conflicts(a, b) {
                    return false;
                }
            }
        }
    }
    true
}

/// Random arrangement over the bid pairs (not necessarily feasible).
fn random_arrangement(instance: &Instance, selector: &[bool]) -> Arrangement {
    let mut arrangement = Arrangement::empty_for(instance);
    for (k, (v, u)) in instance.bid_pairs().enumerate() {
        if *selector.get(k).unwrap_or(&false) {
            arrangement.assign(v, u);
        }
    }
    arrangement
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental feasibility checker agrees with a brute-force check
    /// derived directly from Definition 4.
    #[test]
    fn feasibility_checker_matches_brute_force(
        raw in raw_instance_strategy(),
        selector in proptest::collection::vec(any::<bool>(), 0..32),
    ) {
        let instance = build(&raw);
        let arrangement = random_arrangement(&instance, &selector);
        let fast = arrangement.is_feasible(&instance);
        let slow = brute_force_feasible(&instance, &arrangement);
        prop_assert_eq!(fast, slow);
        // The violation list is non-empty exactly when infeasible.
        prop_assert_eq!(arrangement.violations(&instance).is_empty(), fast);
    }

    /// Utility equals the sum of per-pair weights (Definition 7).
    #[test]
    fn utility_matches_weight_sum(
        raw in raw_instance_strategy(),
        selector in proptest::collection::vec(any::<bool>(), 0..32),
    ) {
        let instance = build(&raw);
        let arrangement = random_arrangement(&instance, &selector);
        let expected: f64 = arrangement
            .pairs()
            .map(|(v, u)| instance.weight(v, u))
            .sum();
        let breakdown = arrangement.utility(&instance);
        prop_assert!((breakdown.total - expected).abs() < 1e-9);
        // And the breakdown recombines with beta.
        let recombined =
            instance.beta() * breakdown.interest_sum + (1.0 - instance.beta()) * breakdown.interaction_sum;
        prop_assert!((breakdown.total - recombined).abs() < 1e-9);
    }

    /// The conflict matrix is symmetric with a false diagonal, and its pair
    /// count matches the generating conflict set restricted to real events.
    #[test]
    fn conflict_matrix_is_symmetric(raw in raw_instance_strategy()) {
        let instance = build(&raw);
        let matrix: &ConflictMatrix = instance.conflicts();
        for i in 0..instance.num_events() {
            prop_assert!(!matrix.conflicts(EventId::new(i), EventId::new(i)));
            for j in 0..instance.num_events() {
                prop_assert_eq!(
                    matrix.conflicts(EventId::new(i), EventId::new(j)),
                    matrix.conflicts(EventId::new(j), EventId::new(i))
                );
            }
        }
        prop_assert_eq!(matrix.num_conflicting_pairs(), raw.conflicts.len());
    }

    /// Admissible-set enumeration matches a brute-force subset filter.
    #[test]
    fn admissible_enumeration_matches_brute_force(raw in raw_instance_strategy()) {
        let instance = build(&raw);
        for user in instance.users() {
            let enumerated = enumerate_for_user(&instance, user.id, 100_000).unwrap();
            // Brute force: every non-empty subset of the bid list.
            let bids = &user.bids;
            let mut expected = 0usize;
            for mask in 1u32..(1u32 << bids.len()) {
                let subset: Vec<EventId> = bids
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                if subset.len() <= user.capacity
                    && instance.conflicts().set_is_conflict_free(&subset)
                {
                    expected += 1;
                }
            }
            prop_assert_eq!(enumerated.len(), expected, "user {}", user.id);
        }
    }

    /// Assign/unassign round-trips leave the arrangement unchanged and the
    /// reported violations identify real offenders.
    #[test]
    fn assign_unassign_roundtrip(
        raw in raw_instance_strategy(),
        selector in proptest::collection::vec(any::<bool>(), 0..32),
    ) {
        let instance = build(&raw);
        let arrangement = random_arrangement(&instance, &selector);
        let mut copy = arrangement.clone();
        let pairs: Vec<_> = arrangement.pairs().collect();
        for &(v, u) in &pairs {
            prop_assert!(copy.unassign(v, u));
        }
        prop_assert!(copy.is_empty());
        for &(v, u) in &pairs {
            prop_assert!(copy.assign(v, u));
        }
        prop_assert_eq!(copy, arrangement.clone());

        for violation in arrangement.violations(&instance) {
            match violation {
                Violation::Bid { event, user } => {
                    prop_assert!(!instance.user(user).has_bid(event));
                }
                Violation::EventCapacity { event, assigned, capacity } => {
                    prop_assert_eq!(arrangement.load_of(event), assigned);
                    prop_assert!(assigned > capacity);
                }
                Violation::UserCapacity { user, assigned, capacity } => {
                    prop_assert_eq!(arrangement.events_of(user).len(), assigned);
                    prop_assert!(assigned > capacity);
                }
                Violation::Conflict { user, first, second } => {
                    prop_assert!(arrangement.contains(first, user));
                    prop_assert!(arrangement.contains(second, user));
                    prop_assert!(instance.conflicts().conflicts(first, second));
                }
            }
        }
    }
}

#[test]
fn user_id_helpers_are_consistent() {
    // Non-proptest sanity anchor for the strategy above.
    let raw = RawInstance {
        event_capacities: vec![1, 2],
        user_capacities: vec![1, 1],
        bids: vec![vec![0, 1], vec![1]],
        conflicts: vec![(0, 1)],
        interests: vec![0.1, 0.2, 0.3, 0.4],
        interactions: vec![0.5, 0.6],
        beta: 0.5,
    };
    let instance = build(&raw);
    assert_eq!(instance.num_events(), 2);
    assert_eq!(instance.num_users(), 2);
    assert!(instance
        .conflicts()
        .conflicts(EventId::new(0), EventId::new(1)));
    assert_eq!(instance.interaction(UserId::new(1)), 0.6);
}
