//! User partitioning for sharded serving, plus boundary-conflict
//! extraction.
//!
//! A sharded arrangement engine splits the user population across N
//! independent shards, each running its own repair loop over a slice of
//! the instance. Which constraints cross shard boundaries depends only on
//! how users are placed:
//!
//! * bid, user-capacity and conflict constraints are **per user** — they
//!   never cross a shard boundary;
//! * event capacities are **shared** — an event whose bidders live in more
//!   than one shard (a *boundary event*) couples the shards, and the
//!   conflict-matrix edges between such events are the cross-shard
//!   structure a reconciler has to resolve.
//!
//! This module defines the pluggable [`Partitioner`] policy together with
//! two strategies:
//!
//! * [`HashPartitioner`] — stateless multiplicative hash of the user id.
//!   Perfectly balanced in expectation, oblivious to structure; every
//!   popular event becomes a boundary event.
//! * [`LocalityPartitioner`] — conflict-graph locality: events are grouped
//!   into connected components of the conflict graph, components are
//!   packed onto shards balancing bidder mass, and users follow the
//!   majority shard of their bid set. On community-structured workloads
//!   (conflicts concentrated inside communities) this keeps most events'
//!   bidders inside one shard, shrinking the boundary the reconciler has
//!   to work on.
//!
//! [`boundary_events`] and [`PartitionCut`] quantify the quality of an
//! assignment: how many events span shards and how many conflict edges
//! cross the boundary.

use crate::ids::{EventId, UserId};
use crate::instance::Instance;

/// Policy placing users onto `num_shards` shards.
///
/// Implementations must be deterministic: the same `(user, bids,
/// num_shards)` always maps to the same shard, so a replayed request log
/// reproduces the same placement. The serving coordinator consults the
/// partitioner when a user first appears and the placement then sticks
/// until a live resharding pass re-consults it (with the new shard
/// count) for every user at once — individual users never migrate
/// between passes. Targeted moves are expressed by layering an
/// [`OverridePartitioner`] on top of any base policy.
pub trait Partitioner {
    /// Shard index in `0..num_shards` for a user with the given bid set.
    fn shard_for(&self, user: UserId, bids: &[EventId], num_shards: usize) -> usize;

    /// Short, stable policy name (for reports and logs).
    fn name(&self) -> &'static str {
        "partitioner"
    }
}

/// Stateless hash partitioning: `fxhash(user) mod num_shards`.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn shard_for(&self, user: UserId, _bids: &[EventId], num_shards: usize) -> usize {
        if num_shards <= 1 {
            return 0;
        }
        // Fibonacci hashing: odd multiplier spreads dense ids uniformly.
        let h = (user.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) % num_shards as u64) as usize
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Conflict-graph-locality partitioning.
///
/// Built once from a snapshot of the instance: the conflict graph over
/// events is split into connected components, components are assigned to
/// shards greedily (heaviest bidder mass first, onto the lightest shard),
/// and every event carries its component's shard label. A user is placed
/// on the shard holding the plurality of their bids; ties break toward
/// the smallest shard index and users without bids fall back to the hash
/// policy. Events created after the snapshot (by `AddEvent` deltas) are
/// labelled round-robin by id, which matches generators that deal new
/// events out to communities cyclically.
#[derive(Debug, Clone)]
pub struct LocalityPartitioner {
    /// Shard label of every event known at construction time.
    event_shards: Vec<usize>,
    num_shards: usize,
}

impl LocalityPartitioner {
    /// Builds the event→shard labelling from `instance`'s conflict matrix.
    pub fn from_instance(instance: &Instance, num_shards: usize) -> Self {
        let n = instance.num_events();
        let shards = num_shards.max(1);

        // Connected components of the conflict graph (iterative DFS).
        let mut component = vec![usize::MAX; n];
        let mut num_components = 0usize;
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let id = num_components;
            num_components += 1;
            let mut stack = vec![start];
            component[start] = id;
            while let Some(i) = stack.pop() {
                for j in 0..n {
                    if component[j] == usize::MAX
                        && instance
                            .conflicts()
                            .conflicts(EventId::new(i), EventId::new(j))
                    {
                        component[j] = id;
                        stack.push(j);
                    }
                }
            }
        }

        // Bidder mass per component, then largest-first onto lightest shard.
        let mut mass = vec![0usize; num_components];
        for event in instance.events() {
            // Count every event at least once so empty events still spread.
            mass[component[event.id.index()]] += event.num_bidders() + 1;
        }
        let mut order: Vec<usize> = (0..num_components).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(mass[c]), c));
        let mut shard_mass = vec![0usize; shards];
        let mut component_shard = vec![0usize; num_components];
        for c in order {
            let lightest = (0..shards).min_by_key(|&k| (shard_mass[k], k)).unwrap();
            component_shard[c] = lightest;
            shard_mass[lightest] += mass[c];
        }

        LocalityPartitioner {
            event_shards: component.into_iter().map(|c| component_shard[c]).collect(),
            num_shards: shards,
        }
    }

    /// Shard label of an event (round-robin fallback past the snapshot).
    pub fn event_shard(&self, event: EventId) -> usize {
        self.event_shards
            .get(event.index())
            .copied()
            .unwrap_or(event.index() % self.num_shards)
    }
}

impl Partitioner for LocalityPartitioner {
    fn shard_for(&self, user: UserId, bids: &[EventId], num_shards: usize) -> usize {
        if num_shards <= 1 {
            return 0;
        }
        if bids.is_empty() {
            return HashPartitioner.shard_for(user, bids, num_shards);
        }
        let mut votes = vec![0usize; num_shards];
        for &v in bids {
            votes[self.event_shard(v) % num_shards] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(k, &count)| (count, std::cmp::Reverse(k)))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "locality"
    }
}

/// A base policy plus a per-user override table, consulted first.
///
/// This is how targeted migrations (skew-triggered proposals from the
/// reconcile loop, operator-pinned placements) are expressed without
/// giving up determinism: the override table is explicit state, so the
/// combined policy is still a pure function of `(user, bids,
/// num_shards)` — a resharding pass that re-consults it re-derives the
/// same placement, and overridden users survive shard-count changes on
/// their pinned shard (clamped into range by the caller, like any other
/// placement).
pub struct OverridePartitioner {
    base: Box<dyn Partitioner + Send>,
    overrides: std::collections::BTreeMap<UserId, usize>,
}

impl std::fmt::Debug for OverridePartitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverridePartitioner")
            .field("base", &self.base.name())
            .field("overrides", &self.overrides)
            .finish()
    }
}

impl OverridePartitioner {
    /// Wraps `base` with an empty override table.
    pub fn new(base: Box<dyn Partitioner + Send>) -> Self {
        OverridePartitioner {
            base,
            overrides: std::collections::BTreeMap::new(),
        }
    }

    /// Pins `user` to `shard` (replacing any previous pin).
    pub fn pin(&mut self, user: UserId, shard: usize) {
        self.overrides.insert(user, shard);
    }

    /// Removes `user`'s pin; their next placement falls back to the base
    /// policy.
    pub fn unpin(&mut self, user: UserId) {
        self.overrides.remove(&user);
    }

    /// Pinned users in ascending id order.
    pub fn pins(&self) -> impl Iterator<Item = (UserId, usize)> + '_ {
        self.overrides.iter().map(|(&u, &k)| (u, k))
    }

    /// Number of pinned users.
    pub fn num_pins(&self) -> usize {
        self.overrides.len()
    }
}

impl Partitioner for OverridePartitioner {
    fn shard_for(&self, user: UserId, bids: &[EventId], num_shards: usize) -> usize {
        match self.overrides.get(&user) {
            // Pins past the current shard count are clamped rather than
            // dropped: the user stays as close to the pinned shard as
            // the topology allows, mirroring the coordinator's clamp.
            Some(&shard) => shard.min(num_shards.saturating_sub(1)),
            None => self.base.shard_for(user, bids, num_shards),
        }
    }

    fn name(&self) -> &'static str {
        "override"
    }
}

/// Whether an event's bidders span more than one shard under the given
/// user→shard lookup — the single definition of "boundary event" shared
/// by the partition metrics and the cross-shard reconciler.
pub fn spans_shards(event: &crate::event::Event, shard_of: impl Fn(UserId) -> usize) -> bool {
    let mut seen: Option<usize> = None;
    event.bidders.iter().any(|&u| {
        let shard = shard_of(u);
        match seen {
            Some(s) => s != shard,
            None => {
                seen = Some(shard);
                false
            }
        }
    })
}

/// Events whose bidders span more than one shard under `assignment`
/// (`assignment[u]` is the shard of user `u`), in increasing id order.
///
/// These are exactly the events whose capacity couples shards: everything
/// a cross-shard reconciler needs to look at.
pub fn boundary_events(instance: &Instance, assignment: &[usize]) -> Vec<EventId> {
    instance
        .events()
        .iter()
        .filter(|event| spans_shards(event, |u| assignment[u.index()]))
        .map(|event| event.id)
        .collect()
}

/// Cut metrics of a user→shard assignment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionCut {
    /// Events whose bidders span more than one shard.
    pub boundary_events: usize,
    /// Unordered conflict-matrix edges with at least one boundary endpoint.
    pub cross_conflict_edges: usize,
    /// Total events with at least one bidder.
    pub active_events: usize,
}

impl PartitionCut {
    /// Computes the cut metrics for `assignment` over `instance`.
    pub fn measure(instance: &Instance, assignment: &[usize]) -> Self {
        let boundary = boundary_events(instance, assignment);
        let is_boundary: Vec<bool> = {
            let mut flags = vec![false; instance.num_events()];
            for &v in &boundary {
                flags[v.index()] = true;
            }
            flags
        };
        let n = instance.num_events();
        let mut cross = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                if (is_boundary[i] || is_boundary[j])
                    && instance
                        .conflicts()
                        .conflicts(EventId::new(i), EventId::new(j))
                {
                    cross += 1;
                }
            }
        }
        PartitionCut {
            boundary_events: boundary.len(),
            cross_conflict_edges: cross,
            active_events: instance
                .events()
                .iter()
                .filter(|e| e.num_bidders() > 0)
                .count(),
        }
    }
}

/// Assigns every current user of `instance` with `partitioner`, returning
/// the per-user shard vector consumed by [`boundary_events`] and the
/// sharded engine's constructor.
pub fn assign_users(
    instance: &Instance,
    partitioner: &dyn Partitioner,
    num_shards: usize,
) -> Vec<usize> {
    let last = num_shards.saturating_sub(1);
    instance
        .users()
        .iter()
        // Clamp contract-violating partitioners to the last shard — the
        // same defence the serving coordinator applies to late arrivals,
        // so both paths behave identically.
        .map(|u| partitioner.shard_for(u.id, &u.bids, num_shards).min(last))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeVector;
    use crate::conflict::PairSetConflict;
    use crate::interest::ConstantInterest;

    /// Two conflict components {0,1} and {2,3}; users bid inside one
    /// component each.
    fn two_component_instance() -> Instance {
        let mut b = Instance::builder();
        let v: Vec<EventId> = (0..4)
            .map(|_| b.add_event(2, AttributeVector::empty()))
            .collect();
        for _ in 0..3 {
            b.add_user(1, AttributeVector::empty(), vec![v[0], v[1]]);
        }
        for _ in 0..3 {
            b.add_user(1, AttributeVector::empty(), vec![v[2], v[3]]);
        }
        b.interaction_scores(vec![0.5; 6]);
        let mut sigma = PairSetConflict::new();
        sigma.add(v[0], v[1]);
        sigma.add(v[2], v[3]);
        b.build(&sigma, &ConstantInterest(0.5)).unwrap()
    }

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        for u in 0..100 {
            let a = HashPartitioner.shard_for(UserId::new(u), &[], 4);
            let b = HashPartitioner.shard_for(UserId::new(u), &[], 4);
            assert_eq!(a, b);
            assert!(a < 4);
        }
        assert_eq!(HashPartitioner.shard_for(UserId::new(7), &[], 1), 0);
    }

    #[test]
    fn hash_partitioner_spreads_users() {
        let mut counts = [0usize; 4];
        for u in 0..400 {
            counts[HashPartitioner.shard_for(UserId::new(u), &[], 4)] += 1;
        }
        for &c in &counts {
            assert!(c > 40, "shard badly under-filled: {counts:?}");
        }
    }

    #[test]
    fn locality_partitioner_separates_conflict_components() {
        let inst = two_component_instance();
        let p = LocalityPartitioner::from_instance(&inst, 2);
        // The two components must land on different shards (equal mass).
        assert_ne!(
            p.event_shard(EventId::new(0)),
            p.event_shard(EventId::new(2))
        );
        assert_eq!(
            p.event_shard(EventId::new(0)),
            p.event_shard(EventId::new(1))
        );
        // Users follow their bids, so no event is a boundary event.
        let assignment = assign_users(&inst, &p, 2);
        assert!(boundary_events(&inst, &assignment).is_empty());
        let cut = PartitionCut::measure(&inst, &assignment);
        assert_eq!(cut.boundary_events, 0);
        assert_eq!(cut.cross_conflict_edges, 0);
        assert_eq!(cut.active_events, 4);
    }

    #[test]
    fn hash_assignment_creates_boundary_events_locality_avoids() {
        let inst = two_component_instance();
        let hash_cut = PartitionCut::measure(&inst, &assign_users(&inst, &HashPartitioner, 2));
        let p = LocalityPartitioner::from_instance(&inst, 2);
        let locality_cut = PartitionCut::measure(&inst, &assign_users(&inst, &p, 2));
        assert!(locality_cut.boundary_events <= hash_cut.boundary_events);
    }

    #[test]
    fn locality_partitioner_handles_unseen_events_and_empty_bids() {
        let inst = two_component_instance();
        let p = LocalityPartitioner::from_instance(&inst, 2);
        // Unknown event falls back to round-robin by id.
        assert_eq!(p.event_shard(EventId::new(10)), 0);
        assert_eq!(p.event_shard(EventId::new(11)), 1);
        // Empty bid set falls back to the hash policy.
        let s = p.shard_for(UserId::new(9), &[], 2);
        assert_eq!(s, HashPartitioner.shard_for(UserId::new(9), &[], 2));
    }

    #[test]
    fn majority_vote_breaks_ties_toward_smaller_shard() {
        let inst = two_component_instance();
        let p = LocalityPartitioner::from_instance(&inst, 2);
        let shard0_event = (0..4)
            .map(EventId::new)
            .find(|&v| p.event_shard(v) == 0)
            .unwrap();
        let shard1_event = (0..4)
            .map(EventId::new)
            .find(|&v| p.event_shard(v) == 1)
            .unwrap();
        let s = p.shard_for(UserId::new(0), &[shard0_event, shard1_event], 2);
        assert_eq!(s, 0, "one vote each must resolve to shard 0");
    }

    #[test]
    fn override_partitioner_pins_win_and_clamp() {
        let mut p = OverridePartitioner::new(Box::new(HashPartitioner));
        let user = UserId::new(7);
        let base = HashPartitioner.shard_for(user, &[], 4);
        // Without a pin, the base policy decides.
        assert_eq!(p.shard_for(user, &[], 4), base);
        // A pin wins over the base policy and survives re-consultation.
        p.pin(user, 3);
        assert_eq!(p.shard_for(user, &[], 4), 3);
        assert_eq!(p.shard_for(user, &[], 4), 3);
        assert_eq!(p.num_pins(), 1);
        assert_eq!(p.pins().collect::<Vec<_>>(), vec![(user, 3)]);
        // A pin past the shard count clamps instead of dropping.
        assert_eq!(p.shard_for(user, &[], 2), 1);
        // Unpinning falls back to the base policy.
        p.unpin(user);
        assert_eq!(p.shard_for(user, &[], 4), base);
        assert_eq!(p.num_pins(), 0);
    }

    #[test]
    fn single_shard_everything_maps_to_zero() {
        let inst = two_component_instance();
        let p = LocalityPartitioner::from_instance(&inst, 1);
        let assignment = assign_users(&inst, &p, 1);
        assert!(assignment.iter().all(|&s| s == 0));
        assert!(boundary_events(&inst, &assignment).is_empty());
    }
}
