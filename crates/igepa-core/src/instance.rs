//! The IGEPA problem instance and its builder.
//!
//! An [`Instance`] bundles everything Definition 8 of the paper feeds into
//! the problem: the event set `V`, the user set `U`, the conflict function σ
//! (materialised as a [`ConflictMatrix`]), the interest function `SI`
//! (materialised as a [`TableInterest`]), the per-user degree of potential
//! interaction `D(G, u)` (computed from the social network by the
//! `igepa-graph` crate) and the balance parameter β.
//!
//! Instances are immutable once built; [`InstanceBuilder`] performs all
//! validation so that algorithms can assume a consistent model:
//!
//! * event and user ids are dense and ordered;
//! * every bid references an existing event and the events' bidder lists
//!   mirror the users' bid sets;
//! * interest values and interaction scores lie in `[0, 1]`;
//! * β lies in `[0, 1]`.

use crate::attrs::AttributeVector;
use crate::conflict::{ConflictFn, ConflictMatrix, NeverConflict};
use crate::error::CoreError;
use crate::event::Event;
use crate::ids::{EventId, UserId};
use crate::interest::{InterestFn, TableInterest};
use crate::user::User;
use std::sync::Arc;

/// A fully validated IGEPA problem instance.
///
/// Fields are crate-visible so that [`crate::delta`] can patch them
/// incrementally while preserving the builder's invariants.
///
/// The conflict matrix is held behind an [`Arc`] so that several instances
/// — e.g. the per-shard sub-instances of a sharded serving engine — can
/// share one physical O(|V|²) table instead of each owning a copy.
/// Mutation goes through [`Arc::make_mut`], i.e. copy-on-write: a sole
/// owner patches in place (the monolithic engine pays nothing for the
/// indirection), while a sharing instance transparently forks its own
/// copy. Structural sharing across a fleet of instances is coordinated by
/// a catalogue publishing pre-grown matrices which instances adopt via
/// [`Instance::apply_add_event_shared`].
#[derive(Debug, Clone)]
pub struct Instance {
    pub(crate) events: Vec<Event>,
    pub(crate) users: Vec<User>,
    pub(crate) conflicts: Arc<ConflictMatrix>,
    pub(crate) interest: TableInterest,
    pub(crate) interaction: Vec<f64>,
    beta: f64,
}

impl Instance {
    /// Starts building an instance.
    pub fn builder() -> InstanceBuilder {
        InstanceBuilder::new()
    }

    /// The event set `V`.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The user set `U`.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// `|V|`.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// `|U|`.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// The event with the given id.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// The user with the given id.
    pub fn user(&self, id: UserId) -> &User {
        &self.users[id.index()]
    }

    /// The balance parameter β between interest and interaction.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The precomputed conflict matrix σ.
    pub fn conflicts(&self) -> &ConflictMatrix {
        &self.conflicts
    }

    /// The shared handle to the conflict matrix. Two instances returning
    /// [`Arc::ptr_eq`] handles share one physical table; cloning the
    /// handle is O(1).
    pub fn conflicts_handle(&self) -> &Arc<ConflictMatrix> {
        &self.conflicts
    }

    /// Interest `SI(l_v, l_u)` of `user` in `event`.
    pub fn interest(&self, event: EventId, user: UserId) -> f64 {
        self.interest.get(event, user)
    }

    /// Degree of potential interaction `D(G, u)` of `user` (Definition 6).
    pub fn interaction(&self, user: UserId) -> f64 {
        self.interaction[user.index()]
    }

    /// Per-pair weight `w(u, v) = β · SI(l_v, l_u) + (1 − β) · D(G, u)`.
    ///
    /// This is the contribution of the pair `(v, u)` to the utility of an
    /// arrangement and is what the LP objective and the greedy baselines
    /// maximise.
    pub fn weight(&self, event: EventId, user: UserId) -> f64 {
        self.beta * self.interest(event, user) + (1.0 - self.beta) * self.interaction(user)
    }

    /// Total weight of an admissible event set `S` for `user`:
    /// `w(u, S) = Σ_{v ∈ S} w(u, v)`.
    pub fn set_weight(&self, user: UserId, events: &[EventId]) -> f64 {
        // lint:allow(no-raw-float-accum): w(u,S) folds the caller's fixed event-set order, the order the paper's formulas and the proptests pin; ExactSum applies to cross-request running totals, not this per-call k-term dot product
        events.iter().map(|&v| self.weight(v, user)).sum()
    }

    /// Iterates over all `(event, user)` pairs allowed by the bid constraint,
    /// i.e. the candidate pairs any feasible arrangement is drawn from.
    pub fn bid_pairs(&self) -> impl Iterator<Item = (EventId, UserId)> + '_ {
        self.users
            .iter()
            .flat_map(|u| u.bids.iter().map(move |&v| (v, u.id)))
    }

    /// Total number of bids across all users.
    pub fn num_bids(&self) -> usize {
        self.users.iter().map(|u| u.num_bids()).sum()
    }
}

/// Builder for [`Instance`]; see the module documentation for the validation
/// rules it enforces.
#[derive(Debug, Default)]
pub struct InstanceBuilder {
    events: Vec<Event>,
    users: Vec<User>,
    interaction: Option<Vec<f64>>,
    beta: f64,
}

impl InstanceBuilder {
    /// Creates an empty builder with β = 0.5 (the paper's evaluation value).
    pub fn new() -> Self {
        InstanceBuilder {
            events: Vec::new(),
            users: Vec::new(),
            interaction: None,
            beta: 0.5,
        }
    }

    /// Adds an event with the given capacity and attributes; returns its id.
    pub fn add_event(&mut self, capacity: usize, attrs: AttributeVector) -> EventId {
        let id = EventId::new(self.events.len());
        self.events.push(Event::new(id, capacity, attrs));
        id
    }

    /// Adds a user with the given capacity, attributes and bid set; returns
    /// its id.
    pub fn add_user(
        &mut self,
        capacity: usize,
        attrs: AttributeVector,
        bids: Vec<EventId>,
    ) -> UserId {
        let id = UserId::new(self.users.len());
        self.users.push(User::new(id, capacity, attrs, bids));
        id
    }

    /// Sets the balance parameter β.
    pub fn beta(&mut self, beta: f64) -> &mut Self {
        self.beta = beta;
        self
    }

    /// Sets the per-user degree of potential interaction `D(G, u)`.
    ///
    /// The vector must contain one value in `[0, 1]` per user, in user-id
    /// order. When omitted, all scores default to zero (equivalent to an
    /// edgeless social network).
    pub fn interaction_scores(&mut self, scores: Vec<f64>) -> &mut Self {
        self.interaction = Some(scores);
        self
    }

    /// Number of events added so far.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of users added so far.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Finalises the instance using the given conflict and interest functions.
    pub fn build(
        self,
        sigma: &dyn ConflictFn,
        interest: &dyn InterestFn,
    ) -> Result<Instance, CoreError> {
        self.build_with(interest, |events| {
            Arc::new(ConflictMatrix::build(events, sigma))
        })
    }

    /// Finalises the instance adopting an already-built, shared conflict
    /// matrix instead of evaluating a conflict function over every pair.
    ///
    /// This is how a sharded serving engine builds its per-shard
    /// sub-instances: every shard adopts the coordinator's matrix handle,
    /// so the O(|V|²) table exists once no matter how many shards share
    /// it. The matrix must cover at least the builder's events.
    pub fn build_shared(
        self,
        conflicts: Arc<ConflictMatrix>,
        interest: &dyn InterestFn,
    ) -> Result<Instance, CoreError> {
        if conflicts.num_events() < self.events.len() {
            return Err(CoreError::ConflictMatrixTooSmall {
                events: self.events.len(),
                matrix: conflicts.num_events(),
            });
        }
        self.build_with(interest, |_| conflicts)
    }

    fn build_with(
        self,
        interest: &dyn InterestFn,
        make_conflicts: impl FnOnce(&[Event]) -> Arc<ConflictMatrix>,
    ) -> Result<Instance, CoreError> {
        let InstanceBuilder {
            mut events,
            users,
            interaction,
            beta,
        } = self;

        if !(0.0..=1.0).contains(&beta) {
            return Err(CoreError::InvalidBeta(beta));
        }
        // Ids are assigned by the builder, so density only breaks if callers
        // mutate the tables; validate anyway to protect deserialized inputs.
        for (pos, e) in events.iter().enumerate() {
            if e.id.index() != pos {
                return Err(CoreError::NonDenseEventIds {
                    position: pos,
                    found: e.id,
                });
            }
        }
        for (pos, u) in users.iter().enumerate() {
            if u.id.index() != pos {
                return Err(CoreError::NonDenseUserIds {
                    position: pos,
                    found: u.id,
                });
            }
        }

        // Validate bids and mirror them into the events' bidder lists.
        for u in &users {
            for &v in &u.bids {
                if v.index() >= events.len() {
                    return Err(CoreError::UnknownEventInBid {
                        user: u.id,
                        event: v,
                    });
                }
            }
        }
        for e in &mut events {
            e.bidders.clear();
        }
        for u in &users {
            for &v in &u.bids {
                events[v.index()].bidders.push(u.id);
            }
        }
        for e in &mut events {
            e.bidders.sort_unstable();
        }

        // Interaction scores.
        let interaction = interaction.unwrap_or_else(|| vec![0.0; users.len()]);
        if interaction.len() != users.len() {
            return Err(CoreError::InteractionLengthMismatch {
                users: users.len(),
                scores: interaction.len(),
            });
        }
        for (i, &d) in interaction.iter().enumerate() {
            if !(0.0..=1.0).contains(&d) || d.is_nan() {
                return Err(CoreError::InteractionOutOfRange {
                    user: UserId::new(i),
                    value: d,
                });
            }
        }

        // Materialise the interest table over the bid pairs (non-bid pairs
        // can never appear in a feasible arrangement; they are stored as the
        // raw function value anyway so diagnostics can inspect them).
        let mut table = TableInterest::zeros(events.len(), users.len());
        for u in &users {
            for &v in &u.bids {
                let value = interest.interest(&events[v.index()], u);
                if !(0.0..=1.0).contains(&value) || value.is_nan() {
                    return Err(CoreError::InterestOutOfRange {
                        event: v,
                        user: u.id,
                        value,
                    });
                }
                table.set(v, u.id, value);
            }
        }

        let conflicts = make_conflicts(&events);

        Ok(Instance {
            events,
            users,
            conflicts,
            interest: table,
            interaction,
            beta,
        })
    }

    /// Convenience for tests and examples: builds with no conflicts and the
    /// interest of every bid pair set to zero.
    pub fn build_trivial(self) -> Result<Instance, CoreError> {
        struct ZeroInterest;
        impl InterestFn for ZeroInterest {
            fn interest(&self, _e: &Event, _u: &User) -> f64 {
                0.0
            }
        }
        self.build(&NeverConflict, &ZeroInterest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{AlwaysConflict, PairSetConflict};
    use crate::interest::ConstantInterest;

    fn two_by_two() -> InstanceBuilder {
        let mut b = Instance::builder();
        let v0 = b.add_event(2, AttributeVector::empty());
        let v1 = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![v0, v1]);
        b.add_user(2, AttributeVector::empty(), vec![v1]);
        b
    }

    #[test]
    fn builder_mirrors_bids_into_bidder_lists() {
        let inst = two_by_two()
            .build(&NeverConflict, &ConstantInterest(0.5))
            .unwrap();
        assert_eq!(inst.event(EventId::new(0)).bidders, vec![UserId::new(0)]);
        assert_eq!(
            inst.event(EventId::new(1)).bidders,
            vec![UserId::new(0), UserId::new(1)]
        );
        assert_eq!(inst.num_bids(), 3);
    }

    #[test]
    fn unknown_bid_is_rejected() {
        let mut b = Instance::builder();
        b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![EventId::new(7)]);
        let err = b.build_trivial().unwrap_err();
        assert!(matches!(err, CoreError::UnknownEventInBid { .. }));
    }

    #[test]
    fn invalid_beta_is_rejected() {
        let mut b = two_by_two();
        b.beta(1.5);
        let err = b.build_trivial().unwrap_err();
        assert_eq!(err, CoreError::InvalidBeta(1.5));
    }

    #[test]
    fn interaction_vector_length_checked() {
        let mut b = two_by_two();
        b.interaction_scores(vec![0.5]);
        let err = b.build_trivial().unwrap_err();
        assert!(matches!(
            err,
            CoreError::InteractionLengthMismatch {
                users: 2,
                scores: 1
            }
        ));
    }

    #[test]
    fn interaction_range_checked() {
        let mut b = two_by_two();
        b.interaction_scores(vec![0.5, 1.5]);
        let err = b.build_trivial().unwrap_err();
        assert!(matches!(err, CoreError::InteractionOutOfRange { .. }));
    }

    #[test]
    fn interest_out_of_range_rejected() {
        let b = two_by_two();
        let err = b
            .build(&NeverConflict, &ConstantInterestRaw(1.7))
            .unwrap_err();
        assert!(matches!(err, CoreError::InterestOutOfRange { .. }));
    }

    /// Interest implementation that does not clamp, for validation tests.
    struct ConstantInterestRaw(f64);
    impl InterestFn for ConstantInterestRaw {
        fn interest(&self, _e: &Event, _u: &User) -> f64 {
            self.0
        }
    }

    #[test]
    fn weight_combines_interest_and_interaction() {
        let mut b = two_by_two();
        b.beta(0.25);
        b.interaction_scores(vec![0.8, 0.4]);
        let inst = b.build(&NeverConflict, &ConstantInterest(0.6)).unwrap();
        let w = inst.weight(EventId::new(0), UserId::new(0));
        assert!((w - (0.25 * 0.6 + 0.75 * 0.8)).abs() < 1e-12);
        let s = inst.set_weight(UserId::new(0), &[EventId::new(0), EventId::new(1)]);
        assert!((s - 2.0 * w).abs() < 1e-12);
    }

    #[test]
    fn beta_extremes_select_single_component() {
        let mut b = two_by_two();
        b.beta(1.0);
        b.interaction_scores(vec![0.8, 0.4]);
        let inst = b.build(&NeverConflict, &ConstantInterest(0.6)).unwrap();
        assert!((inst.weight(EventId::new(1), UserId::new(0)) - 0.6).abs() < 1e-12);

        let mut b = two_by_two();
        b.beta(0.0);
        b.interaction_scores(vec![0.8, 0.4]);
        let inst = b.build(&NeverConflict, &ConstantInterest(0.6)).unwrap();
        assert!((inst.weight(EventId::new(1), UserId::new(1)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn conflict_matrix_uses_provided_sigma() {
        let mut pairs = PairSetConflict::new();
        pairs.add(EventId::new(0), EventId::new(1));
        let inst = two_by_two().build(&pairs, &ConstantInterest(0.0)).unwrap();
        assert!(inst.conflicts().conflicts(EventId::new(0), EventId::new(1)));

        let inst_all = two_by_two()
            .build(&AlwaysConflict, &ConstantInterest(0.0))
            .unwrap();
        assert_eq!(inst_all.conflicts().num_conflicting_pairs(), 1);
    }

    #[test]
    fn bid_pairs_iterates_every_bid_once() {
        let inst = two_by_two().build_trivial().unwrap();
        let pairs: Vec<_> = inst.bid_pairs().collect();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(EventId::new(0), UserId::new(0))));
        assert!(pairs.contains(&(EventId::new(1), UserId::new(0))));
        assert!(pairs.contains(&(EventId::new(1), UserId::new(1))));
    }

    #[test]
    fn default_interaction_is_zero() {
        let inst = two_by_two()
            .build(&NeverConflict, &ConstantInterest(1.0))
            .unwrap();
        assert_eq!(inst.interaction(UserId::new(0)), 0.0);
        // With beta = 0.5 and zero interaction, weight is half the interest.
        assert!((inst.weight(EventId::new(0), UserId::new(0)) - 0.5).abs() < 1e-12);
    }
}
