//! Attribute vectors attached to events and users.
//!
//! Definition 1 and 2 of the paper associate an *attribute vector* `l_v` /
//! `l_u` with every event and user. The vector serves two purposes:
//!
//! * **conflict detection** between events (e.g. timestamp and location — two
//!   events that overlap in time conflict), handled by
//!   [`crate::conflict`]; and
//! * **interest computation** between a user and an event (e.g. category
//!   weights), handled by [`crate::interest`].
//!
//! [`AttributeVector`] therefore bundles an optional [`TimeWindow`], an
//! optional [`Location`] and a dense vector of category weights. All parts
//! are optional so that purely synthetic workloads (which use an explicit
//! conflict matrix and an explicit interest table) can leave them empty.

use serde::{Deserialize, Serialize};

/// A half-open time interval `[start, start + duration)` in abstract minutes.
///
/// The Meetup dataset used by the paper tags each event with a start time and
/// a duration; two events conflict iff their windows overlap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Start time in minutes since an arbitrary epoch.
    pub start: i64,
    /// Duration in minutes; must be positive for a meaningful window.
    pub duration: i64,
}

impl TimeWindow {
    /// Creates a new time window.
    pub fn new(start: i64, duration: i64) -> Self {
        TimeWindow { start, duration }
    }

    /// End of the window (exclusive).
    #[inline]
    pub fn end(&self) -> i64 {
        self.start + self.duration
    }

    /// Whether two windows overlap.
    ///
    /// Windows that merely touch (one ends exactly when the other starts) do
    /// *not* overlap: a user can attend back-to-back events.
    #[inline]
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// A planar location (e.g. projected longitude/latitude of a venue).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Location {
    /// X coordinate (abstract units).
    pub x: f64,
    /// Y coordinate (abstract units).
    pub y: f64,
}

impl Location {
    /// Creates a new location.
    pub fn new(x: f64, y: f64) -> Self {
        Location { x, y }
    }

    /// Euclidean distance to another location.
    pub fn distance(&self, other: &Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Attribute vector `l_v` / `l_u` of an event or user.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AttributeVector {
    /// Time window of an event. `None` for users and for events in purely
    /// synthetic workloads that define conflicts explicitly.
    pub time: Option<TimeWindow>,
    /// Venue location of an event or home location of a user.
    pub location: Option<Location>,
    /// Dense category-affinity weights. For events these describe the topics
    /// the event covers; for users, the topics the user cares about. Interest
    /// functions compare the two vectors.
    pub categories: Vec<f64>,
}

impl AttributeVector {
    /// An empty attribute vector (no time, no location, no categories).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds an attribute vector that only carries category weights.
    pub fn from_categories(categories: Vec<f64>) -> Self {
        AttributeVector {
            time: None,
            location: None,
            categories,
        }
    }

    /// Builds an attribute vector that only carries a time window.
    pub fn from_time(start: i64, duration: i64) -> Self {
        AttributeVector {
            time: Some(TimeWindow::new(start, duration)),
            location: None,
            categories: Vec::new(),
        }
    }

    /// Sets the time window, consuming and returning `self` (builder style).
    pub fn with_time(mut self, start: i64, duration: i64) -> Self {
        self.time = Some(TimeWindow::new(start, duration));
        self
    }

    /// Sets the location, consuming and returning `self` (builder style).
    pub fn with_location(mut self, x: f64, y: f64) -> Self {
        self.location = Some(Location::new(x, y));
        self
    }

    /// Sets the category weights, consuming and returning `self`.
    pub fn with_categories(mut self, categories: Vec<f64>) -> Self {
        self.categories = categories;
        self
    }

    /// Number of category dimensions carried by this vector.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_window_end_is_start_plus_duration() {
        let w = TimeWindow::new(100, 60);
        assert_eq!(w.end(), 160);
    }

    #[test]
    fn overlapping_windows_detected() {
        let a = TimeWindow::new(0, 60);
        let b = TimeWindow::new(30, 60);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn disjoint_windows_do_not_overlap() {
        let a = TimeWindow::new(0, 60);
        let b = TimeWindow::new(120, 30);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
    }

    #[test]
    fn touching_windows_do_not_overlap() {
        let a = TimeWindow::new(0, 60);
        let b = TimeWindow::new(60, 60);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
    }

    #[test]
    fn nested_windows_overlap() {
        let outer = TimeWindow::new(0, 200);
        let inner = TimeWindow::new(50, 10);
        assert!(outer.overlaps(&inner));
        assert!(inner.overlaps(&outer));
    }

    #[test]
    fn location_distance_is_euclidean() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn builder_style_attribute_vector() {
        let v = AttributeVector::empty()
            .with_time(10, 90)
            .with_location(1.0, 2.0)
            .with_categories(vec![0.5, 0.5]);
        assert_eq!(v.time.unwrap().end(), 100);
        assert_eq!(v.location.unwrap().x, 1.0);
        assert_eq!(v.num_categories(), 2);
    }

    #[test]
    fn from_constructors() {
        let c = AttributeVector::from_categories(vec![1.0]);
        assert!(c.time.is_none());
        assert_eq!(c.categories, vec![1.0]);
        let t = AttributeVector::from_time(5, 5);
        assert!(t.categories.is_empty());
        assert_eq!(t.time.unwrap().start, 5);
    }
}
