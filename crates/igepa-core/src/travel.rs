//! Spatial conflict functions (extension of Definition 3).
//!
//! The paper's attribute vectors explicitly carry "timestamp and location of
//! the event" as the attributes a conflict function may consult, but its
//! Meetup evaluation only uses time overlap. These conflict functions flesh
//! out the location half of that definition:
//!
//! * [`DistanceConflict`] — two events conflict when their venues are closer
//!   than a threshold (e.g. two simultaneous bookings of the same venue), in
//!   addition to any time overlap;
//! * [`TravelTimeConflict`] — two events conflict when a participant moving
//!   at a fixed speed cannot finish one event and still reach the other
//!   before it starts (the realistic "back-to-back events across town"
//!   conflict).
//!
//! Both are drop-in `σ` implementations: the rest of the pipeline (conflict
//! matrix, admissible sets, every algorithm) is oblivious to which σ built
//! the matrix.

use crate::conflict::ConflictFn;
use crate::event::Event;
use serde::{Deserialize, Serialize};

/// Events conflict when they overlap in time *and* their venues are within
/// `radius` of each other (same venue / same room contention).
///
/// Events without a location or without a time window never conflict under
/// this function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceConflict {
    /// Maximum distance between venues for the pair to be in contention.
    pub radius: f64,
}

impl DistanceConflict {
    /// Creates a distance-based conflict function with the given radius.
    pub fn new(radius: f64) -> Self {
        DistanceConflict {
            radius: radius.max(0.0),
        }
    }
}

impl ConflictFn for DistanceConflict {
    fn conflicts(&self, a: &Event, b: &Event) -> bool {
        let close = match (&a.attrs.location, &b.attrs.location) {
            (Some(la), Some(lb)) => la.distance(lb) <= self.radius,
            _ => false,
        };
        let overlap = match (&a.attrs.time, &b.attrs.time) {
            (Some(ta), Some(tb)) => ta.overlaps(tb),
            _ => false,
        };
        close && overlap
    }
}

/// Events conflict when a single participant cannot feasibly attend both:
/// either their time windows overlap outright, or the gap between one
/// event's end and the other's start is too short to cover the distance
/// between the venues at `speed` (distance units per time unit).
///
/// Events without a time window never conflict. Events with time windows
/// but without locations degrade gracefully to plain time-overlap conflict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TravelTimeConflict {
    /// Travel speed in distance units per time unit; must be positive.
    pub speed: f64,
}

impl TravelTimeConflict {
    /// Creates a travel-time conflict function with the given speed.
    ///
    /// Non-positive speeds are clamped to a tiny positive value, which makes
    /// any two located, non-identical venues unreachable back-to-back.
    pub fn new(speed: f64) -> Self {
        TravelTimeConflict {
            speed: if speed > 0.0 {
                speed
            } else {
                f64::MIN_POSITIVE
            },
        }
    }

    /// Whether a participant can attend `first` and then `second`
    /// back-to-back (in that order).
    fn reachable_in_order(&self, first: &Event, second: &Event) -> bool {
        let (Some(tf), Some(ts)) = (&first.attrs.time, &second.attrs.time) else {
            return true;
        };
        let gap = ts.start - tf.end();
        if gap < 0 {
            return false;
        }
        match (&first.attrs.location, &second.attrs.location) {
            (Some(lf), Some(ls)) => {
                let travel = lf.distance(ls) / self.speed;
                travel <= gap as f64
            }
            // No locations: any non-negative gap suffices (plain time overlap).
            _ => true,
        }
    }
}

impl ConflictFn for TravelTimeConflict {
    fn conflicts(&self, a: &Event, b: &Event) -> bool {
        match (&a.attrs.time, &b.attrs.time) {
            (Some(ta), Some(tb)) => {
                if ta.overlaps(tb) {
                    return true;
                }
                // Disjoint in time: conflict iff the earlier-to-later hop is
                // not coverable at the configured speed.
                if ta.start <= tb.start {
                    !self.reachable_in_order(a, b)
                } else {
                    !self.reachable_in_order(b, a)
                }
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeVector;
    use crate::ids::EventId;

    fn event(id: usize, attrs: AttributeVector) -> Event {
        Event::new(EventId::new(id), 10, attrs)
    }

    #[test]
    fn distance_conflict_requires_both_proximity_and_overlap() {
        let sigma = DistanceConflict::new(1.0);
        let here_now = event(
            0,
            AttributeVector::empty()
                .with_time(0, 10)
                .with_location(0.0, 0.0),
        );
        let near_now = event(
            1,
            AttributeVector::empty()
                .with_time(5, 10)
                .with_location(0.5, 0.0),
        );
        let far_now = event(
            2,
            AttributeVector::empty()
                .with_time(5, 10)
                .with_location(50.0, 0.0),
        );
        let near_later = event(
            3,
            AttributeVector::empty()
                .with_time(100, 10)
                .with_location(0.5, 0.0),
        );
        assert!(sigma.conflicts(&here_now, &near_now));
        assert!(!sigma.conflicts(&here_now, &far_now));
        assert!(!sigma.conflicts(&here_now, &near_later));
    }

    #[test]
    fn distance_conflict_ignores_events_without_location_or_time() {
        let sigma = DistanceConflict::new(10.0);
        let located = event(
            0,
            AttributeVector::empty()
                .with_time(0, 10)
                .with_location(0.0, 0.0),
        );
        let no_location = event(1, AttributeVector::empty().with_time(0, 10));
        let no_time = event(2, AttributeVector::empty().with_location(0.0, 0.0));
        assert!(!sigma.conflicts(&located, &no_location));
        assert!(!sigma.conflicts(&located, &no_time));
    }

    #[test]
    fn distance_conflict_is_symmetric() {
        let sigma = DistanceConflict::new(2.0);
        let a = event(
            0,
            AttributeVector::empty()
                .with_time(0, 10)
                .with_location(0.0, 0.0),
        );
        let b = event(
            1,
            AttributeVector::empty()
                .with_time(3, 4)
                .with_location(1.0, 1.0),
        );
        assert_eq!(sigma.conflicts(&a, &b), sigma.conflicts(&b, &a));
    }

    #[test]
    fn negative_radius_is_clamped() {
        let sigma = DistanceConflict::new(-5.0);
        assert_eq!(sigma.radius, 0.0);
    }

    #[test]
    fn travel_time_conflict_subsumes_time_overlap() {
        let sigma = TravelTimeConflict::new(1.0);
        let a = event(0, AttributeVector::empty().with_time(0, 10));
        let b = event(1, AttributeVector::empty().with_time(5, 10));
        assert!(sigma.conflicts(&a, &b));
    }

    #[test]
    fn travel_time_conflict_triggers_when_the_hop_is_too_long() {
        // Event a ends at t = 10, event b starts at t = 15 → 5 time units to
        // travel. Venues are 20 apart; at speed 1 that needs 20 units → conflict.
        let sigma = TravelTimeConflict::new(1.0);
        let a = event(
            0,
            AttributeVector::empty()
                .with_time(0, 10)
                .with_location(0.0, 0.0),
        );
        let b = event(
            1,
            AttributeVector::empty()
                .with_time(15, 10)
                .with_location(20.0, 0.0),
        );
        assert!(sigma.conflicts(&a, &b));
        assert!(sigma.conflicts(&b, &a), "must stay symmetric");

        // A fast enough traveller resolves the conflict.
        let fast = TravelTimeConflict::new(10.0);
        assert!(!fast.conflicts(&a, &b));
        assert!(!fast.conflicts(&b, &a));
    }

    #[test]
    fn travel_time_conflict_without_locations_reduces_to_time_overlap() {
        let sigma = TravelTimeConflict::new(0.5);
        let a = event(0, AttributeVector::empty().with_time(0, 10));
        let later = event(1, AttributeVector::empty().with_time(20, 10));
        let overlapping = event(2, AttributeVector::empty().with_time(5, 10));
        assert!(!sigma.conflicts(&a, &later));
        assert!(sigma.conflicts(&a, &overlapping));
    }

    #[test]
    fn travel_time_conflict_ignores_untimed_events() {
        let sigma = TravelTimeConflict::new(1.0);
        let timed = event(0, AttributeVector::empty().with_time(0, 10));
        let untimed = event(1, AttributeVector::empty().with_location(3.0, 4.0));
        assert!(!sigma.conflicts(&timed, &untimed));
        assert!(!sigma.conflicts(&untimed, &untimed.clone()));
    }

    #[test]
    fn zero_speed_is_clamped_to_a_positive_value() {
        let sigma = TravelTimeConflict::new(0.0);
        assert!(sigma.speed > 0.0);
        // With an (effectively) zero speed, distinct venues are unreachable
        // even with a huge gap.
        let a = event(
            0,
            AttributeVector::empty()
                .with_time(0, 1)
                .with_location(0.0, 0.0),
        );
        let b = event(
            1,
            AttributeVector::empty()
                .with_time(1_000_000, 1)
                .with_location(1.0, 0.0),
        );
        assert!(sigma.conflicts(&a, &b));
    }

    #[test]
    fn same_venue_back_to_back_does_not_conflict() {
        let sigma = TravelTimeConflict::new(1.0);
        let a = event(
            0,
            AttributeVector::empty()
                .with_time(0, 10)
                .with_location(2.0, 2.0),
        );
        let b = event(
            1,
            AttributeVector::empty()
                .with_time(10, 10)
                .with_location(2.0, 2.0),
        );
        assert!(!sigma.conflicts(&a, &b));
    }
}
