//! Error types for the IGEPA problem model.

use crate::ids::{EventId, UserId};
use std::fmt;

/// Errors raised while constructing or validating an IGEPA instance.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A user bids for an event id that does not exist in the instance.
    UnknownEventInBid {
        /// The bidding user.
        user: UserId,
        /// The unknown event id found in the bid set.
        event: EventId,
    },
    /// The per-user interaction score vector does not have one entry per user.
    InteractionLengthMismatch {
        /// Number of users in the instance.
        users: usize,
        /// Length of the provided interaction vector.
        scores: usize,
    },
    /// An interaction score falls outside `[0, 1]`.
    InteractionOutOfRange {
        /// The offending user.
        user: UserId,
        /// The offending value.
        value: f64,
    },
    /// The balance parameter β falls outside `[0, 1]`.
    InvalidBeta(f64),
    /// An interest value returned by the interest function falls outside `[0, 1]`.
    InterestOutOfRange {
        /// Event side of the pair.
        event: EventId,
        /// User side of the pair.
        user: UserId,
        /// The offending value.
        value: f64,
    },
    /// Event ids are not densely numbered `0..|V|` in order.
    NonDenseEventIds {
        /// Position in the event table.
        position: usize,
        /// Id found at that position.
        found: EventId,
    },
    /// User ids are not densely numbered `0..|U|` in order.
    NonDenseUserIds {
        /// Position in the user table.
        position: usize,
        /// Id found at that position.
        found: UserId,
    },
    /// A delta references a user id that does not exist in the instance.
    UnknownUser {
        /// The unknown user id.
        user: UserId,
    },
    /// A delta references an event id that does not exist in the instance.
    UnknownEvent {
        /// The unknown event id.
        event: EventId,
    },
    /// Admissible-set enumeration would exceed the configured limit.
    AdmissibleSetExplosion {
        /// The user whose enumeration overflowed.
        user: UserId,
        /// The configured limit.
        limit: usize,
    },
    /// A shared conflict matrix does not cover every event of the
    /// instance adopting it.
    ConflictMatrixTooSmall {
        /// Events the adopting instance holds (or would hold).
        events: usize,
        /// Events covered by the provided matrix.
        matrix: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownEventInBid { user, event } => {
                write!(f, "user {user} bids for unknown event {event}")
            }
            CoreError::InteractionLengthMismatch { users, scores } => write!(
                f,
                "interaction score vector has {scores} entries but the instance has {users} users"
            ),
            CoreError::InteractionOutOfRange { user, value } => write!(
                f,
                "interaction score {value} of user {user} is outside [0, 1]"
            ),
            CoreError::InvalidBeta(beta) => {
                write!(f, "balance parameter beta = {beta} is outside [0, 1]")
            }
            CoreError::InterestOutOfRange { event, user, value } => write!(
                f,
                "interest value {value} for pair ({event}, {user}) is outside [0, 1]"
            ),
            CoreError::NonDenseEventIds { position, found } => write!(
                f,
                "event table position {position} holds id {found}; ids must be dense and ordered"
            ),
            CoreError::NonDenseUserIds { position, found } => write!(
                f,
                "user table position {position} holds id {found}; ids must be dense and ordered"
            ),
            CoreError::UnknownUser { user } => {
                write!(f, "user {user} does not exist in the instance")
            }
            CoreError::UnknownEvent { event } => {
                write!(f, "event {event} does not exist in the instance")
            }
            CoreError::AdmissibleSetExplosion { user, limit } => write!(
                f,
                "admissible event sets of user {user} exceed the enumeration limit of {limit}"
            ),
            CoreError::ConflictMatrixTooSmall { events, matrix } => write!(
                f,
                "shared conflict matrix covers {matrix} events but the instance needs {events}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_entities() {
        let err = CoreError::UnknownEventInBid {
            user: UserId::new(3),
            event: EventId::new(9),
        };
        let msg = err.to_string();
        assert!(msg.contains("u3"));
        assert!(msg.contains("v9"));
    }

    #[test]
    fn display_for_beta() {
        let err = CoreError::InvalidBeta(1.5);
        assert!(err.to_string().contains("1.5"));
    }

    #[test]
    fn error_trait_object_compatible() {
        let err: Box<dyn std::error::Error> = Box::new(CoreError::InvalidBeta(-0.1));
        assert!(err.to_string().contains("beta"));
    }
}
