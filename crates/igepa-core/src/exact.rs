//! Exact, order-independent summation of `f64` values.
//!
//! The serving engine maintains the Definition-7 utility *incrementally*:
//! pairs are added and removed from the running interest/interaction sums
//! as the arrangement mutates. Plain `f64 += x` / `-= x` cannot support
//! that — floating-point addition is neither associative nor invertible
//! (`(a + b) - b != a` in general), so an incrementally maintained sum
//! would drift away from a from-scratch recomputation and make results
//! depend on mutation *history*. That breaks the bit-for-bit determinism
//! the engine pins (monolithic ≡ one-shard sharded, golden-log replay,
//! tracker ≡ recompute).
//!
//! [`ExactSum`] solves this with a fixed-point *superaccumulator* in the
//! spirit of Kulisch's long accumulator: every `f64` is split into its
//! integral mantissa and exponent and added exactly into an array of
//! 32-bit-windowed limbs covering the entire double exponent range.
//! Addition and subtraction are exact (no rounding ever happens inside
//! the accumulator), so:
//!
//! * the represented value is the **mathematically exact** sum of every
//!   value added minus every value subtracted;
//! * [`ExactSum::value`] rounds that exact sum to the nearest `f64`
//!   (round-to-nearest, ties-to-even) — the *correctly rounded* sum;
//! * the result is therefore **independent of insertion/removal order**
//!   and of whether the sum was built incrementally or from scratch:
//!   the same multiset of values always yields bit-identical output.
//!
//! Complexity: `add`/`sub` touch at most three limbs (O(1)); `value`
//! scans the fixed-size limb array (O(1), ~68 limbs). The accumulator
//! occupies ~0.5 KiB.

/// Bits per limb window.
const LIMB_BITS: u32 = 32;

/// The absolute exponent of accumulator bit 0: the least significant bit
/// of the smallest subnormal double (`2^-1074`).
const MIN_EXP: i32 = -1074;

/// Number of limbs: enough for the MSB of `f64::MAX` (absolute bit
/// position `1023 + 1074 = 2097` → limb 65) plus 64 bits of carry
/// headroom for sums of up to `2^63` terms.
const NUM_LIMBS: usize = 68;

/// Limb adds between forced carry normalizations. Each `add`/`sub`
/// changes a limb by less than `2^33`, so `i64` limbs are safe for well
/// over `2^30` operations between normalizations.
const NORMALIZE_EVERY: u32 = 1 << 30;

/// An exact `f64` accumulator: add and subtract are exact, and
/// [`ExactSum::value`] returns the correctly rounded sum. See the module
/// docs for why this (and not plain `f64` arithmetic) backs the engine's
/// incremental utility tracking.
#[derive(Clone)]
pub struct ExactSum {
    /// Signed carry-save limbs: limb `i` holds a signed multiple of
    /// `2^(32·i + MIN_EXP)`. Between normalizations limbs may exceed
    /// 32 bits; the represented value is always `Σ limbs[i] · 2^(32i) ·
    /// 2^MIN_EXP`, exactly.
    limbs: [i64; NUM_LIMBS],
    /// Operations since the last normalization (overflow guard).
    pending: u32,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ExactSum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactSum")
            .field("value", &self.value())
            .finish()
    }
}

impl ExactSum {
    /// An empty (zero) accumulator.
    pub fn new() -> Self {
        ExactSum {
            limbs: [0; NUM_LIMBS],
            pending: 0,
        }
    }

    /// Adds `x` exactly. `x` must be finite (the engine only ever sums
    /// validated `[0, 1]` scores); non-finite values panic in debug
    /// builds and are ignored in release builds.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.accumulate(x, false);
    }

    /// Subtracts `x` exactly. Subtracting a value that was previously
    /// added restores the accumulator to its exact prior state — the
    /// property plain `f64` arithmetic lacks.
    #[inline]
    pub fn sub(&mut self, x: f64) {
        self.accumulate(x, true);
    }

    fn accumulate(&mut self, x: f64, negate: bool) {
        debug_assert!(x.is_finite(), "ExactSum only sums finite values");
        if x == 0.0 || !x.is_finite() {
            return;
        }
        let bits = x.to_bits();
        let negative = ((bits >> 63) != 0) != negate;
        let biased = ((bits >> 52) & 0x7FF) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        // x = mantissa · 2^exp with an integral mantissa of ≤ 53 bits.
        let (mantissa, exp) = if biased == 0 {
            (frac, MIN_EXP)
        } else {
            (frac | (1u64 << 52), biased - 1075)
        };
        let pos = (exp - MIN_EXP) as u32;
        let limb = (pos / LIMB_BITS) as usize;
        let shift = pos % LIMB_BITS;
        // The shifted mantissa spans at most 85 bits → three 32-bit parts.
        let wide = (mantissa as u128) << shift;
        let parts = [
            (wide & 0xFFFF_FFFF) as i64,
            ((wide >> 32) & 0xFFFF_FFFF) as i64,
            ((wide >> 64) & 0xFFFF_FFFF) as i64,
        ];
        for (i, &part) in parts.iter().enumerate() {
            if negative {
                self.limbs[limb + i] -= part;
            } else {
                self.limbs[limb + i] += part;
            }
        }
        self.pending += 1;
        if self.pending >= NORMALIZE_EVERY {
            self.normalize();
        }
    }

    /// Adds another accumulator's exact sum into this one, exactly.
    ///
    /// The represented value is a plain linear combination of the limbs,
    /// so limb-wise addition of two accumulators represents the sum of
    /// their exact sums — merging per-shard partial sums therefore yields
    /// an accumulator whose [`ExactSum::value`] is the correctly rounded
    /// sum of *every* value the parts ever absorbed, bit-identical to a
    /// single global accumulator over the same multiset. Both sides are
    /// carry-normalized around the merge so no limb can overflow.
    pub fn absorb(&mut self, other: &ExactSum) {
        self.normalize();
        let mut other = other.clone();
        other.normalize();
        // Normalized limbs lie in [0, 2^32) (top limb: bounded signed
        // carry), so each element-wise sum fits an i64 with room to
        // spare; the trailing normalize restores the invariant.
        for (dst, src) in self.limbs.iter_mut().zip(other.limbs.iter()) {
            *dst += src;
        }
        self.normalize();
    }

    /// Propagates carries so every limb but the top one lies in
    /// `[0, 2^32)`; the top limb absorbs the residual signed carry.
    fn normalize(&mut self) {
        let mut carry: i64 = 0;
        for limb in self.limbs.iter_mut().take(NUM_LIMBS - 1) {
            let t = *limb + carry;
            // Euclidean split: remainder in [0, 2^32), floor-div carry.
            let q = t >> LIMB_BITS;
            *limb = t - (q << LIMB_BITS);
            carry = q;
        }
        self.limbs[NUM_LIMBS - 1] += carry;
        self.pending = 0;
    }

    /// Whether the exact sum is exactly zero.
    pub fn is_zero(&self) -> bool {
        let (_, magnitude) = self.canonical();
        magnitude.iter().all(|&l| l == 0)
    }

    /// Sign and magnitude of the exact sum, with every magnitude limb in
    /// `[0, 2^32)`. Non-mutating (works on a copy of the limbs).
    fn canonical(&self) -> (bool, [u64; NUM_LIMBS]) {
        // Carry-propagate a copy: afterwards the value is
        // `carry · 2^(32·N) + Σ magnitude[i] · 2^(32·i)` (times 2^MIN_EXP)
        // with every limb in [0, 2^32) — i.e. a two's-complement form
        // whose sign lives entirely in the final carry.
        let mut magnitude = [0u64; NUM_LIMBS];
        let mut carry: i64 = 0;
        for (dst, &src) in magnitude.iter_mut().zip(self.limbs.iter()) {
            let t = src + carry;
            let q = t >> LIMB_BITS; // arithmetic shift = floor division
            *dst = (t - (q << LIMB_BITS)) as u64;
            carry = q;
        }
        debug_assert!(
            (-1..=0).contains(&carry),
            "accumulator magnitude exceeded its headroom"
        );
        let negative = carry == -1;
        if negative {
            // Two's-complement negate into sign-magnitude form.
            let mut borrow = 1u64;
            for dst in magnitude.iter_mut() {
                let v = (!*dst & 0xFFFF_FFFF) + borrow;
                *dst = v & 0xFFFF_FFFF;
                borrow = v >> LIMB_BITS;
            }
        }
        (negative, magnitude)
    }

    /// The exact sum, rounded to the nearest `f64` (ties to even). For
    /// the same multiset of added-minus-subtracted values this is
    /// bit-identical regardless of operation order.
    pub fn value(&self) -> f64 {
        let (negative, limbs) = self.canonical();
        let Some(top) = limbs.iter().rposition(|&l| l != 0) else {
            return 0.0;
        };
        let top_width = 64 - limbs[top].leading_zeros(); // 1..=32
        let msb = top as i64 * LIMB_BITS as i64 + top_width as i64 - 1;
        let msb_exp = msb as i32 + MIN_EXP;
        if msb_exp > 1023 {
            return if negative {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
        }
        // Result precision: 53 bits for normal results, fewer when the
        // exact value lands in the subnormal range.
        let prec = if msb_exp >= -1022 {
            53
        } else {
            (msb_exp - MIN_EXP + 1) as i64
        };
        let lsb = msb - prec + 1; // absolute bit index of the result LSB
        debug_assert!(lsb >= 0);
        let mut mantissa = extract_bits(&limbs, lsb as u64, prec as u32);
        if lsb > 0 {
            let round = get_bit(&limbs, (lsb - 1) as u64);
            let sticky = any_bits_below(&limbs, (lsb - 1) as u64);
            if round && (sticky || (mantissa & 1) == 1) {
                // A carry to 2^prec stays exactly representable (prec ≤
                // 53), so no renormalization is needed.
                mantissa += 1;
            }
        }
        let value = (mantissa as f64) * pow2(lsb as i32 + MIN_EXP);
        if negative {
            -value
        } else {
            value
        }
    }
}

/// `2^e` for `e` in `[-1074, 1023]`, exactly.
fn pow2(e: i32) -> f64 {
    if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (e + 1074))
    }
}

/// Bits `[start, start + count)` of the magnitude, as an integer
/// (`count ≤ 53`).
fn extract_bits(limbs: &[u64; NUM_LIMBS], start: u64, count: u32) -> u64 {
    let limb = (start / LIMB_BITS as u64) as usize;
    let shift = (start % LIMB_BITS as u64) as u32;
    let mut window: u128 = 0;
    for i in (0..3).rev() {
        window <<= LIMB_BITS;
        if limb + i < NUM_LIMBS {
            window |= limbs[limb + i] as u128;
        }
    }
    ((window >> shift) as u64) & (u64::MAX >> (64 - count))
}

/// Bit `pos` of the magnitude.
fn get_bit(limbs: &[u64; NUM_LIMBS], pos: u64) -> bool {
    let limb = (pos / LIMB_BITS as u64) as usize;
    let shift = pos % LIMB_BITS as u64;
    limb < NUM_LIMBS && (limbs[limb] >> shift) & 1 == 1
}

/// Whether any bit strictly below `pos` is set.
fn any_bits_below(limbs: &[u64; NUM_LIMBS], pos: u64) -> bool {
    let limb = (pos / LIMB_BITS as u64) as usize;
    let shift = pos % LIMB_BITS as u64;
    if limbs.iter().take(limb).any(|&l| l != 0) {
        return true;
    }
    limb < NUM_LIMBS && limbs[limb] & ((1u64 << shift) - 1) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_of(values: &[f64]) -> ExactSum {
        let mut acc = ExactSum::new();
        for &v in values {
            acc.add(v);
        }
        acc
    }

    #[test]
    fn empty_and_zero_sums_are_zero() {
        assert_eq!(ExactSum::new().value().to_bits(), 0.0f64.to_bits());
        assert!(ExactSum::new().is_zero());
        let mut acc = ExactSum::new();
        acc.add(0.0);
        acc.add(-0.0);
        assert_eq!(acc.value().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn single_values_round_trip_exactly() {
        for &v in &[
            1.0,
            0.1,
            0.5,
            1e-300,
            123456.789,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0, // subnormal
            -0.9,
            (2u64.pow(53) - 1) as f64,
        ] {
            let acc = sum_of(&[v]);
            assert_eq!(acc.value().to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn exact_sums_match_float_arithmetic_when_representable() {
        // Sums of small dyadic rationals are exact in f64 too.
        let acc = sum_of(&[0.5, 0.25, 0.125, 4.0, 1024.0]);
        assert_eq!(
            acc.value().to_bits(),
            (0.5f64 + 0.25 + 0.125 + 4.0 + 1024.0).to_bits()
        );
    }

    #[test]
    fn subtraction_inverts_addition_exactly() {
        // The property float arithmetic lacks: (a + b) - b == a.
        let a: f64 = 0.3;
        let b: f64 = 0.7;
        assert_ne!(((a + b) - b).to_bits(), a.to_bits(), "f64 would drift");
        let mut acc = ExactSum::new();
        acc.add(a);
        acc.add(b);
        acc.sub(b);
        assert_eq!(acc.value().to_bits(), a.to_bits());
    }

    #[test]
    fn order_independence_on_adversarial_magnitudes() {
        // 1 + 2^-60 + ... + 2^-60 (2^20 copies summing to 2^-40): naive
        // left-to-right f64 addition loses every tiny term; the exact
        // accumulator keeps them all.
        let mut acc = ExactSum::new();
        acc.add(1.0);
        let tiny = (2.0f64).powi(-60);
        for _ in 0..(1 << 20) {
            acc.add(tiny);
        }
        let expected = 1.0 + (2.0f64).powi(-40);
        assert_eq!(acc.value().to_bits(), expected.to_bits());
    }

    #[test]
    fn negative_totals_round_correctly() {
        let mut acc = ExactSum::new();
        acc.add(0.25);
        acc.sub(1.0);
        assert_eq!(acc.value().to_bits(), (-0.75f64).to_bits());
        acc.add(0.75);
        assert!(acc.is_zero());
        assert_eq!(acc.value().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn correctly_rounds_against_integer_reference() {
        // Values on the 2^-80 grid: their exact sum fits an i128, and
        // i128 → f64 conversion is itself round-to-nearest-even, giving
        // an independent correctly-rounded reference.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            let n = 1 + (round % 17);
            let grid: Vec<i128> = (0..n).map(|_| (next() >> 24) as i128).collect();
            let mut acc = ExactSum::new();
            let mut exact: i128 = 0;
            for &g in &grid {
                acc.add(g as f64 * pow2(-80));
                exact += g;
            }
            // Remove a few again, exactly.
            for &g in grid.iter().step_by(3) {
                acc.sub(g as f64 * pow2(-80));
                exact -= g;
            }
            let expected = (exact as f64) * pow2(-80);
            assert_eq!(
                acc.value().to_bits(),
                expected.to_bits(),
                "round {round}: {} vs {}",
                acc.value(),
                expected
            );
        }
    }

    #[test]
    fn shuffled_insertion_orders_agree_bitwise() {
        // Pseudo-random [0, 1] doubles, summed in two different orders
        // with interleaved removals: bitwise-equal results.
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let values: Vec<f64> = (0..200).map(|_| next()).collect();
        let forward = sum_of(&values);
        let mut backward = ExactSum::new();
        for &v in values.iter().rev() {
            backward.add(v);
        }
        assert_eq!(forward.value().to_bits(), backward.value().to_bits());

        // Add everything twice, remove one copy in a third order.
        let mut churned = ExactSum::new();
        for &v in &values {
            churned.add(v);
            churned.add(v);
        }
        for &v in values.iter().rev() {
            churned.sub(v);
        }
        assert_eq!(churned.value().to_bits(), forward.value().to_bits());
    }

    #[test]
    fn absorb_merges_partial_sums_bit_identically() {
        // Split a value stream across several accumulators, merge them,
        // and compare against one global accumulator: bit-equal, even on
        // magnitudes where f64 addition of the partial values() drifts.
        let mut state = 7u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let values: Vec<f64> = (0..300).map(|_| next() * next()).collect();
        let global = sum_of(&values);
        for parts in [2usize, 3, 7] {
            let mut shards = vec![ExactSum::new(); parts];
            for (i, &v) in values.iter().enumerate() {
                shards[i % parts].add(v);
            }
            let mut merged = ExactSum::new();
            for shard in &shards {
                merged.absorb(shard);
            }
            assert_eq!(
                merged.value().to_bits(),
                global.value().to_bits(),
                "{parts}-way merge"
            );
        }
    }

    #[test]
    fn absorb_handles_signs_and_cancellation() {
        let mut a = ExactSum::new();
        a.add(0.3);
        a.sub(1.0);
        let mut b = ExactSum::new();
        b.add(0.7);
        b.add(1.0);
        b.sub(0.3);
        a.absorb(&b);
        let mut reference = ExactSum::new();
        reference.add(0.7);
        assert_eq!(a.value().to_bits(), reference.value().to_bits());
        // Absorbing the exact negative cancels to true zero.
        let mut neg = ExactSum::new();
        neg.sub(0.7);
        a.absorb(&neg);
        assert!(a.is_zero());
    }

    #[test]
    fn forced_normalization_preserves_the_value() {
        let mut acc = ExactSum::new();
        acc.add(0.3);
        acc.add(0.6);
        let before = acc.value();
        acc.normalize();
        assert_eq!(acc.value().to_bits(), before.to_bits());
    }

    #[test]
    fn subnormal_results_round_at_reduced_precision() {
        let tiny = f64::MIN_POSITIVE / 4.0; // subnormal
        let acc = sum_of(&[tiny, tiny, tiny]);
        assert_eq!(acc.value().to_bits(), (tiny * 3.0).to_bits());
    }
}
