//! Users (Definition 2 of the paper).

use crate::attrs::AttributeVector;
use crate::ids::{EventId, UserId};
use serde::{Deserialize, Serialize};

/// A user `u ∈ U`.
///
/// Per Definition 2, a user is associated with a capacity `c_u` (the maximum
/// number of events the user can attend), an attribute vector `l_u`, and the
/// set `N_u` of events the user bids for. IGEPA operates in the bidding
/// setting: a user is never assigned an event outside `N_u`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct User {
    /// Dense identifier of this user.
    pub id: UserId,
    /// Capacity `c_u`: maximum number of events the user can attend.
    pub capacity: usize,
    /// Attribute vector `l_u` used for interest computation.
    pub attrs: AttributeVector,
    /// `N_u`: events this user bids for, sorted by id, deduplicated.
    pub bids: Vec<EventId>,
}

impl User {
    /// Creates a user with the given bid set. Bids are sorted and
    /// deduplicated so that downstream code can rely on binary search.
    pub fn new(
        id: UserId,
        capacity: usize,
        attrs: AttributeVector,
        mut bids: Vec<EventId>,
    ) -> Self {
        bids.sort_unstable();
        bids.dedup();
        User {
            id,
            capacity,
            attrs,
            bids,
        }
    }

    /// Number of events this user bid for, `|N_u|`.
    pub fn num_bids(&self) -> usize {
        self.bids.len()
    }

    /// Whether this user bid for the given event.
    pub fn has_bid(&self, event: EventId) -> bool {
        self.bids.binary_search(&event).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bids_are_sorted_and_deduplicated() {
        let u = User::new(
            UserId::new(0),
            2,
            AttributeVector::empty(),
            vec![
                EventId::new(5),
                EventId::new(1),
                EventId::new(5),
                EventId::new(3),
            ],
        );
        assert_eq!(
            u.bids,
            vec![EventId::new(1), EventId::new(3), EventId::new(5)]
        );
        assert_eq!(u.num_bids(), 3);
    }

    #[test]
    fn has_bid_reflects_membership() {
        let u = User::new(
            UserId::new(7),
            1,
            AttributeVector::empty(),
            vec![EventId::new(2), EventId::new(9)],
        );
        assert!(u.has_bid(EventId::new(2)));
        assert!(u.has_bid(EventId::new(9)));
        assert!(!u.has_bid(EventId::new(3)));
    }

    #[test]
    fn empty_bid_set_is_allowed() {
        let u = User::new(UserId::new(1), 4, AttributeVector::empty(), vec![]);
        assert_eq!(u.num_bids(), 0);
        assert!(!u.has_bid(EventId::new(0)));
    }
}
