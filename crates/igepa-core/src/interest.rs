//! Interest functions (Definition 5 of the paper).
//!
//! A user `u`'s interest when assigned to event `v` is `SI(l_v, l_u) ∈ [0, 1]`.
//! This module defines the [`InterestFn`] trait plus the implementations used
//! throughout the reproduction:
//!
//! * [`TableInterest`] — an explicit `|V| × |U|` table. The synthetic
//!   workloads sample interest values uniformly at random and store them here.
//! * [`CosineInterest`] — cosine similarity of the category vectors, the
//!   attribute-based interest used for the Meetup-style dataset (the paper
//!   computes interest "based on their attributes as in \[4\]").
//! * [`JaccardInterest`] — Jaccard similarity of the supported categories,
//!   an alternative attribute-based measure for ablations.
//! * [`ConstantInterest`] — a fixed value, handy in unit tests.

use crate::event::Event;
use crate::ids::{EventId, UserId};
use crate::user::User;
use serde::{Deserialize, Serialize};

/// The interest function `SI(l_v, l_u)`.
///
/// Implementations must return values in `[0, 1]`; instance construction
/// validates this when materialising the interest table.
pub trait InterestFn {
    /// Interest of `user` in `event`, in `[0, 1]`.
    fn interest(&self, event: &Event, user: &User) -> f64;
}

/// Interest values stored in an explicit dense table.
///
/// Stored user-major (one contiguous row per user): users arrive far more
/// often than events in the serving workload, so growing by a user is a
/// cheap append. Rows are allocated with a `stride` that may exceed the
/// number of events, and event growth doubles the stride, so a stream of
/// event announcements costs amortised O(|U|) each instead of an O(|U|·|V|)
/// re-stride every time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableInterest {
    num_events: usize,
    num_users: usize,
    /// Allocated row length (`stride >= num_events`).
    stride: usize,
    /// User-major `|U| × stride` values; only the first `num_events` of
    /// each row are meaningful.
    values: Vec<f64>,
}

impl PartialEq for TableInterest {
    /// Logical equality: same dimensions and same stored values,
    /// regardless of how much spare row capacity each table carries.
    fn eq(&self, other: &Self) -> bool {
        self.num_events == other.num_events
            && self.num_users == other.num_users
            && (0..self.num_users).all(|row| {
                self.values[row * self.stride..row * self.stride + self.num_events]
                    == other.values[row * other.stride..row * other.stride + other.num_events]
            })
    }
}

impl TableInterest {
    /// Creates a table filled with zeros.
    pub fn zeros(num_events: usize, num_users: usize) -> Self {
        TableInterest {
            num_events,
            num_users,
            stride: num_events,
            values: vec![0.0; num_events * num_users],
        }
    }

    /// Creates a table from row-major (event-major) `|V| × |U|` values.
    /// Panics if the dimensions do not match the number of values.
    pub fn from_values(num_events: usize, num_users: usize, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            num_events * num_users,
            "interest table needs |V| * |U| values"
        );
        let mut table = TableInterest::zeros(num_events, num_users);
        for v in 0..num_events {
            for u in 0..num_users {
                table.values[u * num_events + v] = values[v * num_users + u];
            }
        }
        table
    }

    /// Sets the interest of `user` in `event`.
    pub fn set(&mut self, event: EventId, user: UserId, value: f64) {
        let idx = user.index() * self.stride + event.index();
        self.values[idx] = value;
    }

    /// Reads the interest of `user` in `event`.
    pub fn get(&self, event: EventId, user: UserId) -> f64 {
        self.values[user.index() * self.stride + event.index()]
    }

    /// Grows the table by one event (a zero column); values of existing
    /// pairs are untouched. Re-strides only when the spare row capacity is
    /// exhausted, doubling it, so long announcement streams pay amortised
    /// O(|U|) per event.
    pub fn push_event(&mut self) {
        if self.num_events == self.stride {
            let new_stride = (self.stride * 2).max(4);
            let mut values = vec![0.0; self.num_users * new_stride];
            for row in 0..self.num_users {
                values[row * new_stride..row * new_stride + self.num_events].copy_from_slice(
                    &self.values[row * self.stride..row * self.stride + self.num_events],
                );
            }
            self.stride = new_stride;
            self.values = values;
        }
        // Rows are always extended to the full stride with zeros and the
        // table never shrinks, so the newly exposed column is zero.
        self.num_events += 1;
    }

    /// Grows the table by one user (a zero row appended in place); values
    /// of existing pairs are untouched. O(|V|) — the serving hot path.
    pub fn push_user(&mut self) {
        self.values.extend(std::iter::repeat_n(0.0, self.stride));
        self.num_users += 1;
    }

    /// Number of events covered by the table.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Number of users covered by the table.
    pub fn num_users(&self) -> usize {
        self.num_users
    }
}

impl InterestFn for TableInterest {
    fn interest(&self, event: &Event, user: &User) -> f64 {
        self.get(event.id, user.id)
    }
}

/// Cosine similarity between the category vectors of the event and the user.
///
/// Both vectors are expected to be non-negative, so the cosine lies in
/// `[0, 1]`. Pairs where either vector is all-zero (or empty) get interest 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineInterest;

impl InterestFn for CosineInterest {
    fn interest(&self, event: &Event, user: &User) -> f64 {
        cosine(&event.attrs.categories, &user.attrs.categories)
    }
}

/// Jaccard similarity of the category *support* (categories with weight above
/// a threshold) of the event and the user.
#[derive(Debug, Clone, Copy)]
pub struct JaccardInterest {
    /// Weights strictly above this threshold count as "supported".
    pub threshold: f64,
}

impl Default for JaccardInterest {
    fn default() -> Self {
        JaccardInterest { threshold: 0.0 }
    }
}

impl InterestFn for JaccardInterest {
    fn interest(&self, event: &Event, user: &User) -> f64 {
        let ev = &event.attrs.categories;
        let us = &user.attrs.categories;
        let dims = ev.len().max(us.len());
        if dims == 0 {
            return 0.0;
        }
        let mut inter = 0usize;
        let mut union = 0usize;
        for d in 0..dims {
            let e = ev.get(d).copied().unwrap_or(0.0) > self.threshold;
            let u = us.get(d).copied().unwrap_or(0.0) > self.threshold;
            if e && u {
                inter += 1;
            }
            if e || u {
                union += 1;
            }
        }
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// Interest that is the same constant for every pair. Clamped to `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct ConstantInterest(pub f64);

impl InterestFn for ConstantInterest {
    fn interest(&self, _event: &Event, _user: &User) -> f64 {
        self.0.clamp(0.0, 1.0)
    }
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dims = a.len().min(b.len());
    if dims == 0 {
        return 0.0;
    }
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for d in 0..dims {
        dot += a[d] * b[d];
        na += a[d] * a[d];
        nb += b[d] * b[d];
    }
    // Norms must include the tails so that padding with zeros is equivalent.
    for &x in &a[dims..] {
        na += x * x;
    }
    for &x in &b[dims..] {
        nb += x * x;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeVector;

    fn event_with_categories(id: usize, cats: Vec<f64>) -> Event {
        Event::new(EventId::new(id), 10, AttributeVector::from_categories(cats))
    }

    fn user_with_categories(id: usize, cats: Vec<f64>) -> User {
        User::new(
            UserId::new(id),
            2,
            AttributeVector::from_categories(cats),
            vec![],
        )
    }

    #[test]
    fn table_interest_set_get() {
        let mut t = TableInterest::zeros(2, 3);
        t.set(EventId::new(1), UserId::new(2), 0.75);
        assert_eq!(t.get(EventId::new(1), UserId::new(2)), 0.75);
        assert_eq!(t.get(EventId::new(0), UserId::new(0)), 0.0);
        assert_eq!(t.num_events(), 2);
        assert_eq!(t.num_users(), 3);
    }

    #[test]
    #[should_panic(expected = "interest table needs")]
    fn table_interest_from_values_checks_dimensions() {
        let _ = TableInterest::from_values(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn table_growth_preserves_values_across_restrides() {
        // Interleave event and user growth past several doubling
        // boundaries; every previously stored value must survive and the
        // new rows/columns must read zero.
        let mut t = TableInterest::zeros(1, 1);
        t.set(EventId::new(0), UserId::new(0), 0.25);
        for step in 0..12 {
            if step % 2 == 0 {
                t.push_event();
            } else {
                t.push_user();
            }
            let v = EventId::new(t.num_events() - 1);
            let u = UserId::new(t.num_users() - 1);
            assert_eq!(t.get(v, u), 0.0, "fresh cell must be zero");
            t.set(v, u, 0.01 * (step + 1) as f64);
        }
        assert_eq!(t.get(EventId::new(0), UserId::new(0)), 0.25);
        assert_eq!(t.num_events(), 7);
        assert_eq!(t.num_users(), 7);
        // Equality ignores spare capacity.
        let mut exact = TableInterest::zeros(7, 7);
        for v in 0..7 {
            for u in 0..7 {
                exact.set(
                    EventId::new(v),
                    UserId::new(u),
                    t.get(EventId::new(v), UserId::new(u)),
                );
            }
        }
        assert_eq!(exact, t);
    }

    #[test]
    fn cosine_identical_vectors_is_one() {
        let e = event_with_categories(0, vec![0.2, 0.4, 0.4]);
        let u = user_with_categories(0, vec![0.2, 0.4, 0.4]);
        assert!((CosineInterest.interest(&e, &u) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_vectors_is_zero() {
        let e = event_with_categories(0, vec![1.0, 0.0]);
        let u = user_with_categories(0, vec![0.0, 1.0]);
        assert_eq!(CosineInterest.interest(&e, &u), 0.0);
    }

    #[test]
    fn cosine_handles_empty_and_zero_vectors() {
        let e = event_with_categories(0, vec![]);
        let u = user_with_categories(0, vec![1.0]);
        assert_eq!(CosineInterest.interest(&e, &u), 0.0);
        let e0 = event_with_categories(0, vec![0.0, 0.0]);
        assert_eq!(CosineInterest.interest(&e0, &u), 0.0);
    }

    #[test]
    fn cosine_with_different_lengths_pads_with_zeros() {
        let e = event_with_categories(0, vec![1.0]);
        let long = user_with_categories(0, vec![1.0, 1.0]);
        let explicit = user_with_categories(1, vec![1.0, 1.0, 0.0]);
        let a = CosineInterest.interest(&e, &long);
        let b = CosineInterest.interest(&e, &explicit);
        assert!((a - b).abs() < 1e-12);
        assert!((a - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn jaccard_counts_shared_support() {
        let e = event_with_categories(0, vec![1.0, 1.0, 0.0, 0.0]);
        let u = user_with_categories(0, vec![0.0, 1.0, 1.0, 0.0]);
        let j = JaccardInterest::default().interest(&e, &u);
        assert!((j - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_empty_support_is_zero() {
        let e = event_with_categories(0, vec![0.0, 0.0]);
        let u = user_with_categories(0, vec![0.0]);
        assert_eq!(JaccardInterest::default().interest(&e, &u), 0.0);
        let e2 = event_with_categories(0, vec![]);
        let u2 = user_with_categories(0, vec![]);
        assert_eq!(JaccardInterest::default().interest(&e2, &u2), 0.0);
    }

    #[test]
    fn constant_interest_is_clamped() {
        let e = event_with_categories(0, vec![]);
        let u = user_with_categories(0, vec![]);
        assert_eq!(ConstantInterest(2.0).interest(&e, &u), 1.0);
        assert_eq!(ConstantInterest(-1.0).interest(&e, &u), 0.0);
        assert_eq!(ConstantInterest(0.3).interest(&e, &u), 0.3);
    }
}
