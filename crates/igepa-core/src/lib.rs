//! # igepa-core — the IGEPA problem model
//!
//! This crate defines the data model of the **Interaction-aware Global
//! Event-Participant Arrangement (IGEPA)** problem from *"Interaction-Aware
//! Arrangement for Event-Based Social Networks"* (Kou et al., ICDE 2019):
//!
//! * [`Event`] and [`User`] with capacities, attribute vectors and bid sets
//!   (Definitions 1–2);
//! * conflict functions and the precomputed [`ConflictMatrix`]
//!   (Definition 3);
//! * feasible [`Arrangement`]s with bid/capacity/conflict checking
//!   (Definition 4) and their [`UtilityBreakdown`] (Definition 7);
//! * interest functions `SI(l_v, l_u)` (Definition 5);
//! * the per-user degree of potential interaction `D(G, u)` (Definition 6),
//!   stored on the [`Instance`] as a validated score vector (computed by the
//!   `igepa-graph` crate);
//! * admissible event sets, the building block of the LP-packing algorithm's
//!   benchmark LP (Section III).
//!
//! The crate deliberately contains **no algorithms and no randomness** — it
//! is the shared vocabulary of the workload generators (`igepa-datagen`),
//! the solvers (`igepa-algos`) and the experiment harness
//! (`igepa-experiments`).
//!
//! ## Quick example
//!
//! ```
//! use igepa_core::{AttributeVector, Instance, ConstantInterest, NeverConflict,
//!                  Arrangement};
//!
//! let mut builder = Instance::builder();
//! let concert = builder.add_event(2, AttributeVector::empty());
//! let lecture = builder.add_event(1, AttributeVector::empty());
//! let alice = builder.add_user(1, AttributeVector::empty(), vec![concert, lecture]);
//! let bob = builder.add_user(1, AttributeVector::empty(), vec![concert]);
//! builder.interaction_scores(vec![1.0, 0.0]);
//! let instance = builder.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
//!
//! let mut arrangement = Arrangement::empty_for(&instance);
//! arrangement.assign(concert, alice);
//! arrangement.assign(concert, bob);
//! assert!(arrangement.is_feasible(&instance));
//! assert!(arrangement.utility(&instance).total > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admissible;
pub mod arrangement;
pub mod attrs;
pub mod conflict;
pub mod contention;
pub mod csv_io;
pub mod delta;
pub mod error;
pub mod event;
pub mod exact;
pub mod ids;
pub mod instance;
pub mod interest;
pub mod io;
pub mod partition;
pub mod stats;
pub mod travel;
pub mod user;

pub use admissible::{
    count_for_user, enumerate_for_user, AdmissibleSetIndex, UserAdmissibleSets, DEFAULT_SET_LIMIT,
};
pub use arrangement::{Arrangement, ArrangementDiff, UtilityBreakdown, UtilityTracker, Violation};
pub use attrs::{AttributeVector, Location, TimeWindow};
pub use conflict::{
    AlwaysConflict, ConflictFn, ConflictMatrix, NeverConflict, PairSetConflict, TimeOverlapConflict,
};
pub use contention::ContentionStats;
pub use csv_io::{
    arrangement_from_csv, arrangement_to_csv, instance_from_csv, instance_to_csv, CsvError,
};
pub use delta::{CapacityTarget, DeltaEffect, DirtySet, InstanceDelta};
pub use error::CoreError;
pub use event::Event;
pub use exact::ExactSum;
pub use ids::{EventId, UserId};
pub use instance::{Instance, InstanceBuilder};
pub use interest::{ConstantInterest, CosineInterest, InterestFn, JaccardInterest, TableInterest};
pub use io::{
    instance_from_json, instance_to_json, ArrangementSnapshot, InstanceSnapshot, SnapshotError,
};
pub use partition::{
    assign_users, boundary_events, spans_shards, HashPartitioner, LocalityPartitioner,
    OverridePartitioner, PartitionCut, Partitioner,
};
pub use stats::{ArrangementStats, InstanceStats};
pub use travel::{DistanceConflict, TravelTimeConflict};
pub use user::User;
