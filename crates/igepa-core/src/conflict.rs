//! Conflict functions between events (Definition 3 of the paper).
//!
//! The conflict function `σ(l_v, l_v') ∈ {0, 1}` tells whether two events
//! conflict — e.g. because they overlap in time — in which case no user may
//! be assigned to both. This module provides:
//!
//! * the [`ConflictFn`] trait, the pluggable σ;
//! * common implementations: [`TimeOverlapConflict`] (used for the Meetup
//!   dataset), [`PairSetConflict`] (explicit pairs, used by the synthetic
//!   generator), [`NeverConflict`] and [`AlwaysConflict`] (degenerate cases
//!   useful in tests and ablations); and
//! * [`ConflictMatrix`], a precomputed symmetric boolean matrix over all
//!   events of an instance, which is what the algorithms actually query.

use crate::event::Event;
use crate::ids::EventId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The conflict function σ of Definition 3.
///
/// Implementations must be symmetric: `conflicts(a, b) == conflicts(b, a)`.
/// An event never conflicts with itself as far as the model is concerned;
/// the capacity constraint (`c_u`) already prevents duplicate assignment of
/// the same event and [`ConflictMatrix`] forces the diagonal to `false`.
pub trait ConflictFn {
    /// Returns `true` iff events `a` and `b` conflict (σ = 1).
    fn conflicts(&self, a: &Event, b: &Event) -> bool;
}

/// Two events conflict iff both carry a time window and the windows overlap.
///
/// This is the σ used for the paper's real Meetup dataset: "if two events
/// overlap in time, they conflict with each other".
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeOverlapConflict;

impl ConflictFn for TimeOverlapConflict {
    fn conflicts(&self, a: &Event, b: &Event) -> bool {
        match (&a.attrs.time, &b.attrs.time) {
            (Some(ta), Some(tb)) => ta.overlaps(tb),
            _ => false,
        }
    }
}

/// No two events ever conflict. Setting σ ≡ 0 reduces IGEPA to a pure
/// many-to-many capacitated assignment; useful in tests and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverConflict;

impl ConflictFn for NeverConflict {
    fn conflicts(&self, _a: &Event, _b: &Event) -> bool {
        false
    }
}

/// Every pair of distinct events conflicts. With σ ≡ 1 each user can attend
/// at most one event regardless of `c_u`; useful in tests and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysConflict;

impl ConflictFn for AlwaysConflict {
    fn conflicts(&self, a: &Event, b: &Event) -> bool {
        a.id != b.id
    }
}

/// Conflicts given by an explicit set of unordered event pairs.
///
/// The synthetic generator of the paper declares "two events conflict with
/// each other with probability `pcf`"; it materialises the sampled pairs
/// into this structure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PairSetConflict {
    pairs: BTreeSet<(EventId, EventId)>,
}

impl PairSetConflict {
    /// Creates an empty conflict set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares that `a` and `b` conflict. Order does not matter and
    /// self-pairs are ignored.
    pub fn add(&mut self, a: EventId, b: EventId) {
        if a == b {
            return;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        self.pairs.insert(key);
    }

    /// Number of conflicting pairs recorded.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair has been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether the unordered pair `{a, b}` is recorded as conflicting.
    pub fn contains(&self, a: EventId, b: EventId) -> bool {
        if a == b {
            return false;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        self.pairs.contains(&key)
    }

    /// Iterates over the recorded pairs in canonical `(lo, hi)` order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.pairs.iter().copied()
    }
}

impl ConflictFn for PairSetConflict {
    fn conflicts(&self, a: &Event, b: &Event) -> bool {
        self.contains(a.id, b.id)
    }
}

/// A precomputed, symmetric conflict matrix over the events of an instance.
///
/// Algorithms query conflicts in inner loops (admissible-set enumeration,
/// greedy feasibility checks), so the matrix stores the answers densely as a
/// flat bit-per-pair table. The diagonal is always `false`.
///
/// The table is allocated with a `stride` that may exceed the number of
/// events: [`ConflictMatrix::push_event`] grows the allocation by doubling,
/// so a serving engine absorbing a stream of `AddEvent` deltas pays
/// amortised O(|V|) per announcement instead of re-copying the whole
/// O(|V|²) table every time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConflictMatrix {
    n: usize,
    /// Allocated row length (`stride >= n`); `bits` holds `stride²` flags.
    stride: usize,
    /// Row-major `stride × stride` boolean table; only the top-left
    /// `n × n` corner is meaningful.
    bits: Vec<bool>,
}

impl PartialEq for ConflictMatrix {
    /// Logical equality: same events and same conflicting pairs,
    /// regardless of how much spare capacity each matrix has allocated.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
            && (0..self.n).all(|i| {
                self.bits[i * self.stride..i * self.stride + self.n]
                    == other.bits[i * other.stride..i * other.stride + other.n]
            })
    }
}

impl Eq for ConflictMatrix {}

impl ConflictMatrix {
    /// Builds the matrix by evaluating `sigma` on every unordered pair of
    /// the given events.
    pub fn build(events: &[Event], sigma: &dyn ConflictFn) -> Self {
        let n = events.len();
        let mut bits = vec![false; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                if sigma.conflicts(&events[i], &events[j]) {
                    bits[i * n + j] = true;
                    bits[j * n + i] = true;
                }
            }
        }
        ConflictMatrix { n, stride: n, bits }
    }

    /// Builds a matrix with no conflicts over `n` events.
    pub fn none(n: usize) -> Self {
        ConflictMatrix {
            n,
            stride: n,
            bits: vec![false; n * n],
        }
    }

    /// Number of events covered by the matrix.
    pub fn num_events(&self) -> usize {
        self.n
    }

    /// Whether events `a` and `b` conflict. The diagonal is always `false`.
    #[inline]
    pub fn conflicts(&self, a: EventId, b: EventId) -> bool {
        debug_assert!(a.index() < self.n && b.index() < self.n);
        self.bits[a.index() * self.stride + b.index()]
    }

    /// Number of unordered conflicting pairs.
    pub fn num_conflicting_pairs(&self) -> usize {
        let mut count = 0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.bits[i * self.stride + j] {
                    count += 1;
                }
            }
        }
        count
    }

    /// Conflict density: fraction of unordered pairs that conflict.
    /// Returns 0 when there are fewer than two events.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let total = self.n * (self.n - 1) / 2;
        self.num_conflicting_pairs() as f64 / total as f64
    }

    /// Events conflicting with `event`, in increasing id order.
    pub fn conflicting_events(&self, event: EventId) -> Vec<EventId> {
        let i = event.index();
        (0..self.n)
            .filter(|&j| self.bits[i * self.stride + j])
            .map(EventId::new)
            .collect()
    }

    /// Grows the matrix by one event, evaluating `sigma` only against the
    /// `existing` events (the `n` events the matrix currently covers). The
    /// old pairs are copied, not re-evaluated — this is the incremental
    /// patch used by delta application instead of a full
    /// [`ConflictMatrix::build`]. The allocation grows by doubling, so a
    /// long stream of announcements costs amortised O(n) per event rather
    /// than O(n²).
    pub fn push_event(&mut self, existing: &[Event], new_event: &Event, sigma: &dyn ConflictFn) {
        let n = self.n;
        debug_assert_eq!(existing.len(), n, "existing events must match matrix size");
        self.reserve_one();
        for (i, old) in existing.iter().enumerate() {
            if sigma.conflicts(old, new_event) {
                self.bits[i * self.stride + n] = true;
                self.bits[n * self.stride + i] = true;
            }
        }
        self.n = n + 1;
    }

    /// Grows the matrix by one event from a *precomputed* partner list —
    /// the ids of existing events the new event conflicts with — without
    /// consulting a conflict function. This is how a catalogue replays an
    /// already-evaluated conflict row into a lagging copy-on-write buffer:
    /// σ is evaluated exactly once per announcement no matter how many
    /// buffers or shards exist. Partners must be in range; amortised O(n)
    /// like [`ConflictMatrix::push_event`].
    pub fn push_row(&mut self, partners: &[EventId]) {
        let n = self.n;
        self.reserve_one();
        for &p in partners {
            assert!(p.index() < n, "conflict partner {p} out of range");
            self.bits[p.index() * self.stride + n] = true;
            self.bits[n * self.stride + p.index()] = true;
        }
        self.n = n + 1;
    }

    /// Ensures one more event fits, restriding into a doubled allocation
    /// when the spare capacity is exhausted.
    fn reserve_one(&mut self) {
        let n = self.n;
        if n == self.stride {
            let new_stride = (self.stride * 2).max(4);
            let mut bits = vec![false; new_stride * new_stride];
            for i in 0..n {
                bits[i * new_stride..i * new_stride + n]
                    .copy_from_slice(&self.bits[i * self.stride..i * self.stride + n]);
            }
            self.stride = new_stride;
            self.bits = bits;
        }
    }

    /// Checks that a set of events is pairwise conflict-free.
    pub fn set_is_conflict_free(&self, events: &[EventId]) -> bool {
        for (idx, &a) in events.iter().enumerate() {
            for &b in &events[idx + 1..] {
                if self.conflicts(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeVector;

    fn timed_event(id: usize, start: i64, duration: i64) -> Event {
        Event::new(
            EventId::new(id),
            10,
            AttributeVector::from_time(start, duration),
        )
    }

    fn plain_event(id: usize) -> Event {
        Event::new(EventId::new(id), 10, AttributeVector::empty())
    }

    #[test]
    fn time_overlap_conflict_matches_window_overlap() {
        let a = timed_event(0, 0, 60);
        let b = timed_event(1, 30, 60);
        let c = timed_event(2, 100, 10);
        let sigma = TimeOverlapConflict;
        assert!(sigma.conflicts(&a, &b));
        assert!(!sigma.conflicts(&a, &c));
    }

    #[test]
    fn time_overlap_without_windows_never_conflicts() {
        let a = plain_event(0);
        let b = timed_event(1, 0, 60);
        assert!(!TimeOverlapConflict.conflicts(&a, &b));
    }

    #[test]
    fn never_and_always_conflict() {
        let a = plain_event(0);
        let b = plain_event(1);
        assert!(!NeverConflict.conflicts(&a, &b));
        assert!(AlwaysConflict.conflicts(&a, &b));
        assert!(!AlwaysConflict.conflicts(&a, &a));
    }

    #[test]
    fn pair_set_conflict_is_symmetric_and_ignores_self_pairs() {
        let mut pairs = PairSetConflict::new();
        pairs.add(EventId::new(2), EventId::new(0));
        pairs.add(EventId::new(1), EventId::new(1));
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(EventId::new(0), EventId::new(2)));
        assert!(pairs.contains(EventId::new(2), EventId::new(0)));
        assert!(!pairs.contains(EventId::new(1), EventId::new(1)));
    }

    #[test]
    fn matrix_build_is_symmetric_with_false_diagonal() {
        let events = vec![
            timed_event(0, 0, 60),
            timed_event(1, 30, 60),
            timed_event(2, 200, 60),
        ];
        let m = ConflictMatrix::build(&events, &TimeOverlapConflict);
        assert!(m.conflicts(EventId::new(0), EventId::new(1)));
        assert!(m.conflicts(EventId::new(1), EventId::new(0)));
        assert!(!m.conflicts(EventId::new(0), EventId::new(0)));
        assert!(!m.conflicts(EventId::new(0), EventId::new(2)));
        assert_eq!(m.num_conflicting_pairs(), 1);
    }

    #[test]
    fn matrix_density() {
        let events: Vec<Event> = (0..4).map(plain_event).collect();
        let m = ConflictMatrix::build(&events, &AlwaysConflict);
        assert!((m.density() - 1.0).abs() < 1e-12);
        let m0 = ConflictMatrix::build(&events, &NeverConflict);
        assert_eq!(m0.density(), 0.0);
        assert_eq!(ConflictMatrix::none(1).density(), 0.0);
    }

    #[test]
    fn conflicting_events_lists_neighbours() {
        let mut pairs = PairSetConflict::new();
        pairs.add(EventId::new(0), EventId::new(2));
        pairs.add(EventId::new(0), EventId::new(3));
        let events: Vec<Event> = (0..4).map(plain_event).collect();
        let m = ConflictMatrix::build(&events, &pairs);
        assert_eq!(
            m.conflicting_events(EventId::new(0)),
            vec![EventId::new(2), EventId::new(3)]
        );
        assert!(m.conflicting_events(EventId::new(1)).is_empty());
    }

    #[test]
    fn repeated_growth_restrides_correctly() {
        // Grow past several doubling boundaries and check every pair
        // against a from-scratch build after each push.
        let events: Vec<Event> = (0..20).map(|i| timed_event(i, i as i64 * 50, 60)).collect();
        let mut grown = ConflictMatrix::build(&events[..1], &TimeOverlapConflict);
        for n in 1..events.len() {
            grown.push_event(&events[..n], &events[n], &TimeOverlapConflict);
            let rebuilt = ConflictMatrix::build(&events[..=n], &TimeOverlapConflict);
            assert_eq!(
                grown,
                rebuilt,
                "divergence after growing to {} events",
                n + 1
            );
            assert_eq!(grown.num_events(), n + 1);
        }
        assert!(grown.num_conflicting_pairs() > 0);
    }

    #[test]
    fn push_row_matches_push_event() {
        let events: Vec<Event> = (0..12).map(|i| timed_event(i, i as i64 * 40, 60)).collect();
        let mut by_sigma = ConflictMatrix::build(&events[..1], &TimeOverlapConflict);
        let mut by_row = by_sigma.clone();
        for n in 1..events.len() {
            by_sigma.push_event(&events[..n], &events[n], &TimeOverlapConflict);
            let partners: Vec<EventId> = (0..n)
                .filter(|&i| TimeOverlapConflict.conflicts(&events[i], &events[n]))
                .map(EventId::new)
                .collect();
            by_row.push_row(&partners);
            assert_eq!(by_sigma, by_row, "divergence at {} events", n + 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_row_rejects_out_of_range_partners() {
        let mut m = ConflictMatrix::none(1);
        m.push_row(&[EventId::new(5)]);
    }

    #[test]
    fn equality_ignores_spare_capacity() {
        let events: Vec<Event> = (0..3).map(plain_event).collect();
        let exact = ConflictMatrix::build(&events, &NeverConflict);
        let mut grown = ConflictMatrix::build(&events[..1], &NeverConflict);
        grown.push_event(&events[..1], &events[1], &NeverConflict);
        grown.push_event(&events[..2], &events[2], &NeverConflict);
        assert_eq!(exact, grown);
    }

    #[test]
    fn set_is_conflict_free_checks_all_pairs() {
        let mut pairs = PairSetConflict::new();
        pairs.add(EventId::new(1), EventId::new(2));
        let events: Vec<Event> = (0..3).map(plain_event).collect();
        let m = ConflictMatrix::build(&events, &pairs);
        assert!(m.set_is_conflict_free(&[EventId::new(0), EventId::new(1)]));
        assert!(!m.set_is_conflict_free(&[EventId::new(0), EventId::new(1), EventId::new(2)]));
        assert!(m.set_is_conflict_free(&[]));
    }
}
