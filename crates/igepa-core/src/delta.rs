//! Incremental instance mutations for the arrangement-serving engine.
//!
//! The batch pipeline treats an [`Instance`] as frozen; a serving system
//! does not have that luxury: EBSN platforms see users and events arrive
//! and change continuously. This module defines the vocabulary of those
//! changes — [`InstanceDelta`] — plus validated in-place application
//! ([`Instance::apply_delta`]) that patches the conflict matrix and the
//! interest table incrementally instead of rebuilding them.
//!
//! Every successful application returns a [`DeltaEffect`] naming the users
//! and events whose neighbourhood changed; callers (the `igepa-engine`
//! crate) fold these into a [`DirtySet`] that drives warm-start repair.
//!
//! Identifier stability: ids are dense indices, so removal never reindexes.
//! [`InstanceDelta::RemoveUser`] instead *retires* the user — bids cleared,
//! capacity and interaction zeroed — leaving a husk that no feasible
//! arrangement can assign anything to. This keeps recorded traces
//! replayable byte-for-byte.

use crate::attrs::AttributeVector;
use crate::conflict::ConflictFn;
use crate::error::CoreError;
use crate::event::Event;
use crate::ids::{EventId, UserId};
use crate::instance::Instance;
use crate::interest::InterestFn;
use crate::user::User;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The event- or user-side target of a capacity update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapacityTarget {
    /// Update `c_v` of an event.
    Event(EventId),
    /// Update `c_u` of a user.
    User(UserId),
}

/// One incremental mutation of an [`Instance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InstanceDelta {
    /// A new user joins with the given capacity, attributes, bid set and
    /// degree of potential interaction.
    AddUser {
        /// Capacity `c_u`.
        capacity: usize,
        /// Attribute vector `l_u`.
        attrs: AttributeVector,
        /// Events the user bids for.
        bids: Vec<EventId>,
        /// `D(G, u)` in `[0, 1]`.
        interaction: f64,
    },
    /// A user leaves the platform. The user is retired in place (see the
    /// module docs), never reindexed.
    RemoveUser {
        /// The leaving user.
        user: UserId,
    },
    /// A new event is announced with the given capacity and attributes.
    /// Conflicts against existing events are evaluated by the σ passed to
    /// [`Instance::apply_delta`].
    AddEvent {
        /// Capacity `c_v`.
        capacity: usize,
        /// Attribute vector `l_v`.
        attrs: AttributeVector,
    },
    /// An event or user changes capacity.
    UpdateCapacity {
        /// What to update.
        target: CapacityTarget,
        /// The new capacity.
        capacity: usize,
    },
    /// A user replaces their bid set.
    UpdateBids {
        /// The bidding user.
        user: UserId,
        /// The new bid set (replaces the old one entirely).
        bids: Vec<EventId>,
    },
    /// A user's degree of potential interaction changes (e.g. the social
    /// graph gained edges).
    UpdateInteractionScore {
        /// The user.
        user: UserId,
        /// The new `D(G, u)` in `[0, 1]`.
        score: f64,
    },
}

impl InstanceDelta {
    /// Short, stable name of the delta kind (for reports and logs).
    pub fn kind(&self) -> &'static str {
        match self {
            InstanceDelta::AddUser { .. } => "add_user",
            InstanceDelta::RemoveUser { .. } => "remove_user",
            InstanceDelta::AddEvent { .. } => "add_event",
            InstanceDelta::UpdateCapacity { .. } => "update_capacity",
            InstanceDelta::UpdateBids { .. } => "update_bids",
            InstanceDelta::UpdateInteractionScore { .. } => "update_interaction_score",
        }
    }
}

/// What a successfully applied delta touched.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaEffect {
    /// Users whose assignments may have become infeasible or improvable.
    pub dirty_users: Vec<UserId>,
    /// Events whose load constraints or candidate sets changed.
    pub dirty_events: Vec<EventId>,
    /// Id of the user created by an `AddUser` delta.
    pub created_user: Option<UserId>,
    /// Id of the event created by an `AddEvent` delta.
    pub created_event: Option<EventId>,
    /// An interaction-score change `(user, old, new)` applied to an
    /// existing user (`UpdateInteractionScore`, or `RemoveUser` zeroing
    /// the score). Pairs of that user currently held by an arrangement
    /// change utility contribution; the engine folds this into its
    /// [`crate::UtilityTracker`] before anything else reads the score.
    pub interaction_change: Option<(UserId, f64, f64)>,
    /// Cached interest values overwritten in place, as `(event, user,
    /// old, new)`. Only `UpdateBids` can do this (re-introducing a bid
    /// re-evaluates its interest); the engine adjusts its tracker for any
    /// such pair still sitting in the arrangement.
    pub interest_changes: Vec<(EventId, UserId, f64, f64)>,
}

/// Accumulated dirty users/events between repairs; the unit of work of the
/// warm-start repair loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DirtySet {
    /// Dirty users, deduplicated and ordered.
    pub users: BTreeSet<UserId>,
    /// Dirty events, deduplicated and ordered.
    pub events: BTreeSet<EventId>,
}

impl DirtySet {
    /// An empty dirty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a delta's effect into the set.
    pub fn absorb(&mut self, effect: &DeltaEffect) {
        self.users.extend(effect.dirty_users.iter().copied());
        self.events.extend(effect.dirty_events.iter().copied());
    }

    /// Marks a single user dirty.
    pub fn mark_user(&mut self, user: UserId) {
        self.users.insert(user);
    }

    /// Marks a single event dirty.
    pub fn mark_event(&mut self, event: EventId) {
        self.events.insert(event);
    }

    /// Whether nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty() && self.events.is_empty()
    }

    /// Number of dirty users plus dirty events.
    pub fn len(&self) -> usize {
        self.users.len() + self.events.len()
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        self.users.clear();
        self.events.clear();
    }
}

impl Instance {
    /// Applies one delta in place, patching the conflict matrix and the
    /// interest table incrementally.
    ///
    /// `sigma` is consulted only for `AddEvent` (new-vs-existing pairs);
    /// `interest` only for bid pairs introduced by `AddUser` / `UpdateBids`.
    /// Existing cached values are never re-evaluated. Validation mirrors
    /// [`crate::InstanceBuilder::build`]: unknown ids, out-of-range scores
    /// and out-of-range interest values are rejected and leave the instance
    /// unchanged.
    pub fn apply_delta(
        &mut self,
        delta: &InstanceDelta,
        sigma: &dyn ConflictFn,
        interest: &dyn InterestFn,
    ) -> Result<DeltaEffect, CoreError> {
        match delta {
            InstanceDelta::AddUser {
                capacity,
                attrs,
                bids,
                interaction,
            } => self.apply_add_user(
                *capacity,
                attrs.clone(),
                bids.clone(),
                *interaction,
                interest,
            ),
            InstanceDelta::RemoveUser { user } => self.apply_remove_user(*user),
            InstanceDelta::AddEvent { capacity, attrs } => {
                self.apply_add_event(*capacity, attrs.clone(), sigma)
            }
            InstanceDelta::UpdateCapacity { target, capacity } => {
                self.apply_update_capacity(*target, *capacity)
            }
            InstanceDelta::UpdateBids { user, bids } => {
                self.apply_update_bids(*user, bids.clone(), interest)
            }
            InstanceDelta::UpdateInteractionScore { user, score } => {
                self.apply_update_interaction(*user, *score)
            }
        }
    }

    fn check_user(&self, user: UserId) -> Result<(), CoreError> {
        if user.index() >= self.users.len() {
            return Err(CoreError::UnknownUser { user });
        }
        Ok(())
    }

    fn check_event(&self, event: EventId) -> Result<(), CoreError> {
        if event.index() >= self.events.len() {
            return Err(CoreError::UnknownEvent { event });
        }
        Ok(())
    }

    fn check_interaction(user: UserId, value: f64) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&value) || value.is_nan() {
            return Err(CoreError::InteractionOutOfRange { user, value });
        }
        Ok(())
    }

    fn apply_add_user(
        &mut self,
        capacity: usize,
        attrs: AttributeVector,
        bids: Vec<EventId>,
        interaction: f64,
        interest: &dyn InterestFn,
    ) -> Result<DeltaEffect, CoreError> {
        let id = UserId::new(self.users.len());
        Self::check_interaction(id, interaction)?;
        for &v in &bids {
            if v.index() >= self.events.len() {
                return Err(CoreError::UnknownEventInBid { user: id, event: v });
            }
        }
        let user = User::new(id, capacity, attrs, bids);

        // Validate every new interest value before mutating anything.
        let mut values = Vec::with_capacity(user.bids.len());
        for &v in &user.bids {
            let value = interest.interest(&self.events[v.index()], &user);
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(CoreError::InterestOutOfRange {
                    event: v,
                    user: id,
                    value,
                });
            }
            values.push((v, value));
        }

        self.interest.push_user();
        for (v, value) in values {
            self.interest.set(v, id, value);
        }
        for &v in &user.bids {
            let bidders = &mut self.events[v.index()].bidders;
            if let Err(pos) = bidders.binary_search(&id) {
                bidders.insert(pos, id);
            }
        }
        self.interaction.push(interaction);
        let dirty_events = user.bids.clone();
        self.users.push(user);

        Ok(DeltaEffect {
            dirty_users: vec![id],
            dirty_events,
            created_user: Some(id),
            ..DeltaEffect::default()
        })
    }

    fn apply_remove_user(&mut self, user: UserId) -> Result<DeltaEffect, CoreError> {
        self.check_user(user)?;
        let old_bids = std::mem::take(&mut self.users[user.index()].bids);
        for &v in &old_bids {
            let bidders = &mut self.events[v.index()].bidders;
            if let Ok(pos) = bidders.binary_search(&user) {
                bidders.remove(pos);
            }
        }
        self.users[user.index()].capacity = 0;
        let old_interaction = self.interaction[user.index()];
        self.interaction[user.index()] = 0.0;
        Ok(DeltaEffect {
            dirty_users: vec![user],
            dirty_events: old_bids,
            interaction_change: Some((user, old_interaction, 0.0)),
            ..DeltaEffect::default()
        })
    }

    fn apply_add_event(
        &mut self,
        capacity: usize,
        attrs: AttributeVector,
        sigma: &dyn ConflictFn,
    ) -> Result<DeltaEffect, CoreError> {
        let id = EventId::new(self.events.len());
        let event = Event::new(id, capacity, attrs);
        // Copy-on-write: a sole owner grows the matrix in place (the
        // amortised-O(|V|) fast path); an instance sharing its matrix
        // forks a private copy first. Field-level split borrows keep
        // `self.events` readable while the matrix handle is mutated.
        std::sync::Arc::make_mut(&mut self.conflicts).push_event(&self.events, &event, sigma);
        self.interest.push_event();
        self.events.push(event);
        Ok(DeltaEffect {
            dirty_events: vec![id],
            created_event: Some(id),
            ..DeltaEffect::default()
        })
    }

    /// Announces one event by *adopting* a pre-grown, shared conflict
    /// matrix instead of evaluating σ — the per-shard half of a
    /// catalogue-published event broadcast. The provided matrix must
    /// already cover the new event (the publisher evaluated σ exactly
    /// once); this instance only appends the event record, grows the
    /// interest table by a zero column and swaps its matrix handle, so
    /// the per-instance cost is O(1) amortised and the O(|V|²) conflict
    /// table stays physically shared across every adopter.
    pub fn apply_add_event_shared(
        &mut self,
        capacity: usize,
        attrs: AttributeVector,
        conflicts: &std::sync::Arc<crate::conflict::ConflictMatrix>,
    ) -> Result<DeltaEffect, CoreError> {
        let id = EventId::new(self.events.len());
        if conflicts.num_events() < self.events.len() + 1 {
            return Err(CoreError::ConflictMatrixTooSmall {
                events: self.events.len() + 1,
                matrix: conflicts.num_events(),
            });
        }
        self.conflicts = std::sync::Arc::clone(conflicts);
        self.interest.push_event();
        self.events.push(Event::new(id, capacity, attrs));
        Ok(DeltaEffect {
            dirty_events: vec![id],
            created_event: Some(id),
            ..DeltaEffect::default()
        })
    }

    fn apply_update_capacity(
        &mut self,
        target: CapacityTarget,
        capacity: usize,
    ) -> Result<DeltaEffect, CoreError> {
        match target {
            CapacityTarget::Event(event) => {
                self.check_event(event)?;
                self.events[event.index()].capacity = capacity;
                Ok(DeltaEffect {
                    dirty_events: vec![event],
                    ..DeltaEffect::default()
                })
            }
            CapacityTarget::User(user) => {
                self.check_user(user)?;
                self.users[user.index()].capacity = capacity;
                Ok(DeltaEffect {
                    dirty_users: vec![user],
                    ..DeltaEffect::default()
                })
            }
        }
    }

    fn apply_update_bids(
        &mut self,
        user: UserId,
        bids: Vec<EventId>,
        interest: &dyn InterestFn,
    ) -> Result<DeltaEffect, CoreError> {
        self.check_user(user)?;
        for &v in &bids {
            if v.index() >= self.events.len() {
                return Err(CoreError::UnknownEventInBid { user, event: v });
            }
        }
        let mut candidate = self.users[user.index()].clone();
        candidate.bids = {
            let mut b = bids;
            b.sort_unstable();
            b.dedup();
            b
        };

        // Validate the interest of newly introduced bids before mutating.
        let old_bids: BTreeSet<EventId> = self.users[user.index()].bids.iter().copied().collect();
        let mut new_values = Vec::new();
        for &v in &candidate.bids {
            if !old_bids.contains(&v) {
                let value = interest.interest(&self.events[v.index()], &candidate);
                if !(0.0..=1.0).contains(&value) || value.is_nan() {
                    return Err(CoreError::InterestOutOfRange {
                        event: v,
                        user,
                        value,
                    });
                }
                new_values.push((v, value));
            }
        }

        let new_bids: BTreeSet<EventId> = candidate.bids.iter().copied().collect();
        // Events in the symmetric difference change candidate sets.
        let mut dirty_events: Vec<EventId> =
            old_bids.symmetric_difference(&new_bids).copied().collect();
        dirty_events.sort_unstable();

        for &v in old_bids.difference(&new_bids) {
            let bidders = &mut self.events[v.index()].bidders;
            if let Ok(pos) = bidders.binary_search(&user) {
                bidders.remove(pos);
            }
        }
        for &v in new_bids.difference(&old_bids) {
            let bidders = &mut self.events[v.index()].bidders;
            if let Err(pos) = bidders.binary_search(&user) {
                bidders.insert(pos, user);
            }
        }
        // Record overwritten cached values: a re-introduced bid replaces
        // whatever interest the table last held for the pair, and an
        // arrangement may still contain that pair until the next repair.
        let mut interest_changes = Vec::new();
        for (v, value) in new_values {
            let old = self.interest.get(v, user);
            if old.to_bits() != value.to_bits() {
                interest_changes.push((v, user, old, value));
            }
            self.interest.set(v, user, value);
        }
        self.users[user.index()] = candidate;

        Ok(DeltaEffect {
            dirty_users: vec![user],
            dirty_events,
            interest_changes,
            ..DeltaEffect::default()
        })
    }

    fn apply_update_interaction(
        &mut self,
        user: UserId,
        score: f64,
    ) -> Result<DeltaEffect, CoreError> {
        self.check_user(user)?;
        Self::check_interaction(user, score)?;
        let old = self.interaction[user.index()];
        self.interaction[user.index()] = score;
        Ok(DeltaEffect {
            dirty_users: vec![user],
            interaction_change: Some((user, old, score)),
            ..DeltaEffect::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{NeverConflict, PairSetConflict};
    use crate::interest::ConstantInterest;

    fn base_instance() -> Instance {
        let mut b = Instance::builder();
        let v0 = b.add_event(2, AttributeVector::empty());
        let v1 = b.add_event(1, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![v0, v1]);
        b.add_user(2, AttributeVector::empty(), vec![v1]);
        b.interaction_scores(vec![0.3, 0.7]);
        b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
    }

    #[test]
    fn add_user_extends_all_tables() {
        let mut inst = base_instance();
        let effect = inst
            .apply_delta(
                &InstanceDelta::AddUser {
                    capacity: 2,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(0)],
                    interaction: 0.9,
                },
                &NeverConflict,
                &ConstantInterest(0.6),
            )
            .unwrap();
        let id = effect.created_user.unwrap();
        assert_eq!(id, UserId::new(2));
        assert_eq!(inst.num_users(), 3);
        assert_eq!(inst.interaction(id), 0.9);
        assert_eq!(inst.interest(EventId::new(0), id), 0.6);
        assert!(inst.event(EventId::new(0)).has_bidder(id));
        assert_eq!(effect.dirty_events, vec![EventId::new(0)]);
        // Untouched pairs keep their cached interest.
        assert_eq!(inst.interest(EventId::new(1), UserId::new(0)), 0.5);
    }

    #[test]
    fn add_user_with_unknown_bid_is_rejected_atomically() {
        let mut inst = base_instance();
        let before = inst.clone();
        let err = inst
            .apply_delta(
                &InstanceDelta::AddUser {
                    capacity: 1,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(9)],
                    interaction: 0.5,
                },
                &NeverConflict,
                &ConstantInterest(0.5),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownEventInBid { .. }));
        assert_eq!(inst.num_users(), before.num_users());
        assert_eq!(inst.interest(EventId::new(1), UserId::new(1)), 0.5);
    }

    #[test]
    fn remove_user_retires_in_place() {
        let mut inst = base_instance();
        let effect = inst
            .apply_delta(
                &InstanceDelta::RemoveUser {
                    user: UserId::new(0),
                },
                &NeverConflict,
                &ConstantInterest(0.5),
            )
            .unwrap();
        assert_eq!(inst.num_users(), 2, "ids stay dense");
        assert_eq!(inst.user(UserId::new(0)).capacity, 0);
        assert!(inst.user(UserId::new(0)).bids.is_empty());
        assert!(!inst.event(EventId::new(0)).has_bidder(UserId::new(0)));
        assert_eq!(inst.interaction(UserId::new(0)), 0.0);
        assert_eq!(effect.dirty_events, vec![EventId::new(0), EventId::new(1)]);
    }

    #[test]
    fn add_event_patches_conflicts_incrementally() {
        let mut b = Instance::builder();
        b.add_event(1, AttributeVector::from_time(0, 60));
        b.add_event(1, AttributeVector::from_time(100, 60));
        let mut inst = b
            .build(
                &crate::conflict::TimeOverlapConflict,
                &ConstantInterest(0.0),
            )
            .unwrap();
        let effect = inst
            .apply_delta(
                &InstanceDelta::AddEvent {
                    capacity: 3,
                    attrs: AttributeVector::from_time(30, 60),
                },
                &crate::conflict::TimeOverlapConflict,
                &ConstantInterest(0.0),
            )
            .unwrap();
        let id = effect.created_event.unwrap();
        assert_eq!(id, EventId::new(2));
        assert!(inst.conflicts().conflicts(EventId::new(0), id));
        assert!(!inst.conflicts().conflicts(EventId::new(1), id));
        assert!(!inst.conflicts().conflicts(EventId::new(0), EventId::new(1)));
        assert_eq!(inst.conflicts().num_events(), 3);
    }

    #[test]
    fn update_bids_tracks_symmetric_difference() {
        let mut inst = base_instance();
        let effect = inst
            .apply_delta(
                &InstanceDelta::UpdateBids {
                    user: UserId::new(0),
                    bids: vec![EventId::new(1)],
                },
                &NeverConflict,
                &ConstantInterest(0.5),
            )
            .unwrap();
        // v0 dropped; v1 kept — only v0 is dirty.
        assert_eq!(effect.dirty_events, vec![EventId::new(0)]);
        assert!(!inst.event(EventId::new(0)).has_bidder(UserId::new(0)));
        assert!(inst.event(EventId::new(1)).has_bidder(UserId::new(0)));
        assert_eq!(inst.user(UserId::new(0)).bids, vec![EventId::new(1)]);
    }

    #[test]
    fn capacity_and_interaction_updates_validate_targets() {
        let mut inst = base_instance();
        assert!(inst
            .apply_delta(
                &InstanceDelta::UpdateCapacity {
                    target: CapacityTarget::Event(EventId::new(7)),
                    capacity: 5,
                },
                &NeverConflict,
                &ConstantInterest(0.5),
            )
            .is_err());
        assert!(inst
            .apply_delta(
                &InstanceDelta::UpdateInteractionScore {
                    user: UserId::new(1),
                    score: 1.5,
                },
                &NeverConflict,
                &ConstantInterest(0.5),
            )
            .is_err());
        inst.apply_delta(
            &InstanceDelta::UpdateCapacity {
                target: CapacityTarget::User(UserId::new(1)),
                capacity: 5,
            },
            &NeverConflict,
            &ConstantInterest(0.5),
        )
        .unwrap();
        assert_eq!(inst.user(UserId::new(1)).capacity, 5);
    }

    #[test]
    fn deltas_serialize_roundtrip() {
        let deltas = vec![
            InstanceDelta::AddUser {
                capacity: 2,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(1)],
                interaction: 0.25,
            },
            InstanceDelta::RemoveUser {
                user: UserId::new(3),
            },
            InstanceDelta::AddEvent {
                capacity: 10,
                attrs: AttributeVector::from_time(5, 30),
            },
            InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(EventId::new(2)),
                capacity: 4,
            },
            InstanceDelta::UpdateBids {
                user: UserId::new(0),
                bids: vec![],
            },
            InstanceDelta::UpdateInteractionScore {
                user: UserId::new(1),
                score: 0.5,
            },
        ];
        let json = serde_json::to_string(&deltas).unwrap();
        let back: Vec<InstanceDelta> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, deltas);
    }

    #[test]
    fn dirty_set_absorbs_and_clears() {
        let mut dirty = DirtySet::new();
        assert!(dirty.is_empty());
        dirty.absorb(&DeltaEffect {
            dirty_users: vec![UserId::new(1), UserId::new(1)],
            dirty_events: vec![EventId::new(0)],
            ..DeltaEffect::default()
        });
        dirty.mark_user(UserId::new(2));
        dirty.mark_event(EventId::new(0));
        assert_eq!(dirty.len(), 3);
        dirty.clear();
        assert!(dirty.is_empty());
    }

    #[test]
    fn shared_add_event_adopts_the_published_matrix() {
        use std::sync::Arc;
        let mut inst = base_instance();
        // Publisher-side: grow a copy of the matrix by one event row.
        let mut published = (*inst.conflicts_handle().clone()).clone();
        published.push_row(&[EventId::new(0)]);
        let published = Arc::new(published);
        let effect = inst
            .apply_add_event_shared(3, AttributeVector::empty(), &published)
            .unwrap();
        let id = effect.created_event.unwrap();
        assert_eq!(id, EventId::new(2));
        assert_eq!(inst.num_events(), 3);
        assert_eq!(inst.event(id).capacity, 3);
        assert!(inst.conflicts().conflicts(EventId::new(0), id));
        assert!(
            Arc::ptr_eq(inst.conflicts_handle(), &published),
            "the instance must share the published table, not copy it"
        );
        // A matrix that does not cover the new event is rejected.
        let stale = Arc::new(crate::conflict::ConflictMatrix::none(1));
        let err = inst
            .apply_add_event_shared(1, AttributeVector::empty(), &stale)
            .unwrap_err();
        assert!(matches!(err, CoreError::ConflictMatrixTooSmall { .. }));
        assert_eq!(inst.num_events(), 3, "rejection leaves the instance intact");
    }

    #[test]
    fn cow_add_event_forks_only_when_shared() {
        use std::sync::Arc;
        let mut inst = base_instance();
        // Sole owner: growth happens in place (same allocation is fine
        // either way; what matters is the shared case below).
        inst.apply_delta(
            &InstanceDelta::AddEvent {
                capacity: 1,
                attrs: AttributeVector::empty(),
            },
            &NeverConflict,
            &ConstantInterest(0.5),
        )
        .unwrap();
        // Shared: a clone holds the handle; mutating must fork, leaving
        // the clone's view untouched.
        let snapshot = inst.clone();
        assert!(Arc::ptr_eq(
            inst.conflicts_handle(),
            snapshot.conflicts_handle()
        ));
        inst.apply_delta(
            &InstanceDelta::AddEvent {
                capacity: 1,
                attrs: AttributeVector::empty(),
            },
            &NeverConflict,
            &ConstantInterest(0.5),
        )
        .unwrap();
        assert!(!Arc::ptr_eq(
            inst.conflicts_handle(),
            snapshot.conflicts_handle()
        ));
        assert_eq!(snapshot.conflicts().num_events(), 3);
        assert_eq!(inst.conflicts().num_events(), 4);
    }

    #[test]
    fn conflicting_event_growth_keeps_existing_pairs() {
        let mut pairs = PairSetConflict::new();
        pairs.add(EventId::new(0), EventId::new(1));
        let mut b = Instance::builder();
        b.add_event(1, AttributeVector::empty());
        b.add_event(1, AttributeVector::empty());
        let mut inst = b.build(&pairs, &ConstantInterest(0.0)).unwrap();
        inst.apply_delta(
            &InstanceDelta::AddEvent {
                capacity: 1,
                attrs: AttributeVector::empty(),
            },
            &NeverConflict,
            &ConstantInterest(0.0),
        )
        .unwrap();
        assert!(inst.conflicts().conflicts(EventId::new(0), EventId::new(1)));
        assert_eq!(inst.conflicts().num_conflicting_pairs(), 1);
    }
}
