//! Workload contention statistics.
//!
//! The shape of the paper's results is driven by *contention*: how many
//! bidders compete for each seat, and how unevenly the demand is spread
//! over the events. These statistics characterise a workload before any
//! algorithm runs — EXPERIMENTS.md reports them alongside each table so the
//! reader can judge how much room the LP has to arbitrate (Table II's
//! near-tie between LP-packing and GG, for instance, is explained by its
//! near-zero contention).

use crate::ids::{EventId, UserId};
use crate::instance::Instance;
use serde::{Deserialize, Serialize};

/// Demand/supply statistics of one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionStats {
    /// Number of events with at least one bidder.
    pub contested_events: usize,
    /// Number of events with more bidders than capacity.
    pub oversubscribed_events: usize,
    /// Mean of `|N_v| / c_v` over events with positive capacity and at least
    /// one bidder (1.0 means demand exactly matches supply).
    pub mean_contention: f64,
    /// Maximum `|N_v| / c_v` over the same events.
    pub max_contention: f64,
    /// Total demand `Σ_u c_u` (an upper bound on the pairs any arrangement
    /// can contain from the user side).
    pub total_user_capacity: usize,
    /// Total supply `Σ_v c_v`.
    pub total_event_capacity: usize,
    /// Gini coefficient of the per-event bidder counts (0 = perfectly even
    /// demand, → 1 = all demand on one event).
    pub bid_gini: f64,
    /// Mean fraction of a user's bid set that is pairwise conflict-free,
    /// i.e. how much of the bid set a user could attend if capacities were
    /// unlimited. Lower values mean conflicts bind harder.
    pub mean_compatible_bid_fraction: f64,
}

impl ContentionStats {
    /// Computes the contention statistics of an instance.
    pub fn of(instance: &Instance) -> Self {
        let mut contested_events = 0usize;
        let mut oversubscribed_events = 0usize;
        let mut contention_sum = 0.0;
        let mut contention_count = 0usize;
        let mut max_contention: f64 = 0.0;
        let mut bidder_counts: Vec<f64> = Vec::with_capacity(instance.num_events());

        for event in instance.events() {
            let bidders = event.num_bidders();
            bidder_counts.push(bidders as f64);
            if bidders == 0 {
                continue;
            }
            contested_events += 1;
            if event.capacity > 0 {
                let ratio = bidders as f64 / event.capacity as f64;
                // lint:allow(no-raw-float-accum): dataset-profiling mean in fixed event order; diagnostics only, never served or replayed state
                contention_sum += ratio;
                contention_count += 1;
                max_contention = max_contention.max(ratio);
                if bidders > event.capacity {
                    oversubscribed_events += 1;
                }
            } else {
                oversubscribed_events += 1;
            }
        }

        let mut compatible_sum = 0.0;
        let mut compatible_count = 0usize;
        for user in instance.users() {
            if user.bids.is_empty() {
                continue;
            }
            let compatible = largest_compatible_subset(instance, user.id);
            // lint:allow(no-raw-float-accum): dataset-profiling mean in fixed user order; diagnostics only, never served or replayed state
            compatible_sum += compatible as f64 / user.bids.len() as f64;
            compatible_count += 1;
        }

        ContentionStats {
            contested_events,
            oversubscribed_events,
            mean_contention: if contention_count > 0 {
                contention_sum / contention_count as f64
            } else {
                0.0
            },
            max_contention,
            total_user_capacity: instance.users().iter().map(|u| u.capacity).sum(),
            total_event_capacity: instance.events().iter().map(|e| e.capacity).sum(),
            bid_gini: gini(&bidder_counts),
            mean_compatible_bid_fraction: if compatible_count > 0 {
                compatible_sum / compatible_count as f64
            } else {
                1.0
            },
        }
    }
}

/// Size of a large conflict-free subset of the user's bids, found greedily
/// (ordering by how many other bids each event conflicts with, fewest
/// first). Exact maximum independent set is unnecessary here — the statistic
/// is descriptive.
fn largest_compatible_subset(instance: &Instance, user: UserId) -> usize {
    let bids = &instance.user(user).bids;
    let conflicts_within = |v: EventId| {
        bids.iter()
            .filter(|&&w| w != v && instance.conflicts().conflicts(v, w))
            .count()
    };
    let mut ordered: Vec<EventId> = bids.clone();
    ordered.sort_by_key(|&v| conflicts_within(v));
    let mut chosen: Vec<EventId> = Vec::new();
    for v in ordered {
        if chosen
            .iter()
            .all(|&w| !instance.conflicts().conflicts(v, w))
        {
            chosen.push(v);
        }
    }
    chosen.len()
}

/// Gini coefficient of a non-negative sample (0 for empty or all-zero input).
fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    // lint:allow(no-raw-float-accum): Gini coefficient over a profiling sample; reporting only, not served state
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // G = (2·Σ i·x_i) / (n·Σ x_i) − (n + 1)/n with 1-based ranks i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x)
        // lint:allow(no-raw-float-accum): rank-weighted Gini numerator over the sorted profiling sample; reporting only, not served state
        .sum();
    (2.0 * weighted / (n as f64 * total) - (n as f64 + 1.0) / n as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeVector;
    use crate::conflict::{NeverConflict, PairSetConflict};
    use crate::interest::ConstantInterest;

    fn build(
        event_caps: &[usize],
        user_bids: &[Vec<usize>],
        conflicts: &[(usize, usize)],
    ) -> Instance {
        let mut b = Instance::builder();
        let events: Vec<EventId> = event_caps
            .iter()
            .map(|&c| b.add_event(c, AttributeVector::empty()))
            .collect();
        for bids in user_bids {
            let ids = bids.iter().map(|&i| events[i]).collect();
            b.add_user(2, AttributeVector::empty(), ids);
        }
        b.interaction_scores(vec![0.5; user_bids.len()]);
        let mut sigma = PairSetConflict::new();
        for &(x, y) in conflicts {
            sigma.add(events[x], events[y]);
        }
        b.build(&sigma, &ConstantInterest(0.5)).unwrap()
    }

    #[test]
    fn uncontested_instance_has_low_contention() {
        let instance = build(&[10, 10], &[vec![0], vec![1]], &[]);
        let stats = ContentionStats::of(&instance);
        assert_eq!(stats.contested_events, 2);
        assert_eq!(stats.oversubscribed_events, 0);
        assert!(stats.mean_contention <= 0.1 + 1e-12);
        assert_eq!(stats.total_event_capacity, 20);
        assert_eq!(stats.total_user_capacity, 4);
        assert!((stats.mean_compatible_bid_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscription_is_counted() {
        // One event of capacity 1 with three bidders.
        let instance = build(&[1], &[vec![0], vec![0], vec![0]], &[]);
        let stats = ContentionStats::of(&instance);
        assert_eq!(stats.contested_events, 1);
        assert_eq!(stats.oversubscribed_events, 1);
        assert!((stats.mean_contention - 3.0).abs() < 1e-12);
        assert!((stats.max_contention - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gini_distinguishes_even_and_skewed_demand() {
        let even = build(&[5, 5], &[vec![0], vec![1], vec![0], vec![1]], &[]);
        let skewed = build(&[5, 5], &[vec![0], vec![0], vec![0], vec![0]], &[]);
        let g_even = ContentionStats::of(&even).bid_gini;
        let g_skewed = ContentionStats::of(&skewed).bid_gini;
        assert!(
            g_even < 1e-9,
            "even demand should have Gini ≈ 0, got {g_even}"
        );
        assert!(
            g_skewed > 0.4,
            "skewed demand should have high Gini, got {g_skewed}"
        );
    }

    #[test]
    fn conflicting_bids_lower_the_compatible_fraction() {
        // A user bids for three mutually conflicting events: only one is
        // attendable, so the compatible fraction is 1/3.
        let instance = build(&[5, 5, 5], &[vec![0, 1, 2]], &[(0, 1), (0, 2), (1, 2)]);
        let stats = ContentionStats::of(&instance);
        assert!((stats.mean_compatible_bid_fraction - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn events_without_bidders_are_excluded_from_contention() {
        let instance = build(&[3, 3], &[vec![0]], &[]);
        let stats = ContentionStats::of(&instance);
        assert_eq!(stats.contested_events, 1);
        assert!(stats.max_contention < 1.0);
    }

    #[test]
    fn empty_instance_yields_neutral_statistics() {
        let mut b = Instance::builder();
        b.add_event(2, AttributeVector::empty());
        b.interaction_scores(vec![]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.1)).unwrap();
        let stats = ContentionStats::of(&instance);
        assert_eq!(stats.contested_events, 0);
        assert_eq!(stats.mean_contention, 0.0);
        assert_eq!(stats.bid_gini, 0.0);
        assert_eq!(stats.mean_compatible_bid_fraction, 1.0);
    }

    #[test]
    fn gini_helper_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        assert!(gini(&[1.0, 1.0, 1.0]) < 1e-12);
        // One vertex holds everything: Gini → (n−1)/n = 0.75 for n = 4.
        assert!((gini(&[0.0, 0.0, 0.0, 8.0]) - 0.75).abs() < 1e-9);
    }
}
