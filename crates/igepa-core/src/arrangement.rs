//! Event-participant arrangements, feasibility checking and utility
//! (Definitions 4 and 7 of the paper).

use crate::ids::{EventId, UserId};
use crate::instance::Instance;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An event-participant arrangement `M ⊆ V × U`.
///
/// Internally the arrangement is stored per user (the set of events assigned
/// to each user) together with the per-event load, so that both directions of
/// the capacity constraint can be checked in O(1) per pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrangement {
    num_events: usize,
    /// Events assigned to each user, kept sorted.
    per_user: Vec<Vec<EventId>>,
    /// Number of users assigned to each event.
    event_load: Vec<usize>,
}

impl Arrangement {
    /// Creates an empty arrangement for an instance with the given sizes.
    pub fn new(num_events: usize, num_users: usize) -> Self {
        Arrangement {
            num_events,
            per_user: vec![Vec::new(); num_users],
            event_load: vec![0; num_events],
        }
    }

    /// Creates an empty arrangement sized for `instance`.
    pub fn empty_for(instance: &Instance) -> Self {
        Self::new(instance.num_events(), instance.num_users())
    }

    /// Number of events the arrangement was sized for.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Number of users the arrangement was sized for.
    pub fn num_users(&self) -> usize {
        self.per_user.len()
    }

    /// Adds the pair `(event, user)` to the arrangement. Returns `true` if
    /// the pair was newly inserted, `false` if it was already present.
    ///
    /// No feasibility checking happens here; use [`Arrangement::violations`]
    /// or the algorithms' own guards for that.
    pub fn assign(&mut self, event: EventId, user: UserId) -> bool {
        let events = &mut self.per_user[user.index()];
        match events.binary_search(&event) {
            Ok(_) => false,
            Err(pos) => {
                events.insert(pos, event);
                self.event_load[event.index()] += 1;
                true
            }
        }
    }

    /// Removes the pair `(event, user)`. Returns `true` if it was present.
    pub fn unassign(&mut self, event: EventId, user: UserId) -> bool {
        let events = &mut self.per_user[user.index()];
        match events.binary_search(&event) {
            Ok(pos) => {
                events.remove(pos);
                self.event_load[event.index()] -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Whether the pair `(event, user)` is part of the arrangement.
    pub fn contains(&self, event: EventId, user: UserId) -> bool {
        self.per_user[user.index()].binary_search(&event).is_ok()
    }

    /// Number of pairs `|M|`.
    pub fn len(&self) -> usize {
        self.per_user.iter().map(Vec::len).sum()
    }

    /// Whether the arrangement is empty.
    pub fn is_empty(&self) -> bool {
        self.per_user.iter().all(Vec::is_empty)
    }

    /// Events assigned to `user`, sorted by id.
    pub fn events_of(&self, user: UserId) -> &[EventId] {
        &self.per_user[user.index()]
    }

    /// Number of users assigned to `event`.
    pub fn load_of(&self, event: EventId) -> usize {
        self.event_load[event.index()]
    }

    /// Iterates over all `(event, user)` pairs in the arrangement.
    pub fn pairs(&self) -> impl Iterator<Item = (EventId, UserId)> + '_ {
        self.per_user
            .iter()
            .enumerate()
            .flat_map(|(u, events)| events.iter().map(move |&v| (v, UserId::new(u))))
    }

    /// Builds an arrangement from a list of pairs (duplicates are collapsed).
    pub fn from_pairs(
        num_events: usize,
        num_users: usize,
        pairs: impl IntoIterator<Item = (EventId, UserId)>,
    ) -> Self {
        let mut m = Self::new(num_events, num_users);
        for (v, u) in pairs {
            m.assign(v, u);
        }
        m
    }

    /// Grows the arrangement to cover at least the given sizes (existing
    /// assignments are untouched). Shrinking is not supported; smaller
    /// values are ignored.
    pub fn grow(&mut self, num_events: usize, num_users: usize) {
        if num_events > self.num_events {
            self.event_load.resize(num_events, 0);
            self.num_events = num_events;
        }
        if num_users > self.per_user.len() {
            self.per_user.resize(num_users, Vec::new());
        }
    }

    /// Removes every assignment of `user` and returns the events they were
    /// removed from.
    pub fn remove_user_assignments(&mut self, user: UserId) -> Vec<EventId> {
        let events = std::mem::take(&mut self.per_user[user.index()]);
        for &v in &events {
            self.event_load[v.index()] -= 1;
        }
        events
    }

    /// Users currently assigned to `event`, in increasing id order.
    ///
    /// This scans all users (the arrangement is stored per user); it is a
    /// repair-path helper, not an inner-loop primitive.
    pub fn users_of(&self, event: EventId) -> Vec<UserId> {
        self.per_user
            .iter()
            .enumerate()
            .filter(|(_, events)| events.binary_search(&event).is_ok())
            .map(|(u, _)| UserId::new(u))
            .collect()
    }

    /// Checks the arrangement against the bid, capacity and conflict
    /// constraints of Definition 4 and returns every violation found.
    pub fn violations(&self, instance: &Instance) -> Vec<Violation> {
        let mut out = Vec::new();

        // Bid constraint and per-user capacity / conflicts.
        for (u_idx, events) in self.per_user.iter().enumerate() {
            let user_id = UserId::new(u_idx);
            let user = instance.user(user_id);
            for &v in events {
                if !user.has_bid(v) {
                    out.push(Violation::Bid {
                        event: v,
                        user: user_id,
                    });
                }
            }
            if events.len() > user.capacity {
                out.push(Violation::UserCapacity {
                    user: user_id,
                    assigned: events.len(),
                    capacity: user.capacity,
                });
            }
            for (i, &a) in events.iter().enumerate() {
                for &b in &events[i + 1..] {
                    if instance.conflicts().conflicts(a, b) {
                        out.push(Violation::Conflict {
                            user: user_id,
                            first: a,
                            second: b,
                        });
                    }
                }
            }
        }

        // Per-event capacity.
        for (v_idx, &load) in self.event_load.iter().enumerate() {
            let event_id = EventId::new(v_idx);
            let cap = instance.event(event_id).capacity;
            if load > cap {
                out.push(Violation::EventCapacity {
                    event: event_id,
                    assigned: load,
                    capacity: cap,
                });
            }
        }

        out
    }

    /// Whether the arrangement satisfies all constraints of Definition 4.
    pub fn is_feasible(&self, instance: &Instance) -> bool {
        self.violations(instance).is_empty()
    }

    /// Utility of the arrangement per Definition 7, broken down into the
    /// interest and interaction components.
    pub fn utility(&self, instance: &Instance) -> UtilityBreakdown {
        let beta = instance.beta();
        let mut interest = 0.0;
        let mut interaction = 0.0;
        for (v, u) in self.pairs() {
            interest += instance.interest(v, u);
            interaction += instance.interaction(u);
        }
        UtilityBreakdown {
            total: beta * interest + (1.0 - beta) * interaction,
            interest_sum: interest,
            interaction_sum: interaction,
            beta,
        }
    }

    /// Shortcut for `self.utility(instance).total`.
    pub fn utility_value(&self, instance: &Instance) -> f64 {
        self.utility(instance).total
    }
}

/// Utility of an arrangement with its two components (Definition 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityBreakdown {
    /// `β · Σ SI + (1 − β) · Σ D`.
    pub total: f64,
    /// `Σ_{(v,u) ∈ M} SI(l_v, l_u)` (unweighted).
    pub interest_sum: f64,
    /// `Σ_{(v,u) ∈ M} D(G, u)` (unweighted).
    pub interaction_sum: f64,
    /// The β the total was computed with.
    pub beta: f64,
}

/// A violation of one of the feasibility constraints of Definition 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// A user is assigned an event they did not bid for.
    Bid {
        /// The assigned event.
        event: EventId,
        /// The user who never bid for it.
        user: UserId,
    },
    /// An event hosts more users than its capacity.
    EventCapacity {
        /// The overloaded event.
        event: EventId,
        /// Number of users assigned.
        assigned: usize,
        /// The event's capacity `c_v`.
        capacity: usize,
    },
    /// A user attends more events than their capacity.
    UserCapacity {
        /// The overloaded user.
        user: UserId,
        /// Number of events assigned.
        assigned: usize,
        /// The user's capacity `c_u`.
        capacity: usize,
    },
    /// A user is assigned two conflicting events.
    Conflict {
        /// The user holding both events.
        user: UserId,
        /// First conflicting event.
        first: EventId,
        /// Second conflicting event.
        second: EventId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Bid { event, user } => {
                write!(f, "{user} is assigned {event} without bidding for it")
            }
            Violation::EventCapacity {
                event,
                assigned,
                capacity,
            } => {
                write!(
                    f,
                    "{event} hosts {assigned} users but has capacity {capacity}"
                )
            }
            Violation::UserCapacity {
                user,
                assigned,
                capacity,
            } => {
                write!(
                    f,
                    "{user} attends {assigned} events but has capacity {capacity}"
                )
            }
            Violation::Conflict {
                user,
                first,
                second,
            } => {
                write!(
                    f,
                    "{user} is assigned conflicting events {first} and {second}"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeVector;
    use crate::conflict::PairSetConflict;
    use crate::instance::Instance;
    use crate::interest::ConstantInterest;

    /// 3 events (capacities 1, 2, 1; events 0 and 1 conflict), 2 users.
    fn sample_instance() -> Instance {
        let mut b = Instance::builder();
        let v0 = b.add_event(1, AttributeVector::empty());
        let v1 = b.add_event(2, AttributeVector::empty());
        let v2 = b.add_event(1, AttributeVector::empty());
        b.add_user(2, AttributeVector::empty(), vec![v0, v1, v2]);
        b.add_user(1, AttributeVector::empty(), vec![v0, v1]);
        b.interaction_scores(vec![0.4, 0.8]);
        b.beta(0.5);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        b.build(&sigma, &ConstantInterest(0.6)).unwrap()
    }

    #[test]
    fn assign_and_unassign_maintain_loads() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        assert!(m.assign(EventId::new(1), UserId::new(0)));
        assert!(!m.assign(EventId::new(1), UserId::new(0)));
        assert_eq!(m.load_of(EventId::new(1)), 1);
        assert_eq!(m.len(), 1);
        assert!(m.unassign(EventId::new(1), UserId::new(0)));
        assert!(!m.unassign(EventId::new(1), UserId::new(0)));
        assert!(m.is_empty());
        assert_eq!(m.load_of(EventId::new(1)), 0);
    }

    #[test]
    fn feasible_arrangement_has_no_violations() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(1), UserId::new(0));
        m.assign(EventId::new(2), UserId::new(0));
        m.assign(EventId::new(0), UserId::new(1));
        assert!(m.is_feasible(&inst));
    }

    #[test]
    fn bid_violation_detected() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(2), UserId::new(1)); // user 1 never bid for v2
        let v = m.violations(&inst);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::Bid { .. }));
    }

    #[test]
    fn event_capacity_violation_detected() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(0), UserId::new(0));
        m.assign(EventId::new(0), UserId::new(1)); // capacity of v0 is 1
        let v = m.violations(&inst);
        assert!(v.iter().any(|x| matches!(x, Violation::EventCapacity { event, assigned: 2, capacity: 1 } if *event == EventId::new(0))));
    }

    #[test]
    fn user_capacity_violation_detected() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        // user 1 has capacity 1 but gets two events.
        m.assign(EventId::new(0), UserId::new(1));
        m.assign(EventId::new(1), UserId::new(1));
        let v = m.violations(&inst);
        assert!(v.iter().any(|x| matches!(x, Violation::UserCapacity { user, assigned: 2, capacity: 1 } if *user == UserId::new(1))));
    }

    #[test]
    fn conflict_violation_detected() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(0), UserId::new(0));
        m.assign(EventId::new(1), UserId::new(0)); // v0 and v1 conflict
        let v = m.violations(&inst);
        assert!(v.iter().any(|x| matches!(x, Violation::Conflict { .. })));
    }

    #[test]
    fn utility_matches_definition_seven() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(1), UserId::new(0));
        m.assign(EventId::new(1), UserId::new(1));
        let u = m.utility(&inst);
        // interests: 0.6 + 0.6; interactions: 0.4 + 0.8
        assert!((u.interest_sum - 1.2).abs() < 1e-12);
        assert!((u.interaction_sum - 1.2).abs() < 1e-12);
        assert!((u.total - (0.5 * 1.2 + 0.5 * 1.2)).abs() < 1e-12);
        assert_eq!(u.beta, 0.5);
    }

    #[test]
    fn from_pairs_collapses_duplicates() {
        let inst = sample_instance();
        let m = Arrangement::from_pairs(
            inst.num_events(),
            inst.num_users(),
            vec![
                (EventId::new(1), UserId::new(0)),
                (EventId::new(1), UserId::new(0)),
                (EventId::new(0), UserId::new(1)),
            ],
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m.load_of(EventId::new(1)), 1);
    }

    #[test]
    fn pairs_roundtrip() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(2), UserId::new(0));
        m.assign(EventId::new(0), UserId::new(1));
        let pairs: Vec<_> = m.pairs().collect();
        let rebuilt = Arrangement::from_pairs(inst.num_events(), inst.num_users(), pairs);
        assert_eq!(m, rebuilt);
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::EventCapacity {
            event: EventId::new(3),
            assigned: 5,
            capacity: 2,
        };
        let s = v.to_string();
        assert!(s.contains("v3"));
        assert!(s.contains('5'));
        assert!(s.contains('2'));
    }
}
