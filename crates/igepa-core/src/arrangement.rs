//! Event-participant arrangements, feasibility checking and utility
//! (Definitions 4 and 7 of the paper).
//!
//! ## Indexing and complexity
//!
//! The arrangement is stored **twice**, as mirrored sorted adjacency
//! lists — per user (the events assigned to each user) and per event (the
//! users attending each event) — plus a per-event load vector and a
//! cached pair count. Every operation the serving hot path needs is
//! therefore index-backed; `d` below is the degree of the touched entity:
//!
//! | operation                          | complexity        |
//! |------------------------------------|-------------------|
//! | [`Arrangement::assign`] / [`Arrangement::unassign`] | O(d) insert/remove in two sorted lists |
//! | [`Arrangement::contains`]          | O(log d)          |
//! | [`Arrangement::len`] / [`Arrangement::is_empty`]    | O(1) (cached count) |
//! | [`Arrangement::events_of`]         | O(1) slice borrow |
//! | [`Arrangement::users_of`]          | O(1) slice borrow (was an O(\|U\|) scan) |
//! | [`Arrangement::load_of`]           | O(1)              |
//! | [`Arrangement::remove_user_assignments`] | O(Σ d) over the removed pairs |
//! | [`Arrangement::utility`]           | O(\|M\|) exact fold |
//!
//! ## Utility determinism
//!
//! [`Arrangement::utility`] sums the Definition-7 components with
//! [`ExactSum`], so the reported breakdown is the **correctly rounded
//! exact sum** of the pair contributions — independent of pair order and
//! of whether the sum was produced by this from-scratch fold or by the
//! incremental [`UtilityTracker`] the serving engine maintains. The two
//! are bit-for-bit interchangeable by construction; the engine
//! `debug_assert`s that equivalence on its repair paths.

use crate::exact::ExactSum;
use crate::ids::{EventId, UserId};
use crate::instance::Instance;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An event-participant arrangement `M ⊆ V × U`.
///
/// Internally the arrangement is stored per user **and** per event (two
/// mirrored sorted adjacency lists) together with the per-event load and
/// a cached pair count, so membership, both capacity directions, attendee
/// listing and pair counting are all index lookups — see the module docs
/// for the complexity table.
#[derive(Debug, PartialEq, Eq)]
pub struct Arrangement {
    num_events: usize,
    /// Events assigned to each user, kept sorted.
    per_user: Vec<Vec<EventId>>,
    /// Number of users assigned to each event.
    event_load: Vec<usize>,
    /// Reverse attendee index: users assigned to each event, kept sorted
    /// in lockstep with `per_user` (`per_event[v]` and `event_load[v]`
    /// always agree).
    per_event: Vec<Vec<UserId>>,
    /// Cached `|M|`, maintained on every mutation.
    num_pairs: usize,
}

impl Arrangement {
    /// Creates an empty arrangement for an instance with the given sizes.
    pub fn new(num_events: usize, num_users: usize) -> Self {
        Arrangement {
            num_events,
            per_user: vec![Vec::new(); num_users],
            event_load: vec![0; num_events],
            per_event: vec![Vec::new(); num_events],
            num_pairs: 0,
        }
    }

    /// Creates an empty arrangement sized for `instance`.
    pub fn empty_for(instance: &Instance) -> Self {
        Self::new(instance.num_events(), instance.num_users())
    }

    /// Number of events the arrangement was sized for.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Number of users the arrangement was sized for.
    pub fn num_users(&self) -> usize {
        self.per_user.len()
    }

    /// Adds the pair `(event, user)` to the arrangement. Returns `true` if
    /// the pair was newly inserted, `false` if it was already present.
    ///
    /// No feasibility checking happens here; use [`Arrangement::violations`]
    /// or the algorithms' own guards for that.
    pub fn assign(&mut self, event: EventId, user: UserId) -> bool {
        let events = &mut self.per_user[user.index()];
        match events.binary_search(&event) {
            Ok(_) => false,
            Err(pos) => {
                events.insert(pos, event);
                let users = &mut self.per_event[event.index()];
                let upos = users.binary_search(&user).expect_err("indices in lockstep");
                users.insert(upos, user);
                self.event_load[event.index()] += 1;
                self.num_pairs += 1;
                true
            }
        }
    }

    /// Removes the pair `(event, user)`. Returns `true` if it was present.
    pub fn unassign(&mut self, event: EventId, user: UserId) -> bool {
        let events = &mut self.per_user[user.index()];
        match events.binary_search(&event) {
            Ok(pos) => {
                events.remove(pos);
                let users = &mut self.per_event[event.index()];
                let upos = users.binary_search(&user).expect("indices in lockstep");
                users.remove(upos);
                self.event_load[event.index()] -= 1;
                self.num_pairs -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Whether the pair `(event, user)` is part of the arrangement.
    pub fn contains(&self, event: EventId, user: UserId) -> bool {
        self.per_user[user.index()].binary_search(&event).is_ok()
    }

    /// Number of pairs `|M|` — O(1), from the cached count.
    pub fn len(&self) -> usize {
        self.num_pairs
    }

    /// Whether the arrangement is empty — O(1).
    pub fn is_empty(&self) -> bool {
        self.num_pairs == 0
    }

    /// Events assigned to `user`, sorted by id.
    pub fn events_of(&self, user: UserId) -> &[EventId] {
        &self.per_user[user.index()]
    }

    /// Number of users assigned to `event`.
    pub fn load_of(&self, event: EventId) -> usize {
        self.event_load[event.index()]
    }

    /// Iterates over all `(event, user)` pairs in the arrangement.
    pub fn pairs(&self) -> impl Iterator<Item = (EventId, UserId)> + '_ {
        self.per_user
            .iter()
            .enumerate()
            .flat_map(|(u, events)| events.iter().map(move |&v| (v, UserId::new(u))))
    }

    /// Builds an arrangement from a list of pairs (duplicates are collapsed).
    pub fn from_pairs(
        num_events: usize,
        num_users: usize,
        pairs: impl IntoIterator<Item = (EventId, UserId)>,
    ) -> Self {
        let mut m = Self::new(num_events, num_users);
        for (v, u) in pairs {
            m.assign(v, u);
        }
        m
    }

    /// Grows the arrangement to cover at least the given sizes (existing
    /// assignments are untouched). Shrinking is not supported; smaller
    /// values are ignored.
    pub fn grow(&mut self, num_events: usize, num_users: usize) {
        if num_events > self.num_events {
            self.event_load.resize(num_events, 0);
            self.per_event.resize(num_events, Vec::new());
            self.num_events = num_events;
        }
        if num_users > self.per_user.len() {
            self.per_user.resize(num_users, Vec::new());
        }
    }

    /// Removes every assignment of `user` and returns the events they were
    /// removed from.
    pub fn remove_user_assignments(&mut self, user: UserId) -> Vec<EventId> {
        let events = std::mem::take(&mut self.per_user[user.index()]);
        for &v in &events {
            let users = &mut self.per_event[v.index()];
            let pos = users.binary_search(&user).expect("indices in lockstep");
            users.remove(pos);
            self.event_load[v.index()] -= 1;
        }
        self.num_pairs -= events.len();
        events
    }

    /// Users currently assigned to `event`, in increasing id order — an
    /// O(1) borrow of the reverse attendee index (this used to be an
    /// O(|U|) scan over all users).
    pub fn users_of(&self, event: EventId) -> &[UserId] {
        &self.per_event[event.index()]
    }

    /// Checks the arrangement against the bid, capacity and conflict
    /// constraints of Definition 4 and returns every violation found.
    pub fn violations(&self, instance: &Instance) -> Vec<Violation> {
        let mut out = Vec::new();

        // Bid constraint and per-user capacity / conflicts.
        for (u_idx, events) in self.per_user.iter().enumerate() {
            let user_id = UserId::new(u_idx);
            let user = instance.user(user_id);
            for &v in events {
                if !user.has_bid(v) {
                    out.push(Violation::Bid {
                        event: v,
                        user: user_id,
                    });
                }
            }
            if events.len() > user.capacity {
                out.push(Violation::UserCapacity {
                    user: user_id,
                    assigned: events.len(),
                    capacity: user.capacity,
                });
            }
            for (i, &a) in events.iter().enumerate() {
                for &b in &events[i + 1..] {
                    if instance.conflicts().conflicts(a, b) {
                        out.push(Violation::Conflict {
                            user: user_id,
                            first: a,
                            second: b,
                        });
                    }
                }
            }
        }

        // Per-event capacity.
        for (v_idx, &load) in self.event_load.iter().enumerate() {
            let event_id = EventId::new(v_idx);
            let cap = instance.event(event_id).capacity;
            if load > cap {
                out.push(Violation::EventCapacity {
                    event: event_id,
                    assigned: load,
                    capacity: cap,
                });
            }
        }

        out
    }

    /// Whether the arrangement satisfies all constraints of Definition 4.
    pub fn is_feasible(&self, instance: &Instance) -> bool {
        self.violations(instance).is_empty()
    }

    /// Utility of the arrangement per Definition 7, broken down into the
    /// interest and interaction components.
    ///
    /// The component sums are computed with [`ExactSum`], so the result
    /// is the correctly rounded exact sum of the pair contributions —
    /// bit-identical to the incrementally maintained [`UtilityTracker`]
    /// over the same pairs, regardless of mutation history (see the
    /// module docs).
    pub fn utility(&self, instance: &Instance) -> UtilityBreakdown {
        UtilityTracker::rebuild(instance, self).breakdown(instance.beta())
    }

    /// Shortcut for `self.utility(instance).total`.
    pub fn utility_value(&self, instance: &Instance) -> f64 {
        self.utility(instance).total
    }
}

/// Hand-written so that [`Clone::clone_from`] reuses every existing
/// allocation (outer and inner vectors alike): the serving transport
/// snapshots a shard's arrangement after each apply, and with
/// double-buffered snapshots the steady-state cost is pure memcpy —
/// no allocator traffic.
impl Clone for Arrangement {
    fn clone(&self) -> Self {
        Arrangement {
            num_events: self.num_events,
            per_user: self.per_user.clone(),
            event_load: self.event_load.clone(),
            per_event: self.per_event.clone(),
            num_pairs: self.num_pairs,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.num_events = source.num_events;
        self.num_pairs = source.num_pairs;
        self.event_load.clone_from(&source.event_load);
        clone_nested_from(&mut self.per_user, &source.per_user);
        clone_nested_from(&mut self.per_event, &source.per_event);
    }
}

/// `Vec<Vec<T>>::clone_from` that reuses the inner vectors' buffers
/// (plain `clone_from` on the outer vector would drop surplus inner
/// vectors and allocate fresh ones for growth).
fn clone_nested_from<T: Copy>(dst: &mut Vec<Vec<T>>, src: &[Vec<T>]) {
    dst.truncate(src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        d.clear();
        d.extend_from_slice(s);
    }
    for s in &src[dst.len()..] {
        dst.push(s.clone());
    }
}

/// Serialization keeps the pre-index wire format (the derived fields are
/// redundant): only `num_events`, `per_user` and `event_load` are
/// emitted, and deserialization rebuilds the reverse index and the pair
/// count, so logs and snapshots written before the index existed keep
/// round-tripping unchanged.
impl Serialize for Arrangement {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (String::from("num_events"), self.num_events.to_value()),
            (String::from("per_user"), self.per_user.to_value()),
            (String::from("event_load"), self.event_load.to_value()),
        ])
    }
}

impl Deserialize for Arrangement {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = serde::expect_object(v, "Arrangement")?;
        let num_events: usize =
            Deserialize::from_value(serde::object_field(entries, "num_events", "Arrangement")?)?;
        let per_user: Vec<Vec<EventId>> =
            Deserialize::from_value(serde::object_field(entries, "per_user", "Arrangement")?)?;
        // `event_load` is accepted for format compatibility but re-derived
        // (together with the reverse index) from `per_user`, the single
        // source of truth.
        let _: Vec<usize> =
            Deserialize::from_value(serde::object_field(entries, "event_load", "Arrangement")?)?;
        let mut arrangement = Arrangement::new(num_events, per_user.len());
        for (u, events) in per_user.into_iter().enumerate() {
            for v in events {
                if v.index() >= num_events {
                    return Err(serde::DeError::msg(format!(
                        "arrangement pair references {v} beyond num_events {num_events}"
                    )));
                }
                arrangement.assign(v, UserId::new(u));
            }
        }
        Ok(arrangement)
    }
}

/// A compact edit script between two arrangements: target dimensions
/// plus the **net** set of removed and added pairs.
///
/// The recorder cancels opposites as they arrive — a pair that is
/// unassigned and later re-assigned (or vice versa) while the diff is
/// being recorded contributes nothing — so [`Arrangement::apply_diff`]
/// can apply all removals before all additions and still land exactly
/// on the recorded final state. Both sets iterate in `(event, user)`
/// order, making replay deterministic.
///
/// This is what lets the serving transport ship O(changed) view updates
/// instead of O(|M|) snapshots: a repair records its pair churn here,
/// and the query cache replays it onto its cached copy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArrangementDiff {
    num_events: usize,
    num_users: usize,
    removed: std::collections::BTreeSet<(EventId, UserId)>,
    added: std::collections::BTreeSet<(EventId, UserId)>,
}

impl ArrangementDiff {
    /// An empty diff targeting the given dimensions.
    pub fn new(num_events: usize, num_users: usize) -> Self {
        ArrangementDiff {
            num_events,
            num_users,
            removed: Default::default(),
            added: Default::default(),
        }
    }

    /// Raises the target dimensions (never shrinks, mirroring
    /// [`Arrangement::grow`]).
    pub fn grow(&mut self, num_events: usize, num_users: usize) {
        self.num_events = self.num_events.max(num_events);
        self.num_users = self.num_users.max(num_users);
    }

    /// Records that `(event, user)` was assigned. Cancels a pending
    /// removal of the same pair if one was recorded earlier.
    pub fn record_assign(&mut self, event: EventId, user: UserId) {
        if !self.removed.remove(&(event, user)) {
            self.added.insert((event, user));
        }
    }

    /// Records that `(event, user)` was unassigned. Cancels a pending
    /// addition of the same pair if one was recorded earlier.
    pub fn record_unassign(&mut self, event: EventId, user: UserId) {
        if !self.added.remove(&(event, user)) {
            self.removed.insert((event, user));
        }
    }

    /// Net pairs removed, in `(event, user)` order.
    pub fn removed(&self) -> impl Iterator<Item = (EventId, UserId)> + '_ {
        self.removed.iter().copied()
    }

    /// Net pairs added, in `(event, user)` order.
    pub fn added(&self) -> impl Iterator<Item = (EventId, UserId)> + '_ {
        self.added.iter().copied()
    }

    /// Number of net pair edits (removals plus additions).
    pub fn len(&self) -> usize {
        self.removed.len() + self.added.len()
    }

    /// Whether the diff carries no pair edits (it may still grow the
    /// target's dimensions).
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }

    /// The event dimension the target arrangement must reach.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// The user dimension the target arrangement must reach.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Folds another diff recorded *after* this one into this one, so
    /// the combined diff replays both in sequence.
    pub fn merge(&mut self, later: &ArrangementDiff) {
        self.grow(later.num_events, later.num_users);
        for (v, u) in later.removed() {
            self.record_unassign(v, u);
        }
        for (v, u) in later.added() {
            self.record_assign(v, u);
        }
    }
}

impl Arrangement {
    /// Replays `diff` onto this arrangement: grows to the diff's
    /// dimensions, then applies all removals followed by all additions.
    ///
    /// O(changed) — the cost scales with the diff, not with `|M|`. Every
    /// edit must be consistent with the current state (removals present,
    /// additions absent), which holds whenever the diff was recorded
    /// against exactly this state; violations are `debug_assert`ed.
    pub fn apply_diff(&mut self, diff: &ArrangementDiff) {
        self.grow(diff.num_events, diff.num_users);
        for (v, u) in diff.removed() {
            let was_present = self.unassign(v, u);
            debug_assert!(was_present, "diff removes absent pair ({v}, {u})");
        }
        for (v, u) in diff.added() {
            let was_absent = self.assign(v, u);
            debug_assert!(was_absent, "diff adds duplicate pair ({v}, {u})");
        }
    }
}

/// Incremental Definition-7 utility bookkeeping: the running
/// `interest_sum` / `interaction_sum` of an arrangement, maintained
/// exactly as pairs are assigned and unassigned.
///
/// Both sums live in [`ExactSum`] accumulators, so reads are the
/// correctly rounded exact sums — **bit-identical** to a from-scratch
/// [`Arrangement::utility`] over the same pairs, no matter in which order
/// pairs were added, removed or re-added. This is what lets the serving
/// engine answer utility queries in O(1) without giving up its
/// bit-for-bit determinism pins.
///
/// ## Invariants (maintained by the caller, checked by the engine)
///
/// * Every `assign`/`unassign` of the tracked arrangement is mirrored by
///   [`UtilityTracker::on_assign`] / [`UtilityTracker::on_unassign`]
///   *while the instance still holds the pair's current score* — the
///   subtraction must see the same value the addition saw.
/// * Instance-side score changes that touch pairs currently in the
///   arrangement are reported via
///   [`UtilityTracker::on_interaction_change`] (an interaction score
///   changed for a user with `assigned` pairs) and
///   [`UtilityTracker::on_interest_change`] (a cached interest value of
///   an assigned pair was overwritten). [`crate::DeltaEffect`] carries
///   exactly these notifications out of [`Instance::apply_delta`].
/// * After a wholesale arrangement replacement (a cold or warm solve),
///   re-sync with [`UtilityTracker::rebuild`].
#[derive(Debug, Clone, Default)]
pub struct UtilityTracker {
    interest: ExactSum,
    interaction: ExactSum,
}

impl UtilityTracker {
    /// A tracker for an empty arrangement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the tracker from scratch for `arrangement` — the exact fold
    /// behind [`Arrangement::utility`], O(|M|).
    pub fn rebuild(instance: &Instance, arrangement: &Arrangement) -> Self {
        let mut tracker = Self::new();
        for (v, u) in arrangement.pairs() {
            tracker.on_assign(instance, v, u);
        }
        tracker
    }

    /// Records the assignment of `(event, user)` at the instance's
    /// current scores. O(1).
    #[inline]
    pub fn on_assign(&mut self, instance: &Instance, event: EventId, user: UserId) {
        self.interest.add(instance.interest(event, user));
        self.interaction.add(instance.interaction(user));
    }

    /// Records the removal of `(event, user)` at the instance's current
    /// scores (which must still equal the scores seen at assignment
    /// time). O(1).
    #[inline]
    pub fn on_unassign(&mut self, instance: &Instance, event: EventId, user: UserId) {
        self.interest.sub(instance.interest(event, user));
        self.interaction.sub(instance.interaction(user));
    }

    /// Records an interaction-score change `old → new` for a user who
    /// currently holds `assigned` pairs. O(assigned) exact updates.
    pub fn on_interaction_change(&mut self, old: f64, new: f64, assigned: usize) {
        for _ in 0..assigned {
            self.interaction.sub(old);
            self.interaction.add(new);
        }
    }

    /// Records an interest-value overwrite `old → new` of a pair
    /// currently in the arrangement. O(1).
    pub fn on_interest_change(&mut self, old: f64, new: f64) {
        self.interest.sub(old);
        self.interest.add(new);
    }

    /// Merges another tracker's partial sums into this one, exactly.
    ///
    /// Exact sums are order-independent, so absorbing per-shard trackers
    /// produces a tracker whose [`UtilityTracker::breakdown`] is
    /// bit-identical to one global tracker (or a from-scratch
    /// [`UtilityTracker::rebuild`]) over the union of the shards' pairs —
    /// the property that lets a merged arrangement's utility be served
    /// from cached per-shard trackers without a global recompute.
    pub fn absorb(&mut self, other: &UtilityTracker) {
        self.interest.absorb(&other.interest);
        self.interaction.absorb(&other.interaction);
    }

    /// The tracked utility breakdown under balance parameter `beta`.
    /// O(1): two accumulator roundings and the Definition-7 combination.
    pub fn breakdown(&self, beta: f64) -> UtilityBreakdown {
        let interest = self.interest.value();
        let interaction = self.interaction.value();
        UtilityBreakdown {
            total: beta * interest + (1.0 - beta) * interaction,
            interest_sum: interest,
            interaction_sum: interaction,
            beta,
        }
    }
}

/// Utility of an arrangement with its two components (Definition 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityBreakdown {
    /// `β · Σ SI + (1 − β) · Σ D`.
    pub total: f64,
    /// `Σ_{(v,u) ∈ M} SI(l_v, l_u)` (unweighted).
    pub interest_sum: f64,
    /// `Σ_{(v,u) ∈ M} D(G, u)` (unweighted).
    pub interaction_sum: f64,
    /// The β the total was computed with.
    pub beta: f64,
}

/// A violation of one of the feasibility constraints of Definition 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// A user is assigned an event they did not bid for.
    Bid {
        /// The assigned event.
        event: EventId,
        /// The user who never bid for it.
        user: UserId,
    },
    /// An event hosts more users than its capacity.
    EventCapacity {
        /// The overloaded event.
        event: EventId,
        /// Number of users assigned.
        assigned: usize,
        /// The event's capacity `c_v`.
        capacity: usize,
    },
    /// A user attends more events than their capacity.
    UserCapacity {
        /// The overloaded user.
        user: UserId,
        /// Number of events assigned.
        assigned: usize,
        /// The user's capacity `c_u`.
        capacity: usize,
    },
    /// A user is assigned two conflicting events.
    Conflict {
        /// The user holding both events.
        user: UserId,
        /// First conflicting event.
        first: EventId,
        /// Second conflicting event.
        second: EventId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Bid { event, user } => {
                write!(f, "{user} is assigned {event} without bidding for it")
            }
            Violation::EventCapacity {
                event,
                assigned,
                capacity,
            } => {
                write!(
                    f,
                    "{event} hosts {assigned} users but has capacity {capacity}"
                )
            }
            Violation::UserCapacity {
                user,
                assigned,
                capacity,
            } => {
                write!(
                    f,
                    "{user} attends {assigned} events but has capacity {capacity}"
                )
            }
            Violation::Conflict {
                user,
                first,
                second,
            } => {
                write!(
                    f,
                    "{user} is assigned conflicting events {first} and {second}"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeVector;
    use crate::conflict::PairSetConflict;
    use crate::instance::Instance;
    use crate::interest::ConstantInterest;

    /// 3 events (capacities 1, 2, 1; events 0 and 1 conflict), 2 users.
    fn sample_instance() -> Instance {
        let mut b = Instance::builder();
        let v0 = b.add_event(1, AttributeVector::empty());
        let v1 = b.add_event(2, AttributeVector::empty());
        let v2 = b.add_event(1, AttributeVector::empty());
        b.add_user(2, AttributeVector::empty(), vec![v0, v1, v2]);
        b.add_user(1, AttributeVector::empty(), vec![v0, v1]);
        b.interaction_scores(vec![0.4, 0.8]);
        b.beta(0.5);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        b.build(&sigma, &ConstantInterest(0.6)).unwrap()
    }

    #[test]
    fn assign_and_unassign_maintain_loads() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        assert!(m.assign(EventId::new(1), UserId::new(0)));
        assert!(!m.assign(EventId::new(1), UserId::new(0)));
        assert_eq!(m.load_of(EventId::new(1)), 1);
        assert_eq!(m.len(), 1);
        assert!(m.unassign(EventId::new(1), UserId::new(0)));
        assert!(!m.unassign(EventId::new(1), UserId::new(0)));
        assert!(m.is_empty());
        assert_eq!(m.load_of(EventId::new(1)), 0);
    }

    #[test]
    fn feasible_arrangement_has_no_violations() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(1), UserId::new(0));
        m.assign(EventId::new(2), UserId::new(0));
        m.assign(EventId::new(0), UserId::new(1));
        assert!(m.is_feasible(&inst));
    }

    #[test]
    fn bid_violation_detected() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(2), UserId::new(1)); // user 1 never bid for v2
        let v = m.violations(&inst);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::Bid { .. }));
    }

    #[test]
    fn event_capacity_violation_detected() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(0), UserId::new(0));
        m.assign(EventId::new(0), UserId::new(1)); // capacity of v0 is 1
        let v = m.violations(&inst);
        assert!(v.iter().any(|x| matches!(x, Violation::EventCapacity { event, assigned: 2, capacity: 1 } if *event == EventId::new(0))));
    }

    #[test]
    fn user_capacity_violation_detected() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        // user 1 has capacity 1 but gets two events.
        m.assign(EventId::new(0), UserId::new(1));
        m.assign(EventId::new(1), UserId::new(1));
        let v = m.violations(&inst);
        assert!(v.iter().any(|x| matches!(x, Violation::UserCapacity { user, assigned: 2, capacity: 1 } if *user == UserId::new(1))));
    }

    #[test]
    fn conflict_violation_detected() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(0), UserId::new(0));
        m.assign(EventId::new(1), UserId::new(0)); // v0 and v1 conflict
        let v = m.violations(&inst);
        assert!(v.iter().any(|x| matches!(x, Violation::Conflict { .. })));
    }

    #[test]
    fn utility_matches_definition_seven() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(1), UserId::new(0));
        m.assign(EventId::new(1), UserId::new(1));
        let u = m.utility(&inst);
        // interests: 0.6 + 0.6; interactions: 0.4 + 0.8
        assert!((u.interest_sum - 1.2).abs() < 1e-12);
        assert!((u.interaction_sum - 1.2).abs() < 1e-12);
        assert!((u.total - (0.5 * 1.2 + 0.5 * 1.2)).abs() < 1e-12);
        assert_eq!(u.beta, 0.5);
    }

    #[test]
    fn from_pairs_collapses_duplicates() {
        let inst = sample_instance();
        let m = Arrangement::from_pairs(
            inst.num_events(),
            inst.num_users(),
            vec![
                (EventId::new(1), UserId::new(0)),
                (EventId::new(1), UserId::new(0)),
                (EventId::new(0), UserId::new(1)),
            ],
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m.load_of(EventId::new(1)), 1);
    }

    #[test]
    fn pairs_roundtrip() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(2), UserId::new(0));
        m.assign(EventId::new(0), UserId::new(1));
        let pairs: Vec<_> = m.pairs().collect();
        let rebuilt = Arrangement::from_pairs(inst.num_events(), inst.num_users(), pairs);
        assert_eq!(m, rebuilt);
    }

    /// Brute-force reference for the reverse attendee index: scan every
    /// user's event list.
    fn users_of_by_scan(m: &Arrangement, event: EventId) -> Vec<UserId> {
        (0..m.num_users())
            .map(UserId::new)
            .filter(|&u| m.contains(event, u))
            .collect()
    }

    #[test]
    fn users_of_matches_brute_force_scan_under_churn() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        let script = [
            (true, 1, 0),
            (true, 1, 1),
            (true, 0, 0),
            (false, 1, 0),
            (true, 2, 0),
            (true, 1, 0),
            (false, 1, 1),
            (false, 0, 0),
        ];
        for (i, &(add, v, u)) in script.iter().enumerate() {
            let (v, u) = (EventId::new(v), UserId::new(u));
            if add {
                m.assign(v, u);
            } else {
                m.unassign(v, u);
            }
            for e in 0..m.num_events() {
                let e = EventId::new(e);
                assert_eq!(
                    m.users_of(e),
                    users_of_by_scan(&m, e).as_slice(),
                    "index diverged from scan at step {i} on {e}"
                );
                assert_eq!(m.load_of(e), m.users_of(e).len());
            }
            let expected_pairs: usize = (0..m.num_users())
                .map(|u| m.events_of(UserId::new(u)).len())
                .sum();
            assert_eq!(m.len(), expected_pairs, "cached pair count at step {i}");
        }
    }

    #[test]
    fn remove_user_assignments_updates_the_reverse_index() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(0), UserId::new(0));
        m.assign(EventId::new(1), UserId::new(0));
        m.assign(EventId::new(1), UserId::new(1));
        let removed = m.remove_user_assignments(UserId::new(0));
        assert_eq!(removed, vec![EventId::new(0), EventId::new(1)]);
        assert_eq!(m.users_of(EventId::new(0)), &[]);
        assert_eq!(m.users_of(EventId::new(1)), &[UserId::new(1)]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grow_extends_the_reverse_index() {
        let mut m = Arrangement::new(1, 1);
        m.assign(EventId::new(0), UserId::new(0));
        m.grow(3, 2);
        m.assign(EventId::new(2), UserId::new(1));
        assert_eq!(m.users_of(EventId::new(2)), &[UserId::new(1)]);
        assert_eq!(m.users_of(EventId::new(1)), &[]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn serde_keeps_the_legacy_format_and_rebuilds_the_index() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(1), UserId::new(0));
        m.assign(EventId::new(2), UserId::new(0));
        m.assign(EventId::new(0), UserId::new(1));
        let json = serde_json::to_string(&m).unwrap();
        // The wire format predates the reverse index: exactly the three
        // legacy fields, nothing derived.
        assert!(json.contains("\"num_events\""));
        assert!(json.contains("\"per_user\""));
        assert!(json.contains("\"event_load\""));
        assert!(!json.contains("per_event"));
        assert!(!json.contains("num_pairs"));
        let back: Arrangement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.users_of(EventId::new(1)), &[UserId::new(0)]);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn tracker_matches_from_scratch_utility_bit_for_bit() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        let mut tracker = UtilityTracker::new();
        let script = [
            (true, 1, 0),
            (true, 1, 1),
            (false, 1, 0),
            (true, 2, 0),
            (true, 0, 1),
            (false, 1, 1),
            (true, 1, 0),
        ];
        for &(add, v, u) in &script {
            let (v, u) = (EventId::new(v), UserId::new(u));
            if add {
                if m.assign(v, u) {
                    tracker.on_assign(&inst, v, u);
                }
            } else if m.unassign(v, u) {
                tracker.on_unassign(&inst, v, u);
            }
            let from_scratch = m.utility(&inst);
            let tracked = tracker.breakdown(inst.beta());
            assert_eq!(tracked.total.to_bits(), from_scratch.total.to_bits());
            assert_eq!(
                tracked.interest_sum.to_bits(),
                from_scratch.interest_sum.to_bits()
            );
            assert_eq!(
                tracked.interaction_sum.to_bits(),
                from_scratch.interaction_sum.to_bits()
            );
        }
    }

    #[test]
    fn absorbed_shard_trackers_match_a_global_rebuild_bit_for_bit() {
        let inst = sample_instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(1), UserId::new(0));
        m.assign(EventId::new(2), UserId::new(0));
        m.assign(EventId::new(1), UserId::new(1));
        // Partition the pairs by user (as shards partition users), track
        // each slice separately, merge, and compare against the global
        // rebuild.
        let mut per_user = [UtilityTracker::new(), UtilityTracker::new()];
        for (v, u) in m.pairs() {
            per_user[u.index()].on_assign(&inst, v, u);
        }
        let mut merged = UtilityTracker::new();
        for part in &per_user {
            merged.absorb(part);
        }
        let global = UtilityTracker::rebuild(&inst, &m).breakdown(inst.beta());
        let combined = merged.breakdown(inst.beta());
        assert_eq!(combined.total.to_bits(), global.total.to_bits());
        assert_eq!(
            combined.interest_sum.to_bits(),
            global.interest_sum.to_bits()
        );
        assert_eq!(
            combined.interaction_sum.to_bits(),
            global.interaction_sum.to_bits()
        );
    }

    #[test]
    fn diff_replays_to_the_recorded_final_state() {
        let mut live = Arrangement::new(3, 3);
        live.assign(EventId::new(0), UserId::new(0));
        live.assign(EventId::new(1), UserId::new(1));
        let mut stale = live.clone();
        let mut diff = ArrangementDiff::new(live.num_events(), live.num_users());
        // Churn on the live copy, mirrored into the recorder.
        live.unassign(EventId::new(0), UserId::new(0));
        diff.record_unassign(EventId::new(0), UserId::new(0));
        live.assign(EventId::new(2), UserId::new(0));
        diff.record_assign(EventId::new(2), UserId::new(0));
        live.assign(EventId::new(2), UserId::new(2));
        diff.record_assign(EventId::new(2), UserId::new(2));
        stale.apply_diff(&diff);
        assert_eq!(stale, live);
    }

    #[test]
    fn diff_cancels_opposing_edits() {
        let mut diff = ArrangementDiff::new(2, 2);
        // Prune then readmit the same pair: net nothing.
        diff.record_unassign(EventId::new(0), UserId::new(0));
        diff.record_assign(EventId::new(0), UserId::new(0));
        // Assign then undo: net nothing.
        diff.record_assign(EventId::new(1), UserId::new(1));
        diff.record_unassign(EventId::new(1), UserId::new(1));
        assert!(diff.is_empty());
        assert_eq!(diff.len(), 0);
        let mut m = Arrangement::new(2, 2);
        m.assign(EventId::new(0), UserId::new(0));
        let before = m.clone();
        m.apply_diff(&diff);
        assert_eq!(m, before);
    }

    #[test]
    fn diff_grows_the_target() {
        let mut m = Arrangement::new(1, 1);
        let mut diff = ArrangementDiff::new(1, 1);
        diff.grow(3, 2);
        diff.record_assign(EventId::new(2), UserId::new(1));
        m.apply_diff(&diff);
        assert_eq!(m.num_events(), 3);
        assert_eq!(m.num_users(), 2);
        assert!(m.contains(EventId::new(2), UserId::new(1)));
    }

    #[test]
    fn merged_diffs_replay_like_sequential_application() {
        let mut base = Arrangement::new(2, 2);
        base.assign(EventId::new(0), UserId::new(0));
        let mut first = ArrangementDiff::new(2, 2);
        first.record_unassign(EventId::new(0), UserId::new(0));
        first.record_assign(EventId::new(1), UserId::new(0));
        let mut second = ArrangementDiff::new(2, 2);
        second.grow(2, 3);
        second.record_assign(EventId::new(0), UserId::new(0));
        second.record_assign(EventId::new(1), UserId::new(2));

        let mut sequential = base.clone();
        sequential.apply_diff(&first);
        sequential.apply_diff(&second);

        let mut merged = first.clone();
        merged.merge(&second);
        let mut combined = base.clone();
        combined.apply_diff(&merged);
        assert_eq!(combined, sequential);
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::EventCapacity {
            event: EventId::new(3),
            assigned: 5,
            capacity: 2,
        };
        let s = v.to_string();
        assert!(s.contains("v3"));
        assert!(s.contains('5'));
        assert!(s.contains('2'));
    }
}
