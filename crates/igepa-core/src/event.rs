//! Events (Definition 1 of the paper).

use crate::attrs::AttributeVector;
use crate::ids::{EventId, UserId};
use serde::{Deserialize, Serialize};

/// An event `v ∈ V`.
///
/// Per Definition 1, an event is associated with a capacity `c_v` (the
/// maximum number of attendees it can accommodate), an attribute vector
/// `l_v`, and the set `N_v` of users who bid for it. The bidder set is
/// derived by [`crate::InstanceBuilder`] from the users' bid sets, so it is
/// always consistent with `N_u`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Dense identifier of this event.
    pub id: EventId,
    /// Capacity `c_v`: maximum number of attendees.
    pub capacity: usize,
    /// Attribute vector `l_v` used for conflict detection and interest.
    pub attrs: AttributeVector,
    /// `N_v`: users who bid for this event, sorted by id.
    pub bidders: Vec<UserId>,
}

impl Event {
    /// Creates an event with an empty bidder list.
    ///
    /// Bidders are filled in by [`crate::InstanceBuilder::build`] from the
    /// users' bid sets.
    pub fn new(id: EventId, capacity: usize, attrs: AttributeVector) -> Self {
        Event {
            id,
            capacity,
            attrs,
            bidders: Vec::new(),
        }
    }

    /// Number of users who bid for this event, `|N_v|`.
    pub fn num_bidders(&self) -> usize {
        self.bidders.len()
    }

    /// Whether the given user bid for this event.
    pub fn has_bidder(&self, user: UserId) -> bool {
        self.bidders.binary_search(&user).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event_with_bidders(bidders: &[usize]) -> Event {
        let mut e = Event::new(EventId::new(0), 10, AttributeVector::empty());
        e.bidders = bidders.iter().map(|&i| UserId::new(i)).collect();
        e
    }

    #[test]
    fn new_event_has_no_bidders() {
        let e = Event::new(EventId::new(3), 25, AttributeVector::empty());
        assert_eq!(e.num_bidders(), 0);
        assert_eq!(e.capacity, 25);
        assert_eq!(e.id, EventId::new(3));
    }

    #[test]
    fn has_bidder_uses_sorted_lookup() {
        let e = event_with_bidders(&[1, 3, 5, 8]);
        assert!(e.has_bidder(UserId::new(3)));
        assert!(e.has_bidder(UserId::new(8)));
        assert!(!e.has_bidder(UserId::new(2)));
    }

    #[test]
    fn num_bidders_counts_all() {
        let e = event_with_bidders(&[0, 1, 2, 3, 4]);
        assert_eq!(e.num_bidders(), 5);
    }
}
