//! Strongly-typed identifiers for events and users.
//!
//! The IGEPA model indexes events and users densely (`0..|V|` and `0..|U|`),
//! which lets every algorithm use flat `Vec` storage instead of hash maps.
//! The newtypes below prevent accidentally mixing the two index spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an event `v ∈ V`.
///
/// Events are densely numbered from zero within an [`crate::Instance`]; the
/// wrapped value is the index into the instance's event table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub u32);

/// Identifier of a user `u ∈ U`.
///
/// Users are densely numbered from zero within an [`crate::Instance`]; the
/// wrapped value is the index into the instance's user table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl EventId {
    /// Creates an event id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        EventId(index as u32)
    }

    /// Returns the dense index of this event.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl UserId {
    /// Creates a user id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        UserId(index as u32)
    }

    /// Returns the dense index of this user.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<usize> for EventId {
    fn from(index: usize) -> Self {
        EventId::new(index)
    }
}

impl From<usize> for UserId {
    fn from(index: usize) -> Self {
        UserId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_roundtrips_through_index() {
        let id = EventId::new(17);
        assert_eq!(id.index(), 17);
        assert_eq!(EventId::from(17usize), id);
    }

    #[test]
    fn user_id_roundtrips_through_index() {
        let id = UserId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(UserId::from(42usize), id);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(EventId::new(1) < EventId::new(2));
        assert!(UserId::new(3) > UserId::new(2));
    }

    #[test]
    fn display_uses_domain_prefixes() {
        assert_eq!(EventId::new(5).to_string(), "v5");
        assert_eq!(UserId::new(9).to_string(), "u9");
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::HashSet;
        let set: HashSet<EventId> = [EventId::new(0), EventId::new(1), EventId::new(0)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
