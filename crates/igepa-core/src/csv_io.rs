//! Plain-text (sectioned CSV) import/export of instances and arrangements.
//!
//! The JSON snapshots in [`crate::io`] are the canonical archival format;
//! this module adds a flat, spreadsheet-friendly representation that is
//! handy for inspecting workloads behind a published table and for feeding
//! external plotting tools. The format is a single text file with `[section]`
//! headers, one CSV table per section:
//!
//! ```text
//! [meta]
//! key,value
//! beta,0.5
//!
//! [events]
//! id,capacity,start,duration,x,y,categories
//! 0,50,540,90,1.5,2.0,0.2|0.8
//!
//! [users]
//! id,capacity,categories,bids
//! 0,4,0.1|0.9,0|3|7
//!
//! [conflicts]
//! a,b
//!
//! [interests]
//! event,user,si
//!
//! [interaction]
//! user,score
//! ```
//!
//! Empty optional fields (no time window, no location) are left blank.
//! Loading re-validates every model invariant through [`InstanceBuilder`].

use crate::arrangement::Arrangement;
use crate::attrs::AttributeVector;
use crate::conflict::PairSetConflict;
use crate::error::CoreError;
use crate::ids::{EventId, UserId};
use crate::instance::Instance;
use crate::interest::TableInterest;

/// Errors raised while parsing the sectioned-CSV format.
#[derive(Debug)]
pub enum CsvError {
    /// A line could not be interpreted in its section.
    Malformed {
        /// 1-based line number in the input text.
        line: usize,
        /// Explanation of what was expected.
        message: String,
    },
    /// A required section was missing entirely.
    MissingSection(&'static str),
    /// The decoded data violates a model invariant.
    Invalid(CoreError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
            CsvError::MissingSection(name) => write!(f, "missing [{name}] section"),
            CsvError::Invalid(e) => write!(f, "invalid instance data: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

fn fmt_opt(value: Option<f64>) -> String {
    value.map(|v| format!("{v}")).unwrap_or_default()
}

fn fmt_opt_i64(value: Option<i64>) -> String {
    value.map(|v| format!("{v}")).unwrap_or_default()
}

fn join_pipe<T: std::fmt::Display>(values: impl IntoIterator<Item = T>) -> String {
    values
        .into_iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("|")
}

/// Serializes an instance to the sectioned-CSV text format.
pub fn instance_to_csv(instance: &Instance) -> String {
    let mut out = String::new();
    out.push_str("[meta]\nkey,value\n");
    out.push_str(&format!("beta,{}\n", instance.beta()));
    out.push_str(&format!("num_events,{}\n", instance.num_events()));
    out.push_str(&format!("num_users,{}\n", instance.num_users()));

    out.push_str("\n[events]\nid,capacity,start,duration,x,y,categories\n");
    for event in instance.events() {
        let (start, duration) = match &event.attrs.time {
            Some(t) => (Some(t.start), Some(t.duration)),
            None => (None, None),
        };
        let (x, y) = match &event.attrs.location {
            Some(l) => (Some(l.x), Some(l.y)),
            None => (None, None),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            event.id.index(),
            event.capacity,
            fmt_opt_i64(start),
            fmt_opt_i64(duration),
            fmt_opt(x),
            fmt_opt(y),
            join_pipe(event.attrs.categories.iter()),
        ));
    }

    out.push_str("\n[users]\nid,capacity,categories,bids\n");
    for user in instance.users() {
        out.push_str(&format!(
            "{},{},{},{}\n",
            user.id.index(),
            user.capacity,
            join_pipe(user.attrs.categories.iter()),
            join_pipe(user.bids.iter().map(|v| v.index())),
        ));
    }

    out.push_str("\n[conflicts]\na,b\n");
    for i in 0..instance.num_events() {
        for j in (i + 1)..instance.num_events() {
            if instance
                .conflicts()
                .conflicts(EventId::new(i), EventId::new(j))
            {
                out.push_str(&format!("{i},{j}\n"));
            }
        }
    }

    out.push_str("\n[interests]\nevent,user,si\n");
    for user in instance.users() {
        for &v in &user.bids {
            out.push_str(&format!(
                "{},{},{}\n",
                v.index(),
                user.id.index(),
                instance.interest(v, user.id)
            ));
        }
    }

    out.push_str("\n[interaction]\nuser,score\n");
    for i in 0..instance.num_users() {
        out.push_str(&format!("{i},{}\n", instance.interaction(UserId::new(i))));
    }
    out
}

/// Internal accumulator while parsing the sectioned text.
#[derive(Default)]
struct ParsedSections {
    beta: Option<f64>,
    events: Vec<(usize, usize, AttributeVector)>,
    users: Vec<(usize, usize, AttributeVector, Vec<EventId>)>,
    conflicts: Vec<(EventId, EventId)>,
    interests: Vec<(EventId, UserId, f64)>,
    interaction: Vec<(usize, f64)>,
}

fn malformed(line: usize, message: impl Into<String>) -> CsvError {
    CsvError::Malformed {
        line,
        message: message.into(),
    }
}

fn parse_field<T: std::str::FromStr>(field: &str, line: usize, what: &str) -> Result<T, CsvError> {
    field
        .trim()
        .parse::<T>()
        .map_err(|_| malformed(line, format!("cannot parse {what} from {field:?}")))
}

fn parse_opt_field<T: std::str::FromStr>(
    field: &str,
    line: usize,
    what: &str,
) -> Result<Option<T>, CsvError> {
    let trimmed = field.trim();
    if trimmed.is_empty() {
        Ok(None)
    } else {
        parse_field(trimmed, line, what).map(Some)
    }
}

fn parse_pipe_list<T: std::str::FromStr>(
    field: &str,
    line: usize,
    what: &str,
) -> Result<Vec<T>, CsvError> {
    let trimmed = field.trim();
    if trimmed.is_empty() {
        return Ok(Vec::new());
    }
    trimmed
        .split('|')
        .map(|part| parse_field(part, line, what))
        .collect()
}

/// Parses an instance from the sectioned-CSV text format and re-validates it.
pub fn instance_from_csv(text: &str) -> Result<Instance, CsvError> {
    let mut sections = ParsedSections::default();
    let mut current: Option<&'static str> = None;
    let mut seen_events = false;
    let mut seen_users = false;
    let mut header_pending = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            current = match &line[1..line.len() - 1] {
                "meta" => Some("meta"),
                "events" => {
                    seen_events = true;
                    Some("events")
                }
                "users" => {
                    seen_users = true;
                    Some("users")
                }
                "conflicts" => Some("conflicts"),
                "interests" => Some("interests"),
                "interaction" => Some("interaction"),
                other => {
                    return Err(malformed(line_no, format!("unknown section [{other}]")));
                }
            };
            header_pending = true;
            continue;
        }
        if header_pending {
            // The first non-empty line after a section marker is the header row.
            header_pending = false;
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        match current {
            Some("meta") => {
                if fields.len() != 2 {
                    return Err(malformed(line_no, "meta rows must be key,value"));
                }
                if fields[0].trim() == "beta" {
                    sections.beta = Some(parse_field(fields[1], line_no, "beta")?);
                }
            }
            Some("events") => {
                if fields.len() != 7 {
                    return Err(malformed(line_no, "event rows need 7 fields"));
                }
                let id: usize = parse_field(fields[0], line_no, "event id")?;
                let capacity: usize = parse_field(fields[1], line_no, "event capacity")?;
                let start: Option<i64> = parse_opt_field(fields[2], line_no, "start")?;
                let duration: Option<i64> = parse_opt_field(fields[3], line_no, "duration")?;
                let x: Option<f64> = parse_opt_field(fields[4], line_no, "x")?;
                let y: Option<f64> = parse_opt_field(fields[5], line_no, "y")?;
                let categories: Vec<f64> = parse_pipe_list(fields[6], line_no, "category weight")?;
                let mut attrs = AttributeVector::from_categories(categories);
                if let (Some(s), Some(d)) = (start, duration) {
                    attrs = attrs.with_time(s, d);
                }
                if let (Some(px), Some(py)) = (x, y) {
                    attrs = attrs.with_location(px, py);
                }
                sections.events.push((id, capacity, attrs));
            }
            Some("users") => {
                if fields.len() != 4 {
                    return Err(malformed(line_no, "user rows need 4 fields"));
                }
                let id: usize = parse_field(fields[0], line_no, "user id")?;
                let capacity: usize = parse_field(fields[1], line_no, "user capacity")?;
                let categories: Vec<f64> = parse_pipe_list(fields[2], line_no, "category weight")?;
                let bids: Vec<usize> = parse_pipe_list(fields[3], line_no, "bid event id")?;
                sections.users.push((
                    id,
                    capacity,
                    AttributeVector::from_categories(categories),
                    bids.into_iter().map(EventId::new).collect(),
                ));
            }
            Some("conflicts") => {
                if fields.len() != 2 {
                    return Err(malformed(line_no, "conflict rows must be a,b"));
                }
                let a: usize = parse_field(fields[0], line_no, "event id")?;
                let b: usize = parse_field(fields[1], line_no, "event id")?;
                sections.conflicts.push((EventId::new(a), EventId::new(b)));
            }
            Some("interests") => {
                if fields.len() != 3 {
                    return Err(malformed(line_no, "interest rows must be event,user,si"));
                }
                let v: usize = parse_field(fields[0], line_no, "event id")?;
                let u: usize = parse_field(fields[1], line_no, "user id")?;
                let si: f64 = parse_field(fields[2], line_no, "interest")?;
                sections
                    .interests
                    .push((EventId::new(v), UserId::new(u), si));
            }
            Some("interaction") => {
                if fields.len() != 2 {
                    return Err(malformed(line_no, "interaction rows must be user,score"));
                }
                let u: usize = parse_field(fields[0], line_no, "user id")?;
                let score: f64 = parse_field(fields[1], line_no, "interaction score")?;
                sections.interaction.push((u, score));
            }
            Some(_) | None => {
                return Err(malformed(line_no, "data row before any [section] marker"));
            }
        }
    }

    if !seen_events {
        return Err(CsvError::MissingSection("events"));
    }
    if !seen_users {
        return Err(CsvError::MissingSection("users"));
    }

    // Rows may appear in any order; sort by declared id and require the ids
    // to be exactly 0..n so the positional builder reproduces them.
    sections.events.sort_by_key(|(id, _, _)| *id);
    sections.users.sort_by_key(|(id, _, _, _)| *id);
    for (expect, (id, _, _)) in sections.events.iter().enumerate() {
        if *id != expect {
            return Err(malformed(
                0,
                format!("event ids must be contiguous from 0; missing id {expect}"),
            ));
        }
    }
    for (expect, (id, _, _, _)) in sections.users.iter().enumerate() {
        if *id != expect {
            return Err(malformed(
                0,
                format!("user ids must be contiguous from 0; missing id {expect}"),
            ));
        }
    }

    let num_events = sections.events.len();
    let num_users = sections.users.len();
    let mut builder = Instance::builder();
    if let Some(beta) = sections.beta {
        builder.beta(beta);
    }
    for (_, capacity, attrs) in &sections.events {
        builder.add_event(*capacity, attrs.clone());
    }
    for (_, capacity, attrs, bids) in &sections.users {
        builder.add_user(*capacity, attrs.clone(), bids.clone());
    }
    let mut interaction = vec![0.0; num_users];
    for (u, score) in &sections.interaction {
        if *u < num_users {
            interaction[*u] = *score;
        }
    }
    builder.interaction_scores(interaction);

    let mut sigma = PairSetConflict::new();
    for (a, b) in &sections.conflicts {
        sigma.add(*a, *b);
    }
    let mut interest = TableInterest::zeros(num_events, num_users);
    for (v, u, si) in &sections.interests {
        if v.index() < num_events && u.index() < num_users {
            interest.set(*v, *u, *si);
        }
    }
    builder.build(&sigma, &interest).map_err(CsvError::Invalid)
}

/// Serializes an arrangement as a two-column CSV (`event,user`).
pub fn arrangement_to_csv(arrangement: &Arrangement) -> String {
    let mut out = String::from("event,user\n");
    for (v, u) in arrangement.pairs() {
        out.push_str(&format!("{},{}\n", v.index(), u.index()));
    }
    out
}

/// Parses an arrangement from the two-column CSV produced by
/// [`arrangement_to_csv`] and checks it against the instance dimensions.
pub fn arrangement_from_csv(text: &str, instance: &Instance) -> Result<Arrangement, CsvError> {
    let mut arrangement = Arrangement::empty_for(instance);
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line == "event,user" {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 2 {
            return Err(malformed(line_no, "arrangement rows must be event,user"));
        }
        let v: usize = parse_field(fields[0], line_no, "event id")?;
        let u: usize = parse_field(fields[1], line_no, "user id")?;
        if v >= instance.num_events() || u >= instance.num_users() {
            return Err(malformed(
                line_no,
                format!("pair ({v}, {u}) is outside the instance dimensions"),
            ));
        }
        arrangement.assign(EventId::new(v), UserId::new(u));
    }
    Ok(arrangement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interest::ConstantInterest;

    fn sample_instance() -> Instance {
        let mut b = Instance::builder();
        let v0 = b.add_event(
            2,
            AttributeVector::empty()
                .with_time(540, 90)
                .with_location(1.5, 2.0)
                .with_categories(vec![0.2, 0.8]),
        );
        let v1 = b.add_event(1, AttributeVector::empty().with_time(600, 60));
        let v2 = b.add_event(3, AttributeVector::empty());
        b.add_user(
            2,
            AttributeVector::empty().with_categories(vec![0.1, 0.9]),
            vec![v0, v1],
        );
        b.add_user(1, AttributeVector::empty(), vec![v2]);
        b.add_user(1, AttributeVector::empty(), vec![v0, v2]);
        b.beta(0.7);
        b.interaction_scores(vec![0.5, 0.0, 1.0]);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        b.build(&sigma, &ConstantInterest(0.4)).unwrap()
    }

    #[test]
    fn instance_round_trips_through_csv() {
        let original = sample_instance();
        let text = instance_to_csv(&original);
        let restored = instance_from_csv(&text).unwrap();

        assert_eq!(restored.num_events(), original.num_events());
        assert_eq!(restored.num_users(), original.num_users());
        assert!((restored.beta() - original.beta()).abs() < 1e-12);
        for i in 0..original.num_events() {
            let a = original.event(EventId::new(i));
            let b = restored.event(EventId::new(i));
            assert_eq!(a.capacity, b.capacity);
            assert_eq!(a.attrs.time, b.attrs.time);
        }
        for i in 0..original.num_users() {
            let a = original.user(UserId::new(i));
            let b = restored.user(UserId::new(i));
            assert_eq!(a.capacity, b.capacity);
            assert_eq!(a.bids, b.bids);
            assert!(
                (original.interaction(UserId::new(i)) - restored.interaction(UserId::new(i))).abs()
                    < 1e-12
            );
        }
        // Conflicts and interests survive.
        assert_eq!(
            original.conflicts().num_conflicting_pairs(),
            restored.conflicts().num_conflicting_pairs()
        );
        for (v, u) in original.bid_pairs() {
            assert!((original.interest(v, u) - restored.interest(v, u)).abs() < 1e-12);
        }
    }

    #[test]
    fn csv_text_has_all_sections() {
        let text = instance_to_csv(&sample_instance());
        for section in [
            "[meta]",
            "[events]",
            "[users]",
            "[conflicts]",
            "[interests]",
            "[interaction]",
        ] {
            assert!(text.contains(section), "missing {section}");
        }
    }

    #[test]
    fn missing_sections_are_reported() {
        let err = instance_from_csv("[meta]\nkey,value\nbeta,0.5\n").unwrap_err();
        assert!(matches!(err, CsvError::MissingSection("events")));
        let err =
            instance_from_csv("[events]\nid,capacity,start,duration,x,y,categories\n0,1,,,,,\n")
                .unwrap_err();
        assert!(matches!(err, CsvError::MissingSection("users")));
    }

    #[test]
    fn malformed_rows_point_at_the_line() {
        let text = "[events]\nid,capacity,start,duration,x,y,categories\nnot-a-number,1,,,,,\n";
        match instance_from_csv(text).unwrap_err() {
            CsvError::Malformed { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn unknown_sections_are_rejected() {
        let err = instance_from_csv("[wat]\nx\n").unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 1, .. }));
    }

    #[test]
    fn non_contiguous_ids_are_rejected() {
        let text = "\
[events]
id,capacity,start,duration,x,y,categories
0,1,,,,,
2,1,,,,,
[users]
id,capacity,categories,bids
0,1,,0
";
        let err = instance_from_csv(text).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { .. }));
    }

    #[test]
    fn arrangement_round_trips_through_csv() {
        let instance = sample_instance();
        let mut m = Arrangement::empty_for(&instance);
        m.assign(EventId::new(0), UserId::new(0));
        m.assign(EventId::new(2), UserId::new(1));
        let text = arrangement_to_csv(&m);
        let restored = arrangement_from_csv(&text, &instance).unwrap();
        assert_eq!(restored, m);
    }

    #[test]
    fn arrangement_rows_outside_instance_are_rejected() {
        let instance = sample_instance();
        let err = arrangement_from_csv("event,user\n99,0\n", &instance).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 2, .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let err = malformed(7, "boom");
        assert!(err.to_string().contains("line 7"));
        assert!(CsvError::MissingSection("users")
            .to_string()
            .contains("users"));
    }
}
