//! Descriptive statistics over instances and arrangements.
//!
//! The experiment harness prints these alongside utility numbers so that
//! reproduced workloads can be compared with the paper's Table I settings
//! (number of events/users, conflict density, bids per user, capacities).

use crate::arrangement::Arrangement;
use crate::instance::Instance;
use serde::{Deserialize, Serialize};

/// Summary statistics of an [`Instance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// `|V|`.
    pub num_events: usize,
    /// `|U|`.
    pub num_users: usize,
    /// Total number of bids (Σ |N_u|).
    pub num_bids: usize,
    /// Mean bids per user.
    pub mean_bids_per_user: f64,
    /// Largest bid set of any user.
    pub max_bids_per_user: usize,
    /// Mean event capacity.
    pub mean_event_capacity: f64,
    /// Largest event capacity.
    pub max_event_capacity: usize,
    /// Mean user capacity.
    pub mean_user_capacity: f64,
    /// Largest user capacity.
    pub max_user_capacity: usize,
    /// Fraction of unordered event pairs that conflict.
    pub conflict_density: f64,
    /// Mean degree of potential interaction across users.
    pub mean_interaction: f64,
    /// The balance parameter β.
    pub beta: f64,
}

impl InstanceStats {
    /// Computes statistics for the given instance.
    pub fn of(instance: &Instance) -> Self {
        let num_events = instance.num_events();
        let num_users = instance.num_users();
        let num_bids = instance.num_bids();
        let max_bids_per_user = instance
            .users()
            .iter()
            .map(|u| u.num_bids())
            .max()
            .unwrap_or(0);
        let mean_bids_per_user = if num_users == 0 {
            0.0
        } else {
            num_bids as f64 / num_users as f64
        };
        let max_event_capacity = instance
            .events()
            .iter()
            .map(|e| e.capacity)
            .max()
            .unwrap_or(0);
        let mean_event_capacity = if num_events == 0 {
            0.0
        } else {
            instance.events().iter().map(|e| e.capacity).sum::<usize>() as f64 / num_events as f64
        };
        let max_user_capacity = instance
            .users()
            .iter()
            .map(|u| u.capacity)
            .max()
            .unwrap_or(0);
        let mean_user_capacity = if num_users == 0 {
            0.0
        } else {
            instance.users().iter().map(|u| u.capacity).sum::<usize>() as f64 / num_users as f64
        };
        let mean_interaction = if num_users == 0 {
            0.0
        } else {
            (0..num_users)
                .map(|i| instance.interaction(crate::UserId::new(i)))
                // lint:allow(no-raw-float-accum): instance-profiling mean in user-id order; diagnostics only, never served or replayed state
                .sum::<f64>()
                / num_users as f64
        };
        InstanceStats {
            num_events,
            num_users,
            num_bids,
            mean_bids_per_user,
            max_bids_per_user,
            mean_event_capacity,
            max_event_capacity,
            mean_user_capacity,
            max_user_capacity,
            conflict_density: instance.conflicts().density(),
            mean_interaction,
            beta: instance.beta(),
        }
    }
}

/// Summary statistics of an [`Arrangement`] relative to its instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrangementStats {
    /// Number of `(event, user)` pairs in the arrangement.
    pub num_pairs: usize,
    /// Number of users assigned at least one event.
    pub users_served: usize,
    /// Number of events with at least one attendee.
    pub events_used: usize,
    /// Mean fraction of event capacity filled, over events with capacity > 0.
    pub mean_event_fill: f64,
    /// Utility of the arrangement (Definition 7).
    pub utility: f64,
    /// Interest component of the utility (unweighted sum).
    pub interest_sum: f64,
    /// Interaction component of the utility (unweighted sum).
    pub interaction_sum: f64,
    /// Whether the arrangement is feasible.
    pub feasible: bool,
}

impl ArrangementStats {
    /// Computes statistics for an arrangement over its instance.
    pub fn of(instance: &Instance, arrangement: &Arrangement) -> Self {
        let num_pairs = arrangement.len();
        let users_served = (0..instance.num_users())
            .filter(|&i| !arrangement.events_of(crate::UserId::new(i)).is_empty())
            .count();
        let mut events_used = 0;
        let mut fill_sum = 0.0;
        let mut fill_count = 0;
        for e in instance.events() {
            let load = arrangement.load_of(e.id);
            if load > 0 {
                events_used += 1;
            }
            if e.capacity > 0 {
                // lint:allow(no-raw-float-accum): arrangement-profiling fill ratio in fixed event order; diagnostics only, never served or replayed state
                fill_sum += load as f64 / e.capacity as f64;
                fill_count += 1;
            }
        }
        let utility = arrangement.utility(instance);
        ArrangementStats {
            num_pairs,
            users_served,
            events_used,
            mean_event_fill: if fill_count == 0 {
                0.0
            } else {
                fill_sum / fill_count as f64
            },
            utility: utility.total,
            interest_sum: utility.interest_sum,
            interaction_sum: utility.interaction_sum,
            feasible: arrangement.is_feasible(instance),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeVector;
    use crate::conflict::NeverConflict;
    use crate::ids::{EventId, UserId};
    use crate::interest::ConstantInterest;

    fn instance() -> Instance {
        let mut b = Instance::builder();
        let v0 = b.add_event(2, AttributeVector::empty());
        let v1 = b.add_event(4, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![v0]);
        b.add_user(2, AttributeVector::empty(), vec![v0, v1]);
        b.interaction_scores(vec![0.2, 0.6]);
        b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
    }

    #[test]
    fn instance_stats_basic_counts() {
        let s = InstanceStats::of(&instance());
        assert_eq!(s.num_events, 2);
        assert_eq!(s.num_users, 2);
        assert_eq!(s.num_bids, 3);
        assert_eq!(s.max_bids_per_user, 2);
        assert!((s.mean_bids_per_user - 1.5).abs() < 1e-12);
        assert_eq!(s.max_event_capacity, 4);
        assert!((s.mean_event_capacity - 3.0).abs() < 1e-12);
        assert_eq!(s.max_user_capacity, 2);
        assert!((s.mean_interaction - 0.4).abs() < 1e-12);
        assert_eq!(s.conflict_density, 0.0);
        assert_eq!(s.beta, 0.5);
    }

    #[test]
    fn arrangement_stats_counts_and_utility() {
        let inst = instance();
        let mut m = Arrangement::empty_for(&inst);
        m.assign(EventId::new(0), UserId::new(0));
        m.assign(EventId::new(1), UserId::new(1));
        let s = ArrangementStats::of(&inst, &m);
        assert_eq!(s.num_pairs, 2);
        assert_eq!(s.users_served, 2);
        assert_eq!(s.events_used, 2);
        assert!(s.feasible);
        // fills: 1/2 and 1/4 -> mean 0.375
        assert!((s.mean_event_fill - 0.375).abs() < 1e-12);
        assert!((s.interest_sum - 1.0).abs() < 1e-12);
        assert!((s.interaction_sum - 0.8).abs() < 1e-12);
        assert!((s.utility - (0.5 * 1.0 + 0.5 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn empty_arrangement_stats() {
        let inst = instance();
        let m = Arrangement::empty_for(&inst);
        let s = ArrangementStats::of(&inst, &m);
        assert_eq!(s.num_pairs, 0);
        assert_eq!(s.users_served, 0);
        assert_eq!(s.events_used, 0);
        assert_eq!(s.utility, 0.0);
        assert!(s.feasible);
    }
}
