//! Serialization of IGEPA instances.
//!
//! Instances can be exported to (and re-imported from) a self-contained JSON
//! document. The format stores exactly the information of Definition 8 —
//! events, users with bids, the conflict pairs, the interest values of the
//! bid pairs, the per-user interaction scores and β — and re-import goes
//! through [`InstanceBuilder`], so a tampered or hand-written file is
//! subjected to the same validation as programmatic construction.
//!
//! This is what an EBSN platform would use to snapshot a concrete
//! arrangement problem, and what the experiment harness uses to archive the
//! exact workloads behind a published table.

use crate::arrangement::Arrangement;
use crate::attrs::AttributeVector;
use crate::conflict::PairSetConflict;
use crate::error::CoreError;
use crate::ids::{EventId, UserId};
use crate::instance::Instance;
use crate::interest::TableInterest;
use serde::{Deserialize, Serialize};

/// Self-contained, validated-on-load snapshot of an [`Instance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSnapshot {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Balance parameter β.
    pub beta: f64,
    /// Per-event capacity and attributes, in event-id order.
    pub events: Vec<EventRecord>,
    /// Per-user capacity, attributes and bids, in user-id order.
    pub users: Vec<UserRecord>,
    /// Unordered conflicting event pairs.
    pub conflicts: Vec<(u32, u32)>,
    /// Interest values of the bid pairs: `(event, user, SI)`.
    pub interests: Vec<(u32, u32, f64)>,
    /// Degree of potential interaction per user, in user-id order.
    pub interaction: Vec<f64>,
}

/// Serialized event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Capacity `c_v`.
    pub capacity: usize,
    /// Attribute vector `l_v`.
    pub attrs: AttributeVector,
}

/// Serialized user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserRecord {
    /// Capacity `c_u`.
    pub capacity: usize,
    /// Attribute vector `l_u`.
    pub attrs: AttributeVector,
    /// Bid set `N_u` as event indices.
    pub bids: Vec<u32>,
}

/// Errors raised while loading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The JSON text could not be parsed.
    Parse(serde_json::Error),
    /// The decoded snapshot violates a model invariant.
    Invalid(CoreError),
    /// The snapshot version is not supported.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Parse(e) => write!(f, "cannot parse instance snapshot: {e}"),
            SnapshotError::Invalid(e) => write!(f, "invalid instance snapshot: {e}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl InstanceSnapshot {
    /// Captures a snapshot of an instance.
    pub fn capture(instance: &Instance) -> Self {
        let events = instance
            .events()
            .iter()
            .map(|e| EventRecord {
                capacity: e.capacity,
                attrs: e.attrs.clone(),
            })
            .collect();
        let users = instance
            .users()
            .iter()
            .map(|u| UserRecord {
                capacity: u.capacity,
                attrs: u.attrs.clone(),
                bids: u.bids.iter().map(|v| v.0).collect(),
            })
            .collect();
        let mut conflicts = Vec::new();
        for i in 0..instance.num_events() {
            for j in (i + 1)..instance.num_events() {
                if instance
                    .conflicts()
                    .conflicts(EventId::new(i), EventId::new(j))
                {
                    conflicts.push((i as u32, j as u32));
                }
            }
        }
        let mut interests = Vec::new();
        for user in instance.users() {
            for &v in &user.bids {
                interests.push((v.0, user.id.0, instance.interest(v, user.id)));
            }
        }
        let interaction = (0..instance.num_users())
            .map(|i| instance.interaction(UserId::new(i)))
            .collect();
        InstanceSnapshot {
            version: SNAPSHOT_VERSION,
            beta: instance.beta(),
            events,
            users,
            conflicts,
            interests,
            interaction,
        }
    }

    /// Rebuilds a validated instance from the snapshot.
    pub fn restore(&self) -> Result<Instance, SnapshotError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(self.version));
        }
        let mut builder = Instance::builder();
        builder.beta(self.beta);
        for event in &self.events {
            builder.add_event(event.capacity, event.attrs.clone());
        }
        for user in &self.users {
            let bids = user.bids.iter().map(|&v| EventId(v)).collect();
            builder.add_user(user.capacity, user.attrs.clone(), bids);
        }
        builder.interaction_scores(self.interaction.clone());

        let mut sigma = PairSetConflict::new();
        for &(a, b) in &self.conflicts {
            sigma.add(EventId(a), EventId(b));
        }
        let mut interest = TableInterest::zeros(self.events.len(), self.users.len());
        for &(v, u, si) in &self.interests {
            if (v as usize) < self.events.len() && (u as usize) < self.users.len() {
                interest.set(EventId(v), UserId(u), si);
            }
        }
        builder
            .build(&sigma, &interest)
            .map_err(SnapshotError::Invalid)
    }

    /// Serializes the snapshot to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// Parses a snapshot from JSON.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        serde_json::from_str(text).map_err(SnapshotError::Parse)
    }
}

/// Convenience: `instance → JSON`.
pub fn instance_to_json(instance: &Instance) -> String {
    InstanceSnapshot::capture(instance).to_json()
}

/// Convenience: `JSON → validated instance`.
pub fn instance_from_json(text: &str) -> Result<Instance, SnapshotError> {
    InstanceSnapshot::from_json(text)?.restore()
}

/// Serialized arrangement: the list of `(event, user)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrangementSnapshot {
    /// Pairs of the arrangement.
    pub pairs: Vec<(u32, u32)>,
}

impl ArrangementSnapshot {
    /// Captures an arrangement.
    pub fn capture(arrangement: &Arrangement) -> Self {
        ArrangementSnapshot {
            pairs: arrangement.pairs().map(|(v, u)| (v.0, u.0)).collect(),
        }
    }

    /// Restores the arrangement against a given instance (pairs referencing
    /// unknown events/users are rejected).
    pub fn restore(&self, instance: &Instance) -> Result<Arrangement, SnapshotError> {
        let mut arrangement = Arrangement::empty_for(instance);
        for &(v, u) in &self.pairs {
            if v as usize >= instance.num_events() {
                return Err(SnapshotError::Invalid(CoreError::NonDenseEventIds {
                    position: v as usize,
                    found: EventId(v),
                }));
            }
            if u as usize >= instance.num_users() {
                return Err(SnapshotError::Invalid(CoreError::NonDenseUserIds {
                    position: u as usize,
                    found: UserId(u),
                }));
            }
            arrangement.assign(EventId(v), UserId(u));
        }
        Ok(arrangement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::PairSetConflict;
    use crate::interest::ConstantInterest;

    fn sample_instance() -> Instance {
        let mut b = Instance::builder();
        let v0 = b.add_event(
            2,
            AttributeVector::from_time(0, 90).with_categories(vec![1.0, 0.0]),
        );
        let v1 = b.add_event(1, AttributeVector::from_time(60, 90));
        b.add_user(
            2,
            AttributeVector::from_categories(vec![0.5, 0.5]),
            vec![v0, v1],
        );
        b.add_user(1, AttributeVector::empty(), vec![v0]);
        b.interaction_scores(vec![0.25, 0.75]);
        b.beta(0.3);
        let mut sigma = PairSetConflict::new();
        sigma.add(v0, v1);
        b.build(&sigma, &ConstantInterest(0.6)).unwrap()
    }

    #[test]
    fn snapshot_roundtrip_preserves_the_model() {
        let original = sample_instance();
        let json = instance_to_json(&original);
        let restored = instance_from_json(&json).unwrap();
        assert_eq!(restored.num_events(), original.num_events());
        assert_eq!(restored.num_users(), original.num_users());
        assert_eq!(restored.beta(), original.beta());
        assert_eq!(restored.num_bids(), original.num_bids());
        for user in original.users() {
            assert_eq!(restored.user(user.id).bids, user.bids);
            assert_eq!(restored.user(user.id).capacity, user.capacity);
            assert!((restored.interaction(user.id) - original.interaction(user.id)).abs() < 1e-12);
            for &v in &user.bids {
                assert!(
                    (restored.interest(v, user.id) - original.interest(v, user.id)).abs() < 1e-12
                );
            }
        }
        for i in 0..original.num_events() {
            for j in 0..original.num_events() {
                assert_eq!(
                    restored
                        .conflicts()
                        .conflicts(EventId::new(i), EventId::new(j)),
                    original
                        .conflicts()
                        .conflicts(EventId::new(i), EventId::new(j))
                );
            }
        }
    }

    #[test]
    fn corrupted_interaction_scores_are_rejected_on_load() {
        let mut snapshot = InstanceSnapshot::capture(&sample_instance());
        snapshot.interaction[0] = 2.5;
        let err = snapshot.restore().unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Invalid(CoreError::InteractionOutOfRange { .. })
        ));
    }

    #[test]
    fn corrupted_bids_are_rejected_on_load() {
        let mut snapshot = InstanceSnapshot::capture(&sample_instance());
        snapshot.users[0].bids.push(99);
        let err = snapshot.restore().unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Invalid(CoreError::UnknownEventInBid { .. })
        ));
    }

    #[test]
    fn unsupported_versions_are_rejected() {
        let mut snapshot = InstanceSnapshot::capture(&sample_instance());
        snapshot.version = 99;
        assert!(matches!(
            snapshot.restore().unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        ));
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = instance_from_json("{not json").unwrap_err();
        assert!(matches!(err, SnapshotError::Parse(_)));
        assert!(err.to_string().contains("parse"));
    }

    #[test]
    fn arrangement_snapshot_roundtrip() {
        let instance = sample_instance();
        let mut m = Arrangement::empty_for(&instance);
        m.assign(EventId::new(0), UserId::new(0));
        m.assign(EventId::new(0), UserId::new(1));
        let snap = ArrangementSnapshot::capture(&m);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ArrangementSnapshot = serde_json::from_str(&json).unwrap();
        let restored = back.restore(&instance).unwrap();
        assert_eq!(restored, m);
    }

    #[test]
    fn arrangement_snapshot_rejects_unknown_entities() {
        let instance = sample_instance();
        let snap = ArrangementSnapshot {
            pairs: vec![(9, 0)],
        };
        assert!(snap.restore(&instance).is_err());
        let snap = ArrangementSnapshot {
            pairs: vec![(0, 9)],
        };
        assert!(snap.restore(&instance).is_err());
    }
}
