//! Admissible event sets (Section III of the paper).
//!
//! For a user `u`, an *admissible event set* `S ⊆ N_u` is a non-empty set
//! whose cardinality is at most `c_u` and whose events are pairwise
//! conflict-free. The benchmark LP of the LP-packing algorithm has one
//! variable per (user, admissible set) pair, so enumerating these sets —
//! and keeping their number under control — is a core building block.
//!
//! The paper notes that "a user will not bid for too many events, so the
//! number of admissible event sets will be reasonable"; the enumerator below
//! still guards against pathological inputs with an explicit per-user limit
//! and reports [`CoreError::AdmissibleSetExplosion`] when it is exceeded.

use crate::error::CoreError;
use crate::ids::{EventId, UserId};
use crate::instance::Instance;

/// Default per-user cap on the number of admissible sets enumerated.
pub const DEFAULT_SET_LIMIT: usize = 100_000;

/// All admissible event sets of a single user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserAdmissibleSets {
    /// The user these sets belong to.
    pub user: UserId,
    /// Each inner vector is one admissible set, sorted by event id. The
    /// collection contains every non-empty admissible set (it is closed
    /// under taking non-empty subsets, as required by the LP formulation).
    pub sets: Vec<Vec<EventId>>,
}

impl UserAdmissibleSets {
    /// Number of admissible sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the user has no admissible set (no bids).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

/// Admissible event sets for every user of an instance.
#[derive(Debug, Clone)]
pub struct AdmissibleSetIndex {
    per_user: Vec<UserAdmissibleSets>,
}

impl AdmissibleSetIndex {
    /// Enumerates the admissible sets of every user with the default limit.
    pub fn build(instance: &Instance) -> Result<Self, CoreError> {
        Self::build_with_limit(instance, DEFAULT_SET_LIMIT)
    }

    /// Enumerates the admissible sets of every user, failing if any single
    /// user would exceed `limit` sets.
    pub fn build_with_limit(instance: &Instance, limit: usize) -> Result<Self, CoreError> {
        let mut per_user = Vec::with_capacity(instance.num_users());
        for user in instance.users() {
            let sets = enumerate_for_user(instance, user.id, limit)?;
            per_user.push(UserAdmissibleSets {
                user: user.id,
                sets,
            });
        }
        Ok(AdmissibleSetIndex { per_user })
    }

    /// Admissible sets of the given user.
    pub fn of(&self, user: UserId) -> &UserAdmissibleSets {
        &self.per_user[user.index()]
    }

    /// Iterates over the per-user collections in user-id order.
    pub fn iter(&self) -> impl Iterator<Item = &UserAdmissibleSets> {
        self.per_user.iter()
    }

    /// Total number of (user, admissible set) pairs — the number of LP
    /// variables the benchmark LP will have.
    pub fn total_sets(&self) -> usize {
        self.per_user.iter().map(|s| s.len()).sum()
    }

    /// The largest number of admissible sets any single user has.
    pub fn max_sets_per_user(&self) -> usize {
        self.per_user.iter().map(|s| s.len()).max().unwrap_or(0)
    }
}

/// Enumerates the admissible event sets of one user.
///
/// The enumeration walks the user's bid list in id order and extends partial
/// sets only with later, non-conflicting events, so every set is produced
/// exactly once (in lexicographic order of sorted ids).
pub fn enumerate_for_user(
    instance: &Instance,
    user: UserId,
    limit: usize,
) -> Result<Vec<Vec<EventId>>, CoreError> {
    let u = instance.user(user);
    let bids = &u.bids;
    let capacity = u.capacity;
    let conflicts = instance.conflicts();
    let mut out: Vec<Vec<EventId>> = Vec::new();
    if capacity == 0 || bids.is_empty() {
        return Ok(out);
    }

    // Depth-first enumeration over the sorted bid list.
    let mut stack: Vec<EventId> = Vec::with_capacity(capacity);
    fn recurse(
        bids: &[EventId],
        start: usize,
        capacity: usize,
        conflicts: &crate::conflict::ConflictMatrix,
        stack: &mut Vec<EventId>,
        out: &mut Vec<Vec<EventId>>,
        limit: usize,
        user: UserId,
    ) -> Result<(), CoreError> {
        for i in start..bids.len() {
            let candidate = bids[i];
            if stack
                .iter()
                .any(|&chosen| conflicts.conflicts(chosen, candidate))
            {
                continue;
            }
            stack.push(candidate);
            if out.len() >= limit {
                return Err(CoreError::AdmissibleSetExplosion { user, limit });
            }
            out.push(stack.clone());
            if stack.len() < capacity {
                recurse(bids, i + 1, capacity, conflicts, stack, out, limit, user)?;
            }
            stack.pop();
        }
        Ok(())
    }

    recurse(
        bids, 0, capacity, conflicts, &mut stack, &mut out, limit, user,
    )?;
    Ok(out)
}

/// Counts the admissible sets of one user without materialising them.
pub fn count_for_user(instance: &Instance, user: UserId) -> usize {
    let u = instance.user(user);
    let bids = &u.bids;
    let capacity = u.capacity;
    let conflicts = instance.conflicts();
    if capacity == 0 || bids.is_empty() {
        return 0;
    }
    fn recurse(
        bids: &[EventId],
        start: usize,
        remaining: usize,
        chosen: &mut Vec<EventId>,
        conflicts: &crate::conflict::ConflictMatrix,
    ) -> usize {
        let mut count = 0;
        for i in start..bids.len() {
            let candidate = bids[i];
            if chosen.iter().any(|&c| conflicts.conflicts(c, candidate)) {
                continue;
            }
            count += 1;
            if remaining > 1 {
                chosen.push(candidate);
                count += recurse(bids, i + 1, remaining - 1, chosen, conflicts);
                chosen.pop();
            }
        }
        count
    }
    recurse(bids, 0, capacity, &mut Vec::new(), conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeVector;
    use crate::conflict::{NeverConflict, PairSetConflict};
    use crate::interest::ConstantInterest;
    use crate::Instance;

    /// Builds an instance with one user bidding for `num_events` events,
    /// user capacity `cap`, and the given conflicting pairs.
    fn single_user_instance(
        num_events: usize,
        cap: usize,
        conflicting: &[(usize, usize)],
    ) -> Instance {
        let mut b = Instance::builder();
        let events: Vec<EventId> = (0..num_events)
            .map(|_| b.add_event(10, AttributeVector::empty()))
            .collect();
        b.add_user(cap, AttributeVector::empty(), events.clone());
        let mut sigma = PairSetConflict::new();
        for &(i, j) in conflicting {
            sigma.add(EventId::new(i), EventId::new(j));
        }
        b.build(&sigma, &ConstantInterest(0.5)).unwrap()
    }

    #[test]
    fn no_conflicts_enumerates_all_bounded_subsets() {
        // 4 events, capacity 2 -> C(4,1) + C(4,2) = 4 + 6 = 10 sets.
        let inst = single_user_instance(4, 2, &[]);
        let sets = enumerate_for_user(&inst, UserId::new(0), 1000).unwrap();
        assert_eq!(sets.len(), 10);
        assert_eq!(count_for_user(&inst, UserId::new(0)), 10);
    }

    #[test]
    fn capacity_one_yields_singletons_only() {
        let inst = single_user_instance(5, 1, &[]);
        let sets = enumerate_for_user(&inst, UserId::new(0), 1000).unwrap();
        assert_eq!(sets.len(), 5);
        assert!(sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn conflicts_prune_sets() {
        // Events 0-1 conflict and 2-3 conflict; capacity 2.
        // Singletons: 4. Pairs: all C(4,2)=6 minus {0,1} and {2,3} = 4.
        let inst = single_user_instance(4, 2, &[(0, 1), (2, 3)]);
        let sets = enumerate_for_user(&inst, UserId::new(0), 1000).unwrap();
        assert_eq!(sets.len(), 8);
        for s in &sets {
            assert!(inst.conflicts().set_is_conflict_free(s));
        }
    }

    #[test]
    fn all_events_conflict_yields_singletons() {
        let pairs: Vec<(usize, usize)> = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (i, j)))
            .collect();
        let inst = single_user_instance(4, 3, &pairs);
        let sets = enumerate_for_user(&inst, UserId::new(0), 1000).unwrap();
        assert_eq!(sets.len(), 4);
        assert!(sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn zero_capacity_user_has_no_sets() {
        let inst = single_user_instance(3, 0, &[]);
        assert!(enumerate_for_user(&inst, UserId::new(0), 1000)
            .unwrap()
            .is_empty());
        assert_eq!(count_for_user(&inst, UserId::new(0)), 0);
    }

    #[test]
    fn explosion_limit_is_enforced() {
        let inst = single_user_instance(10, 5, &[]);
        let err = enumerate_for_user(&inst, UserId::new(0), 7).unwrap_err();
        assert!(matches!(
            err,
            CoreError::AdmissibleSetExplosion { limit: 7, .. }
        ));
    }

    #[test]
    fn sets_are_closed_under_nonempty_subsets() {
        let inst = single_user_instance(5, 3, &[(0, 4), (1, 3)]);
        let sets = enumerate_for_user(&inst, UserId::new(0), 100_000).unwrap();
        use std::collections::HashSet;
        let as_keys: HashSet<Vec<EventId>> = sets.iter().cloned().collect();
        for s in &sets {
            if s.len() > 1 {
                // remove each element in turn; result must also be admissible
                for skip in 0..s.len() {
                    let mut sub = s.clone();
                    sub.remove(skip);
                    assert!(as_keys.contains(&sub), "subset {sub:?} of {s:?} missing");
                }
            }
        }
    }

    #[test]
    fn index_aggregates_all_users() {
        let mut b = Instance::builder();
        let v0 = b.add_event(10, AttributeVector::empty());
        let v1 = b.add_event(10, AttributeVector::empty());
        b.add_user(2, AttributeVector::empty(), vec![v0, v1]);
        b.add_user(1, AttributeVector::empty(), vec![v1]);
        b.add_user(3, AttributeVector::empty(), vec![]);
        let inst = b.build(&NeverConflict, &ConstantInterest(0.1)).unwrap();
        let index = AdmissibleSetIndex::build(&inst).unwrap();
        assert_eq!(index.of(UserId::new(0)).len(), 3); // {v0},{v1},{v0,v1}
        assert_eq!(index.of(UserId::new(1)).len(), 1);
        assert!(index.of(UserId::new(2)).is_empty());
        assert_eq!(index.total_sets(), 4);
        assert_eq!(index.max_sets_per_user(), 3);
    }

    #[test]
    fn enumeration_matches_counting() {
        let inst = single_user_instance(7, 3, &[(0, 2), (1, 5), (3, 6), (2, 4)]);
        let sets = enumerate_for_user(&inst, UserId::new(0), 100_000).unwrap();
        assert_eq!(sets.len(), count_for_user(&inst, UserId::new(0)));
    }
}
