//! Golden-diagnostic fixture tests: every rule must fire on its `bad`
//! fixture and stay quiet on its `good` fixture, with the exact JSON
//! diagnostics pinned as golden artifacts under `tests/golden/`.
//!
//! Regenerate the goldens after an intentional rule change with
//! `UPDATE_GOLDEN=1 cargo test -p igepa-lint --test fixtures` (the same
//! idiom as the durability golden logs) and review the diff.

use igepa_lint::config::Config;
use igepa_lint::diagnostics::{render_json, Diagnostic};
use igepa_lint::run_on;
use igepa_lint::workspace::{SourceFile, Workspace};
use std::fs;
use std::path::{Path, PathBuf};

fn tests_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests")
}

/// Compares `rendered` against the checked-in golden, or rewrites the
/// golden when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, rendered: &str) {
    let path = tests_dir().join("golden").join(format!("{name}.json"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1 cargo test -p igepa-lint --test fixtures",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "golden mismatch for `{name}`; if the rule change is intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// Lints one fixture file as if it lived at `scoped_path` in the real
/// workspace, keeping only `rule`'s diagnostics (the fixture root has
/// no bench artifacts, so other workspace-level rules would add noise).
fn lint_fixture(fixture: &str, scoped_path: &str, rule: &str) -> Vec<Diagnostic> {
    let src = fs::read_to_string(tests_dir().join("fixtures").join(fixture)).unwrap();
    let ws = Workspace {
        root: tests_dir().join("fixtures"),
        files: vec![SourceFile::parse(scoped_path.to_string(), &src)],
    };
    run_on(&ws, &Config::default())
        .diagnostics
        .into_iter()
        .filter(|d| d.rule == rule)
        .collect()
}

/// Lints a whole fixture mini-root (for workspace-level rules that
/// cross-check non-Rust artifacts).
fn lint_fixture_root(root_rel: &str, rule: &str) -> Vec<Diagnostic> {
    let root = tests_dir().join("fixtures").join(root_rel);
    igepa_lint::run(&root, &Config::default())
        .unwrap()
        .diagnostics
        .into_iter()
        .filter(|d| d.rule == rule)
        .collect()
}

fn assert_fires(diags: &[Diagnostic], rule: &str) {
    assert!(
        diags.iter().any(|d| d.is_active()),
        "`{rule}` produced no active diagnostics on its bad fixture"
    );
}

fn assert_quiet(diags: &[Diagnostic], rule: &str) {
    let active: Vec<String> = diags
        .iter()
        .filter(|d| d.is_active())
        .map(|d| format!("{}:{} {}", d.file, d.line, d.message))
        .collect();
    assert!(
        active.is_empty(),
        "`{rule}` flagged its good fixture:\n{}",
        active.join("\n")
    );
}

#[test]
fn float_accum_fires_on_bad_fixture() {
    let rule = "no-raw-float-accum";
    let diags = lint_fixture(
        "float_accum/bad.rs",
        "crates/igepa-engine/src/fixture.rs",
        rule,
    );
    assert_fires(&diags, rule);
    check_golden("float_accum_bad", &render_json(&diags));
}

#[test]
fn float_accum_quiet_on_good_fixture() {
    let rule = "no-raw-float-accum";
    let diags = lint_fixture(
        "float_accum/good.rs",
        "crates/igepa-engine/src/fixture.rs",
        rule,
    );
    assert_quiet(&diags, rule);
    check_golden("float_accum_good", &render_json(&diags));
}

#[test]
fn panic_paths_fires_on_bad_fixture() {
    let rule = "no-panic-in-server-paths";
    let diags = lint_fixture(
        "panic_paths/bad.rs",
        "crates/igepa-engine/src/transport.rs",
        rule,
    );
    assert_fires(&diags, rule);
    check_golden("panic_paths_bad", &render_json(&diags));
}

#[test]
fn panic_paths_quiet_on_good_fixture() {
    let rule = "no-panic-in-server-paths";
    let diags = lint_fixture(
        "panic_paths/good.rs",
        "crates/igepa-engine/src/transport.rs",
        rule,
    );
    assert_quiet(&diags, rule);
    check_golden("panic_paths_good", &render_json(&diags));
}

#[test]
fn serde_compat_fires_on_bad_fixture() {
    let rule = "serde-compat";
    let diags = lint_fixture(
        "serde_compat/bad.rs",
        "crates/igepa-engine/src/fixture.rs",
        rule,
    );
    assert_fires(&diags, rule);
    check_golden("serde_compat_bad", &render_json(&diags));
}

#[test]
fn serde_compat_quiet_on_good_fixture() {
    let rule = "serde-compat";
    let diags = lint_fixture(
        "serde_compat/good.rs",
        "crates/igepa-engine/src/fixture.rs",
        rule,
    );
    assert_quiet(&diags, rule);
    check_golden("serde_compat_good", &render_json(&diags));
}

#[test]
fn lock_discipline_fires_on_bad_fixture() {
    let rule = "lock-discipline";
    let diags = lint_fixture(
        "lock_discipline/bad.rs",
        "crates/igepa-engine/src/fixture.rs",
        rule,
    );
    assert_fires(&diags, rule);
    check_golden("lock_discipline_bad", &render_json(&diags));
}

#[test]
fn lock_discipline_quiet_on_good_fixture() {
    let rule = "lock-discipline";
    let diags = lint_fixture(
        "lock_discipline/good.rs",
        "crates/igepa-engine/src/fixture.rs",
        rule,
    );
    assert_quiet(&diags, rule);
    check_golden("lock_discipline_good", &render_json(&diags));
}

#[test]
fn suppression_hygiene_fires_on_bad_fixture() {
    let rule = igepa_lint::SUPPRESSION_HYGIENE;
    let diags = lint_fixture(
        "suppression_hygiene/bad.rs",
        "crates/igepa-engine/src/fixture.rs",
        rule,
    );
    assert_fires(&diags, rule);
    check_golden("suppression_hygiene_bad", &render_json(&diags));
}

#[test]
fn suppression_hygiene_quiet_on_good_fixture() {
    let rule = igepa_lint::SUPPRESSION_HYGIENE;
    let diags = lint_fixture(
        "suppression_hygiene/good.rs",
        "crates/igepa-engine/src/fixture.rs",
        rule,
    );
    assert_quiet(&diags, rule);
    check_golden("suppression_hygiene_good", &render_json(&diags));
}

#[test]
fn bench_schema_fires_on_bad_root() {
    let rule = "bench-schema";
    let diags = lint_fixture_root("bench_schema/bad_root", rule);
    assert_fires(&diags, rule);
    check_golden("bench_schema_bad", &render_json(&diags));
}

#[test]
fn bench_schema_quiet_on_good_root() {
    let rule = "bench-schema";
    let diags = lint_fixture_root("bench_schema/good_root", rule);
    assert_quiet(&diags, rule);
    check_golden("bench_schema_good", &render_json(&diags));
}
