//! The real workspace must lint clean: zero unsuppressed diagnostics
//! across every rule. This is the same gate CI's `static-analysis` job
//! enforces with `cargo run -p igepa-lint -- --deny-all`, run here as a
//! plain test so `cargo test` alone catches regressions.

use igepa_lint::config::Config;
use std::path::Path;

#[test]
fn workspace_has_zero_unsuppressed_diagnostics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = Config::default();
    let report = igepa_lint::run(&root, &cfg).unwrap();
    let failures: Vec<String> = report
        .failures(&cfg)
        .map(|d| format!("{}:{} [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        failures.is_empty(),
        "the workspace no longer lints clean — fix the finding or add a justified `// lint:allow(...)` marker:\n{}",
        failures.join("\n")
    );
}
