//! Fixture: suppression misuse the `suppression-hygiene` meta-rule
//! must flag — a marker with no justification, one naming an unknown
//! rule, one whose justification is too short, and a stale marker that
//! suppresses nothing.

// lint:allow(no-raw-float-accum)
pub fn missing_justification() {}

// lint:allow(no-such-rule): this rule id does not exist anywhere
pub fn unknown_rule() {}

// lint:allow(no-panic-in-server-paths): short
pub fn justification_too_short() {}

// lint:allow(no-raw-float-accum): nothing on the next line accumulates floats
pub fn stale_marker() {}
