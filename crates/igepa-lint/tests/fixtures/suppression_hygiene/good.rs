//! Fixture: a well-formed suppression that actually suppresses a
//! finding — the `suppression-hygiene` meta-rule must stay quiet.

pub fn accumulate(samples: &[f64]) -> f64 {
    let mut acc = 0.0;
    for s in samples {
        // lint:allow(no-raw-float-accum): fixture waiver — deterministic fold in caller order, never replayed state
        acc += s;
    }
    acc
}
