//! Fixture: raw float accumulation the `no-raw-float-accum` rule must
//! flag. Linted as if it lived at `crates/igepa-engine/src/fixture.rs`.

pub struct Totals {
    pub utility: f64,
}

pub fn accumulate(samples: &[f64]) -> f64 {
    let mut acc = 0.0;
    for s in samples {
        acc += s;
    }
    acc
}

pub fn fold(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>()
}

pub fn drain(t: &mut Totals, amount: f64) {
    t.utility -= amount;
}

#[cfg(test)]
mod tests {
    #[test]
    fn accumulation_in_tests_is_fine() {
        let mut acc = 0.0;
        acc += 1.5;
        assert!(acc > 1.0);
    }
}
