//! Fixture: accumulation patterns the `no-raw-float-accum` rule must
//! accept — integer folds, and a float fold waived with a justified
//! inline suppression.

pub fn count(samples: &[u64]) -> u64 {
    let mut events = 0;
    for s in samples {
        events += s;
    }
    events
}

pub fn replayed(samples: &[f64]) -> f64 {
    let mut acc = 0.0;
    for s in samples {
        // lint:allow(no-raw-float-accum): fixture waiver — reproduces the serial fold in caller order bit for bit
        acc += s;
    }
    acc
}
