//! Fixture: lock usage the `lock-discipline` rule must accept —
//! poison-recovering helpers and strictly sequential guard scopes.

use std::sync::{Mutex, MutexGuard, PoisonError};

pub struct State {
    counter: Mutex<u64>,
}

impl State {
    fn counter_guard(&self) -> MutexGuard<'_, u64> {
        // A poisoned mutex still holds coherent data here; recover the
        // guard instead of cascading the panic.
        self.counter.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn bump(&self) -> u64 {
        let mut guard = self.counter_guard();
        *guard += 1;
        *guard
    }

    pub fn read_twice(&self) -> u64 {
        let first = *self.counter_guard();
        let second = *self.counter_guard();
        first + second
    }
}
