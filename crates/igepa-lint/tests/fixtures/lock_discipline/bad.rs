//! Fixture: lock misuse the `lock-discipline` rule must flag —
//! poisoning unwraps and a nested acquisition while a guard is held.

use std::sync::{Mutex, RwLock};

pub struct State {
    counter: Mutex<u64>,
    table: RwLock<Vec<u64>>,
}

impl State {
    pub fn bump(&self) -> u64 {
        let mut guard = self.counter.lock().unwrap();
        *guard += 1;
        *guard
    }

    pub fn nested(&self) -> u64 {
        let table = self.table.read().expect("poisoned");
        let extra = self.counter.lock().unwrap();
        table.len() as u64 + *extra
    }
}
