//! Fixture: baseline drift the `serde-compat` rule must flag — a new
//! field on a pinned type, a pinned field gone missing, and a brand-new
//! wire-named Deserialize type with no baseline entry.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoordinatorStats {
    pub reconcile_passes: u64,
    pub quota_moved: u64,
    pub shiny_new_counter: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RetryPolicy {
    pub max_attempts: u64,
}
