//! Fixture: wire types the `serde-compat` rule must accept — a pinned
//! type matching its baseline exactly, and a Serialize-only type the
//! rule must ignore.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoordinatorStats {
    pub reconcile_passes: u64,
    pub quota_moved: u64,
    pub last_boundary_events: usize,
    pub reshards: u64,
    pub users_migrated: u64,
    pub migration_proposals: u64,
}

#[derive(Debug, Clone, Serialize)]
pub struct DebugStats {
    pub samples: u64,
}
