//! Fixture: panics the `no-panic-in-server-paths` rule must flag.
//! Linted as if it lived at `crates/igepa-engine/src/transport.rs`.

pub fn serve(input: Option<u32>) -> u32 {
    let value = input.unwrap();
    if value > 10 {
        panic!("too big");
    }
    value
}

pub fn lookup(map: &std::collections::BTreeMap<u32, u32>, key: u32) -> u32 {
    *map.get(&key).expect("key must exist")
}

pub fn unfinished() {
    todo!("never ship this");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(serve(Some(1)), 1);
        assert!(Some(2).unwrap() == 2);
    }
}
