//! Fixture: failure handling the `no-panic-in-server-paths` rule must
//! accept — typed propagation, compiled-out debug assertions, and one
//! justified fail-fast waiver.

use std::io;

pub fn serve(input: Option<u32>) -> Result<u32, io::Error> {
    match input {
        Some(v) => Ok(v),
        None => Err(io::Error::other("no input on the wire")),
    }
}

pub fn guarded(v: u32) -> u32 {
    debug_assert!(v < 100, "compiled out in release builds");
    v
}

pub fn justified(slot: Option<u32>) -> u32 {
    // lint:allow(no-panic-in-server-paths): fixture waiver — documented fail-fast invariant with no request-scoped recovery
    slot.expect("fixture invariant")
}
