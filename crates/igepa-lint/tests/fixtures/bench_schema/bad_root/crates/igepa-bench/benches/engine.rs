fn main() {
    let families = ["apply/user_scoped"];
    let _ = families;
}
