//! A small hand-rolled Rust lexer, in the same vendoring spirit as
//! `vendor/serde`: just enough of the language to drive token-stream
//! analyses, with line numbers on every token and comments captured
//! separately so suppression markers can be recovered.
//!
//! The lexer understands the parts of Rust surface syntax that would
//! otherwise derail a naive scanner: nested block comments, string and
//! byte-string literals with escapes, raw strings with arbitrary `#`
//! fences, character literals vs. lifetimes, and numeric literals with
//! type suffixes. It does not build an AST; the rules work directly on
//! the token stream.

/// Kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `f64`, ...).
    Ident,
    /// Punctuation, longest-match (`+=`, `::`, `->`, single chars, ...).
    Punct,
    /// String, byte-string, or raw-string literal (quotes stripped not).
    Str,
    /// Character literal, e.g. `'x'`.
    Char,
    /// Lifetime, e.g. `'a` (text includes the quote).
    Lifetime,
    /// Numeric literal, integer or float, with any suffix attached.
    Num,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Raw token text as it appears in the source.
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: u32,
}

impl Tok {
    /// True if this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True if this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// A comment (line or block) with the line it starts on. Block comment
/// text keeps its interior verbatim; line comments drop the `//`.
#[derive(Debug, Clone)]
pub struct CommentTok {
    /// 1-based line number where the comment starts.
    pub line: u32,
    /// Comment body without the leading `//` / `/*` marker.
    pub text: String,
}

/// Output of [`lex`]: the token stream plus the captured comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<CommentTok>,
}

/// Multi-character punctuation, longest first so matching is greedy.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "<<", ">>", "::", "->", "=>", "..",
];

/// Lexes Rust source into tokens and comments. Unknown bytes are
/// skipped rather than rejected: the linter must never panic on the
/// tree it is checking.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                out.comments.push(CommentTok {
                    line,
                    text: src[start..end].to_string(),
                });
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut end = start;
                while end < bytes.len() && depth > 0 {
                    if bytes[end] == b'\n' {
                        line += 1;
                        end += 1;
                    } else if bytes[end] == b'/' && bytes.get(end + 1) == Some(&b'*') {
                        depth += 1;
                        end += 2;
                    } else if bytes[end] == b'*' && bytes.get(end + 1) == Some(&b'/') {
                        depth -= 1;
                        end += 2;
                    } else {
                        end += 1;
                    }
                }
                let body_end = end.saturating_sub(2).max(start);
                out.comments.push(CommentTok {
                    line: start_line,
                    text: src[start..body_end].to_string(),
                });
                i = end;
            }
            b'"' => {
                let (tok, next, lines) = lex_string(src, i, line);
                out.tokens.push(tok);
                line += lines;
                i = next;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let (tok, next, lines) = lex_prefixed_string(src, i, line);
                out.tokens.push(tok);
                line += lines;
                i = next;
            }
            b'\'' => {
                let (tok, next) = lex_quote(src, i, line);
                out.tokens.push(tok);
                i = next;
            }
            _ if c.is_ascii_digit() => {
                let (tok, next) = lex_number(src, i, line);
                out.tokens.push(tok);
                i = next;
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let mut end = i + 1;
                while end < bytes.len()
                    && (bytes[end] == b'_' || bytes[end].is_ascii_alphanumeric())
                {
                    end += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ => {
                let rest = &src[i..];
                let mut matched = 1usize;
                for p in PUNCTS {
                    if rest.starts_with(p) {
                        matched = p.len();
                        break;
                    }
                }
                if c.is_ascii() {
                    out.tokens.push(Tok {
                        kind: TokKind::Punct,
                        text: src[i..i + matched].to_string(),
                        line,
                    });
                    i += matched;
                } else {
                    // Skip a non-ASCII scalar without splitting it.
                    let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                    i += ch_len;
                }
            }
        }
    }
    out
}

/// True if position `i` begins `r"`, `r#`, `b"`, `br"`, or `br#`.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        matches!(bytes.get(j), Some(b'"') | Some(b'#'))
    } else {
        // Plain byte string `b"..."`.
        j == i + 1 && bytes.get(j) == Some(&b'"')
    }
}

/// Lexes a plain `"..."` string starting at `i` (which is the quote).
/// Returns the token, the index after the closing quote, and how many
/// newlines the literal spanned.
fn lex_string(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let bytes = src.as_bytes();
    let mut end = i + 1;
    let mut lines = 0u32;
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'\n' => {
                lines += 1;
                end += 1;
            }
            b'"' => {
                end += 1;
                break;
            }
            _ => end += 1,
        }
    }
    let end = end.min(bytes.len());
    (
        Tok {
            kind: TokKind::Str,
            text: src[i..end].to_string(),
            line,
        },
        end,
        lines,
    )
}

/// Lexes `b"..."`, `r"..."`, `r#"..."#`, `br#"..."#` starting at `i`.
fn lex_prefixed_string(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let bytes = src.as_bytes();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if !raw {
        // Plain byte string: same escape rules as a normal string.
        let (mut tok, end, lines) = lex_string(src, j, line);
        tok.text = src[i..end].to_string();
        return (tok, end, lines);
    }
    // Raw string: scan for `"` followed by `hashes` `#` characters.
    let mut end = j + 1; // past the opening quote
    let mut lines = 0u32;
    while end < bytes.len() {
        if bytes[end] == b'\n' {
            lines += 1;
            end += 1;
            continue;
        }
        if bytes[end] == b'"' {
            let mut k = end + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                end = k;
                break;
            }
        }
        end += 1;
    }
    let end = end.min(bytes.len());
    (
        Tok {
            kind: TokKind::Str,
            text: src[i..end].to_string(),
            line,
        },
        end,
        lines,
    )
}

/// Disambiguates a `'` at position `i`: either a char literal or a
/// lifetime. `'a'` is a char; `'a` followed by anything but `'` is a
/// lifetime; `'\n'` and friends are chars.
fn lex_quote(src: &str, i: usize, line: u32) -> (Tok, usize) {
    let bytes = src.as_bytes();
    match bytes.get(i + 1) {
        Some(b'\\') => {
            // Escaped char literal: consume escape then closing quote.
            let mut end = i + 2;
            // Escapes like \u{1F600} contain braces; scan to the quote.
            while end < bytes.len() && bytes[end] != b'\'' {
                end += 1;
            }
            let end = (end + 1).min(bytes.len());
            (
                Tok {
                    kind: TokKind::Char,
                    text: src[i..end].to_string(),
                    line,
                },
                end,
            )
        }
        Some(&c) if c == b'_' || c.is_ascii_alphanumeric() => {
            if bytes.get(i + 2) == Some(&b'\'') && !c.is_ascii_digit() {
                // 'x' — a one-character literal.
                (
                    Tok {
                        kind: TokKind::Char,
                        text: src[i..i + 3].to_string(),
                        line,
                    },
                    i + 3,
                )
            } else {
                // 'lifetime — consume identifier characters.
                let mut end = i + 1;
                while end < bytes.len()
                    && (bytes[end] == b'_' || bytes[end].is_ascii_alphanumeric())
                {
                    end += 1;
                }
                (
                    Tok {
                        kind: TokKind::Lifetime,
                        text: src[i..end].to_string(),
                        line,
                    },
                    end,
                )
            }
        }
        Some(_) if bytes.get(i + 2) == Some(&b'\'') => {
            // Non-alphanumeric char literal like '('.
            (
                Tok {
                    kind: TokKind::Char,
                    text: src[i..i + 3].to_string(),
                    line,
                },
                i + 3,
            )
        }
        _ => (
            Tok {
                kind: TokKind::Punct,
                text: "'".to_string(),
                line,
            },
            i + 1,
        ),
    }
}

/// Lexes a numeric literal starting at a digit, including `0x`/`0b`/
/// `0o` prefixes, decimal points, exponents, and type suffixes.
fn lex_number(src: &str, i: usize, line: u32) -> (Tok, usize) {
    let bytes = src.as_bytes();
    let mut end = i;
    let radix_prefixed =
        bytes[i] == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'b') | Some(b'o'));
    if radix_prefixed {
        end = i + 2;
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
    } else {
        while end < bytes.len() && (bytes[end].is_ascii_digit() || bytes[end] == b'_') {
            end += 1;
        }
        // A decimal point only if followed by a digit: `1.5` yes,
        // `1..5` and `1.max(2)` no.
        if bytes.get(end) == Some(&b'.') && bytes.get(end + 1).is_some_and(u8::is_ascii_digit) {
            end += 1;
            while end < bytes.len() && (bytes[end].is_ascii_digit() || bytes[end] == b'_') {
                end += 1;
            }
        }
        // Exponent: e[+-]?digits.
        if matches!(bytes.get(end), Some(b'e') | Some(b'E')) {
            let mut k = end + 1;
            if matches!(bytes.get(k), Some(b'+') | Some(b'-')) {
                k += 1;
            }
            if bytes.get(k).is_some_and(u8::is_ascii_digit) {
                end = k;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
            }
        }
        // Type suffix: f64, u32, usize, ...
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
    }
    (
        Tok {
            kind: TokKind::Num,
            text: src[i..end].to_string(),
            line,
        },
        end,
    )
}

/// True if a numeric literal's text denotes a floating-point value:
/// it has a decimal point, an exponent, or an `f32`/`f64` suffix.
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.bytes().zip(text.bytes().skip(1)).any(|(c, d)| {
            (c == b'e' || c == b'E') && (d.is_ascii_digit() || d == b'+' || d == b'-')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lexes_idents_puncts_and_lines() {
        let l = lex("let x = 1;\nx += 2.5;");
        let plus_eq = l.tokens.iter().find(|t| t.text == "+=").unwrap();
        assert_eq!(plus_eq.kind, TokKind::Punct);
        assert_eq!(plus_eq.line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert!(toks.contains(&(TokKind::Char, "'x'".to_string())));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r####"let s = r#"he said "hi""#;"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("he said")));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("// first\nfn main() {}\n/* block\nspans */ let x = 0;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].text, " first");
        assert_eq!(l.comments[1].line, 3);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let l = lex("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn float_literal_classification() {
        assert!(is_float_literal("0.5"));
        assert!(is_float_literal("1e3"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("10"));
        assert!(!is_float_literal("0xff"));
        assert!(!is_float_literal("1usize"));
    }

    #[test]
    fn method_calls_on_numbers_do_not_eat_the_dot() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Num, "1".to_string()));
        assert_eq!(toks[1], (TokKind::Punct, ".".to_string()));
        assert_eq!(toks[2], (TokKind::Ident, "max".to_string()));
    }
}
