//! Inline suppression markers.
//!
//! Syntax: `// lint:allow(rule-id): justification text`, with a
//! comma-separated rule list allowed inside the parentheses. The
//! justification is mandatory — a suppression that does not say *why*
//! the invariant is safe to waive is itself a diagnostic
//! (`suppression-hygiene`). A marker covers findings on its own line
//! and on the line directly below, so both trailing and standalone
//! placements work:
//!
//! ```text
//! total += x; // lint:allow(no-raw-float-accum): summary stat only
//!
//! // lint:allow(no-panic-in-server-paths): divergence is unrecoverable
//! let v = mirror.get(k).expect("mirror tracks the catalogue");
//! ```

use crate::lexer::CommentTok;

/// A parsed `lint:allow` marker.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the marker appears on; it covers `line` and `line + 1`.
    pub line: u32,
    /// Rule ids listed in the parentheses.
    pub rules: Vec<String>,
    /// Mandatory free-text justification after the closing `):`.
    pub justification: String,
}

impl Suppression {
    /// True if this marker covers `rule` findings on `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        (self.line == line || self.line + 1 == line) && self.rules.iter().any(|r| r == rule)
    }
}

/// A malformed marker, reported by the `suppression-hygiene` rule.
#[derive(Debug, Clone)]
pub struct SuppressionError {
    /// Line of the malformed marker.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Extracts `lint:allow` markers from a file's comments. Markers with
/// bad syntax or an empty justification are returned as errors.
pub fn parse_suppressions(comments: &[CommentTok]) -> (Vec<Suppression>, Vec<SuppressionError>) {
    let mut found = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        let text = c.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = text.strip_prefix("lint:allow") else {
            if text.starts_with("lint:") {
                errors.push(SuppressionError {
                    line: c.line,
                    message: format!(
                        "unrecognized lint marker `{}`; only `lint:allow(<rules>): <why>` is understood",
                        text.trim_end()
                    ),
                });
            }
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            errors.push(SuppressionError {
                line: c.line,
                message: "malformed suppression: expected `(` after `lint:allow`".to_string(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            errors.push(SuppressionError {
                line: c.line,
                message: "malformed suppression: missing `)` in `lint:allow(...)`".to_string(),
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            errors.push(SuppressionError {
                line: c.line,
                message: "malformed suppression: empty rule list".to_string(),
            });
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let Some(justification) = after.strip_prefix(':').map(str::trim) else {
            errors.push(SuppressionError {
                line: c.line,
                message:
                    "suppression is missing a justification: write `lint:allow(<rules>): <why>`"
                        .to_string(),
            });
            continue;
        };
        if justification.len() < 10 {
            errors.push(SuppressionError {
                line: c.line,
                message:
                    "suppression justification is empty or too short to explain anything; say why the invariant is safe to waive here"
                        .to_string(),
            });
            continue;
        }
        found.push(Suppression {
            line: c.line,
            rules,
            justification: justification.to_string(),
        });
    }
    (found, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Suppression>, Vec<SuppressionError>) {
        parse_suppressions(&lex(src).comments)
    }

    #[test]
    fn well_formed_marker_parses() {
        let (ok, err) = parse("x += 1.0; // lint:allow(no-raw-float-accum): summary stat only\n");
        assert_eq!(err.len(), 0);
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rules, vec!["no-raw-float-accum"]);
        assert!(ok[0].covers("no-raw-float-accum", 1));
        assert!(ok[0].covers("no-raw-float-accum", 2));
        assert!(!ok[0].covers("no-raw-float-accum", 3));
        assert!(!ok[0].covers("other-rule", 1));
    }

    #[test]
    fn missing_justification_is_an_error() {
        let (ok, err) = parse("// lint:allow(no-raw-float-accum)\n");
        assert!(ok.is_empty());
        assert_eq!(err.len(), 1);
        assert!(err[0].message.contains("justification"));
    }

    #[test]
    fn short_justification_is_an_error() {
        let (ok, err) = parse("// lint:allow(lock-discipline): ok\n");
        assert!(ok.is_empty());
        assert_eq!(err.len(), 1);
    }

    #[test]
    fn multiple_rules_in_one_marker() {
        let (ok, err) =
            parse("// lint:allow(rule-a, rule-b): both waived because this is a fixture\n");
        assert!(err.is_empty());
        assert_eq!(ok[0].rules.len(), 2);
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let (ok, err) = parse("// just a note about lint behaviour\n");
        assert!(ok.is_empty());
        assert!(err.is_empty());
    }
}
