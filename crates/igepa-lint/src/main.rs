//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p igepa-lint -- --deny-all --format json
//! ```
//!
//! Flags:
//!
//! * `--root <dir>` — workspace root (default: current directory).
//! * `--deny-all` — every rule fails the run (the CI mode; also the
//!   default).
//! * `--allow <rule>` — report `<rule>` findings without failing.
//! * `--deny <rule>` — re-promote a rule after `--allow`.
//! * `--format human|json` — output format (default human).
//! * `--show-suppressed` — include suppressed findings in human
//!   output (JSON always carries them).
//! * `--list-rules` — print the rule inventory and exit.
//!
//! Exit code is 1 when any unsuppressed finding of a denied rule
//! remains, 2 on usage or I/O errors, 0 otherwise.

use std::path::PathBuf;
use std::process::ExitCode;

use igepa_lint::config::{Config, Level};
use igepa_lint::{diagnostics, rules};

fn main() -> ExitCode {
    let mut cfg = Config::default();
    let mut root = PathBuf::from(".");
    let mut format_json = false;
    let mut show_suppressed = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--deny-all" => {
                cfg.levels.clear();
            }
            "--allow" => {
                let Some(rule) = args.next() else {
                    eprintln!("--allow needs a rule id");
                    return ExitCode::from(2);
                };
                cfg.levels.insert(rule, Level::Allow);
            }
            "--deny" => {
                let Some(rule) = args.next() else {
                    eprintln!("--deny needs a rule id");
                    return ExitCode::from(2);
                };
                cfg.levels.insert(rule, Level::Deny);
            }
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("human") => format_json = false,
                other => {
                    eprintln!("--format expects `human` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--show-suppressed" => show_suppressed = true,
            "--list-rules" => {
                for rule in rules::all_rules() {
                    println!("{:<26} {}", rule.id(), rule.summary());
                }
                println!(
                    "{:<26} suppression markers must be well-formed, justified, and live",
                    igepa_lint::SUPPRESSION_HYGIENE
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag `{other}`; see crate docs for usage");
                return ExitCode::from(2);
            }
        }
    }

    let report = match igepa_lint::run(&root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!(
                "igepa-lint: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if format_json {
        println!("{}", diagnostics::render_json(&report.diagnostics));
    } else {
        print!(
            "{}",
            diagnostics::render_human(&report.diagnostics, show_suppressed)
        );
    }
    if report.failures(&cfg).next().is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
