//! Workspace discovery and the per-file analysis model.
//!
//! The linter walks `crates/*/src` (plus each crate's `benches/`),
//! skipping `vendor/`, `target/`, and the lint fixtures themselves.
//! Each file is lexed once; `#[cfg(test)]` / `#[test]` regions are
//! annotated on the token stream so rules can skip test code.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Lexed, Tok};
use crate::suppress::{self, Suppression, SuppressionError};

/// One lexed source file ready for rule checks.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Token stream, in source order.
    pub tokens: Vec<Tok>,
    /// Parallel to `tokens`: true when the token sits inside a
    /// `#[cfg(test)]` item or a `#[test]` function.
    pub in_test: Vec<bool>,
    /// Inline suppression markers.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppression markers.
    pub suppression_errors: Vec<SuppressionError>,
    /// Raw source lines, for excerpts.
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Lexes and annotates `src`, attributing it to `rel_path`.
    pub fn parse(rel_path: String, src: &str) -> Self {
        let Lexed { tokens, comments } = lexer::lex(src);
        let in_test = annotate_test_regions(&tokens);
        let (suppressions, suppression_errors) = suppress::parse_suppressions(&comments);
        SourceFile {
            rel_path,
            tokens,
            in_test,
            suppressions,
            suppression_errors,
            lines: src.lines().map(str::to_string).collect(),
        }
    }

    /// The trimmed source line at 1-based `line`, for excerpts.
    pub fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// The whole workspace: every discovered source file plus the root,
/// so workspace-level rules can read non-Rust artifacts (CI config,
/// bench baselines).
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All lexed source files, sorted by path for stable output.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Discovers and lexes the workspace rooted at `root`.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut paths = Vec::new();
        let crates_dir = root.join("crates");
        for crate_entry in read_dir_sorted(&crates_dir)? {
            if !crate_entry.is_dir() {
                continue;
            }
            for sub in ["src", "benches"] {
                let dir = crate_entry.join(sub);
                if dir.is_dir() {
                    collect_rs_files(&dir, &mut paths)?;
                }
            }
        }
        let mut files = Vec::new();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if rel.contains("/tests/fixtures/") {
                continue;
            }
            let src = fs::read_to_string(&path)?;
            files.push(SourceFile::parse(rel, &src));
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Reads a workspace-relative non-Rust artifact (CI config, bench
    /// baseline) for workspace-level rules.
    pub fn read_artifact(&self, rel: &str) -> io::Result<String> {
        fs::read_to_string(self.root.join(rel))
    }
}

/// Directory entries sorted by name so runs are deterministic.
fn read_dir_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Marks tokens that belong to test-only code: items annotated with
/// `#[cfg(test)]` (including `cfg(all(test, ...))`) or `#[test]`-family
/// attributes. The marked span runs from the attribute through the end
/// of the following item (its matching `}` or terminating `;`).
pub fn annotate_test_regions(tokens: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let (attr_end, is_test_attr) = scan_attribute(tokens, i + 1);
            if is_test_attr {
                let item_end = skip_item(tokens, attr_end);
                for flag in in_test.iter_mut().take(item_end).skip(i) {
                    *flag = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Scans an attribute starting at its `[`; returns the index just past
/// the matching `]` and whether the attribute marks test-only code.
fn scan_attribute(tokens: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut negated = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (j + 1, is_test && !negated);
            }
        } else if t.is_ident("not") {
            // `#[cfg(not(test))]` gates *non*-test code.
            negated = true;
        } else if t.is_ident("test") {
            // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`.
            is_test = true;
        }
        j += 1;
    }
    (tokens.len(), is_test && !negated)
}

/// Skips the item that follows an attribute: further attributes, then
/// tokens until a `{...}` block closes at depth zero or a `;` ends a
/// declaration.
fn skip_item(tokens: &[Tok], mut i: usize) -> usize {
    // Chained attributes on the same item.
    while i < tokens.len()
        && tokens[i].is_punct("#")
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        let (next, _) = scan_attribute(tokens, i + 1);
        i = next;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(";") && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_flags(src: &str) -> Vec<(String, bool)> {
        let toks = lex(src).tokens;
        let flags = annotate_test_regions(&toks);
        toks.into_iter()
            .zip(flags)
            .map(|(t, f)| (t.text, f))
            .collect()
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn also_live() {}";
        let flags = test_flags(src);
        let unwrap_flag = flags.iter().find(|(t, _)| t == "unwrap").unwrap();
        assert!(unwrap_flag.1);
        let live = flags.iter().find(|(t, _)| t == "live").unwrap();
        assert!(!live.1);
        let also = flags.iter().find(|(t, _)| t == "also_live").unwrap();
        assert!(!also.1);
    }

    #[test]
    fn test_fn_attribute_is_marked() {
        let src = "#[test]\nfn checks() { assert!(true); }\nfn live() {}";
        let flags = test_flags(src);
        assert!(flags.iter().find(|(t, _)| t == "checks").unwrap().1);
        assert!(!flags.iter().find(|(t, _)| t == "live").unwrap().1);
    }

    #[test]
    fn cfg_all_test_is_marked() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }\nfn live() {}";
        let flags = test_flags(src);
        assert!(flags.iter().find(|(t, _)| t == "f").unwrap().1);
        assert!(!flags.iter().find(|(t, _)| t == "live").unwrap().1);
    }

    #[test]
    fn non_test_attributes_do_not_mark() {
        let src = "#[derive(Debug, Clone)]\nstruct S { x: u32 }";
        let flags = test_flags(src);
        assert!(flags.iter().all(|(_, f)| !f));
    }
}
