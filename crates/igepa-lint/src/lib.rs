//! `igepa-lint` — the workspace invariant checker.
//!
//! The engine's correctness story rests on cross-cutting conventions
//! that no compiler pass checks: all served utility accumulation flows
//! through `igepa_core::exact::ExactSum`, serving threads never panic,
//! wire types keep decoding legacy payloads, the transport layer never
//! nests locks or unwraps poison, and the CI perf gates reference
//! scenarios that exist. This crate makes those conventions
//! machine-enforced: an offline, registry-free static-analysis pass
//! built on a small hand-rolled Rust lexer (same vendoring spirit as
//! `vendor/serde`), run in CI as the `static-analysis` job.
//!
//! # Rules
//!
//! | id | invariant |
//! |----|-----------|
//! | `no-raw-float-accum` | raw `+=`/`-=`/`.sum()` on `f64` in `igepa-core`/`igepa-algos`/`igepa-engine` outside the approved kernels (`exact.rs`, `interest.rs`) breaks the bit-for-bit replay/recovery/one-shard≡monolithic pins |
//! | `no-panic-in-server-paths` | `unwrap()`/`expect()`/`panic!`-family macros in non-`#[cfg(test)]` code of `transport.rs`, `durability/`, `coordinator.rs`, `shard.rs` kill serving threads; failures must be refused with typed errors |
//! | `serde-compat` | fields of `Deserialize` config/snapshot types in `igepa-engine` must match a pinned baseline; new fields need a hand-written `None => default` decode arm (the vendored derive has no `#[serde(default)]`) |
//! | `lock-discipline` | `lock().unwrap()` poisoning cascades and nested guard scopes in the engine crate |
//! | `bench-schema` | scenario ids referenced by CI perf gates must exist in `BENCH_engine.json` and `benches/engine.rs` |
//! | `suppression-hygiene` | suppression markers must be well-formed, name real rules, justify themselves, and actually suppress something |
//!
//! # Suppressions
//!
//! A finding that reflects a *deliberate* waiver — a documented
//! fail-fast invariant, a sum that must reproduce the serial backend's
//! plain rounding — is suppressed inline, with a mandatory
//! justification:
//!
//! ```text
//! // lint:allow(no-raw-float-accum): reproduces the serial backend's
//! //   shard-order summation bit for bit (pinned by the replay test)
//! total += view.breakdown.total;
//! ```
//!
//! The marker covers its own line and the next; multiple rules are
//! comma-separated. A marker with no justification, an unknown rule
//! id, or one that suppresses nothing is itself a diagnostic, so the
//! waiver inventory can never rot silently.

pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod workspace;

use std::path::Path;

use config::{Config, Level};
use diagnostics::Diagnostic;
use workspace::Workspace;

/// Rule id of the suppression meta-rule.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

/// Outcome of a lint run.
pub struct Report {
    /// All findings, suppressed ones included, sorted by location.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Active (unsuppressed) findings for denied rules.
    pub fn failures<'a>(&'a self, cfg: &'a Config) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.is_active() && cfg.level(&d.rule) == Level::Deny)
    }
}

/// Runs every rule over the workspace at `root` and applies inline
/// suppressions.
pub fn run(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let ws = Workspace::load(root)?;
    Ok(run_on(&ws, cfg))
}

/// Runs every rule over an already-loaded workspace.
pub fn run_on(ws: &Workspace, cfg: &Config) -> Report {
    let rules = rules::all_rules();
    let known_ids: Vec<&str> = rules
        .iter()
        .map(|r| r.id())
        .chain([SUPPRESSION_HYGIENE])
        .collect();
    let mut diags = Vec::new();
    for rule in &rules {
        for file in &ws.files {
            rule.check_file(cfg, file, &mut diags);
        }
        rule.check_workspace(cfg, ws, &mut diags);
    }

    // Apply inline suppressions.
    let mut used = vec![false; diags.len()];
    for file in &ws.files {
        for (di, d) in diags.iter_mut().enumerate() {
            if d.file != file.rel_path || d.suppressed_by.is_some() {
                continue;
            }
            if let Some(s) = file.suppressions.iter().find(|s| s.covers(&d.rule, d.line)) {
                d.suppressed_by = Some(s.justification.clone());
                used[di] = true;
            }
        }
    }

    // Suppression hygiene: malformed markers, unknown rule ids, and
    // markers that suppressed nothing.
    for file in &ws.files {
        for err in &file.suppression_errors {
            diags.push(Diagnostic {
                rule: SUPPRESSION_HYGIENE.to_string(),
                file: file.rel_path.clone(),
                line: err.line,
                message: err.message.clone(),
                excerpt: file.excerpt(err.line),
                suppressed_by: None,
            });
        }
        for s in &file.suppressions {
            for rule_name in &s.rules {
                if !known_ids.contains(&rule_name.as_str()) {
                    diags.push(Diagnostic {
                        rule: SUPPRESSION_HYGIENE.to_string(),
                        file: file.rel_path.clone(),
                        line: s.line,
                        message: format!(
                            "suppression names unknown rule `{rule_name}`; known rules: {}",
                            known_ids.join(", ")
                        ),
                        excerpt: file.excerpt(s.line),
                        suppressed_by: None,
                    });
                }
            }
            let suppressed_something = diags.iter().any(|d| {
                d.file == file.rel_path
                    && d.suppressed_by.as_deref() == Some(s.justification.as_str())
                    && s.covers(&d.rule, d.line)
            });
            let names_known_rule = s.rules.iter().any(|r| known_ids.contains(&r.as_str()));
            if !suppressed_something && names_known_rule {
                diags.push(Diagnostic {
                    rule: SUPPRESSION_HYGIENE.to_string(),
                    file: file.rel_path.clone(),
                    line: s.line,
                    message: format!(
                        "suppression for `{}` matches no finding; the code it waived has changed — delete the stale marker",
                        s.rules.join(", ")
                    ),
                    excerpt: file.excerpt(s.line),
                    suppressed_by: None,
                });
            }
        }
    }

    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    Report { diagnostics: diags }
}
