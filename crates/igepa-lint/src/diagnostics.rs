//! Diagnostic model and the two output formats (human and JSON).

use serde::Value;

/// One finding produced by a rule.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id, e.g. `no-raw-float-accum`.
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Set when an inline `lint:allow` suppression covered this
    /// finding; carries the suppression's justification text.
    pub suppressed_by: Option<String>,
}

impl Diagnostic {
    /// True if the finding is still active (not suppressed inline).
    pub fn is_active(&self) -> bool {
        self.suppressed_by.is_none()
    }
}

/// Renders diagnostics in the human `file:line: [rule] message` shape.
pub fn render_human(diags: &[Diagnostic], show_suppressed: bool) -> String {
    let mut out = String::new();
    for d in diags {
        if d.suppressed_by.is_some() && !show_suppressed {
            continue;
        }
        let tag = if d.suppressed_by.is_some() {
            "allowed"
        } else {
            "deny"
        };
        out.push_str(&format!(
            "{}:{}: [{}] {} ({})\n    {}\n",
            d.file, d.line, d.rule, d.message, tag, d.excerpt
        ));
        if let Some(why) = &d.suppressed_by {
            out.push_str(&format!("    suppressed: {why}\n"));
        }
    }
    let active = diags.iter().filter(|d| d.is_active()).count();
    let suppressed = diags.len() - active;
    out.push_str(&format!(
        "{active} unsuppressed diagnostic(s), {suppressed} suppressed\n"
    ));
    out
}

/// Renders the full report (active and suppressed findings) as JSON,
/// the format the CI job uploads as an artifact.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let to_value = |d: &Diagnostic| {
        let mut fields = vec![
            ("rule".to_string(), Value::String(d.rule.clone())),
            ("file".to_string(), Value::String(d.file.clone())),
            ("line".to_string(), Value::Int(i128::from(d.line))),
            ("message".to_string(), Value::String(d.message.clone())),
            ("excerpt".to_string(), Value::String(d.excerpt.clone())),
        ];
        if let Some(why) = &d.suppressed_by {
            fields.push(("suppressed_by".to_string(), Value::String(why.clone())));
        }
        Value::Object(fields)
    };
    let active: Vec<Value> = diags
        .iter()
        .filter(|d| d.is_active())
        .map(to_value)
        .collect();
    let suppressed: Vec<Value> = diags
        .iter()
        .filter(|d| !d.is_active())
        .map(to_value)
        .collect();
    let report = Value::Object(vec![
        ("unsuppressed".to_string(), Value::Int(active.len() as i128)),
        (
            "suppressed_count".to_string(),
            Value::Int(suppressed.len() as i128),
        ),
        ("diagnostics".to_string(), Value::Array(active)),
        ("suppressed".to_string(), Value::Array(suppressed)),
    ]);
    serde_json::to_string_pretty(&report).unwrap_or_else(|e| {
        // A Value tree always serializes; keep the linter panic-free
        // on principle regardless.
        format!("{{\"error\":\"report serialization failed: {e:?}\"}}")
    })
}
