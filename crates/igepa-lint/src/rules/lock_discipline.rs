//! Rule `lock-discipline`: poisoning unwraps and nested lock
//! acquisitions in the transport/dispatch layer.
//!
//! Two failure shapes, both observed in the wild:
//!
//! * `lock().unwrap()` / `read().expect(...)` — one panicking thread
//!   poisons the lock and every subsequent acquisition panics too,
//!   cascading a single fault across all connection threads. Recover
//!   the guard (`PoisonError::into_inner`) or surface a typed error.
//! * Acquiring a second lock while a guard from a first is still in
//!   scope — the classic AB/BA deadlock setup. The analysis is
//!   per-function and lexical (it cannot see through calls), which is
//!   exactly the granularity the transport layer is written to: each
//!   cache method takes one guard, briefly.
//!
//! Acquisition sites are `.lock()`, `.read()`, `.write()` with empty
//! argument lists — the empty parens distinguish `RwLock::read()` from
//! `io::Read::read(buf)`.

use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::rules::{function_bodies, Rule};
use crate::workspace::SourceFile;

/// Rule 4: lock discipline in the serving stack.
pub struct LockDiscipline;

impl Rule for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn summary(&self) -> &'static str {
        "lock().unwrap() poisoning cascades and nested guard scopes (deadlock shape) in the transport/dispatch layer"
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !file.rel_path.starts_with(cfg.lock_scope) {
            return;
        }
        let tokens = &file.tokens;
        for func in function_bodies(tokens, &file.in_test) {
            // Active guards: (brace depth at acquisition, line,
            // temporary). Temporaries die at the next `;`; let-bound
            // guards die when their block closes.
            let mut guards: Vec<(usize, u32, bool)> = Vec::new();
            let mut depth = 0usize;
            let mut stmt_start = func.body.0;
            for i in func.body.0..func.body.1 {
                let t = &tokens[i];
                if t.is_punct("{") {
                    depth += 1;
                    stmt_start = i + 1;
                    continue;
                }
                if t.is_punct("}") {
                    depth = depth.saturating_sub(1);
                    guards.retain(|&(d, _, _)| d <= depth);
                    stmt_start = i + 1;
                    continue;
                }
                if t.is_punct(";") {
                    guards.retain(|&(_, _, temp)| !temp);
                    stmt_start = i + 1;
                    continue;
                }
                let is_acquire = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
                    && i > func.body.0
                    && tokens[i - 1].is_punct(".")
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct(")"));
                if !is_acquire {
                    continue;
                }
                if file.in_test.get(i).copied().unwrap_or(false) {
                    continue;
                }
                if let Some(&(_, held_line, _)) = guards.first() {
                    out.push(Diagnostic {
                        rule: self.id().to_string(),
                        file: file.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "lock acquired while the guard from line {held_line} is still in scope; nested acquisitions are the AB/BA deadlock shape — narrow the first guard's scope or merge the critical sections"
                        ),
                        excerpt: file.excerpt(t.line),
                        suppressed_by: None,
                    });
                }
                // `.lock().unwrap()` / `.read().expect(...)`.
                if tokens.get(i + 3).is_some_and(|n| n.is_punct("."))
                    && tokens
                        .get(i + 4)
                        .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                {
                    out.push(Diagnostic {
                        rule: self.id().to_string(),
                        file: file.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "`.{}().{}()` panics on a poisoned lock and cascades the poison to every other thread; recover the guard with `unwrap_or_else(PoisonError::into_inner)` or surface a typed error",
                            t.text,
                            tokens[i + 4].text
                        ),
                        excerpt: file.excerpt(t.line),
                        suppressed_by: None,
                    });
                }
                let is_let_bound = tokens.get(stmt_start).is_some_and(|s| s.is_ident("let"));
                guards.push((depth, t.line, !is_let_bound));
            }
        }
    }
}
