//! Rule `no-panic-in-server-paths`: `unwrap()`/`expect()` and panic
//! macros in the non-test code of the serving stack.
//!
//! A panic on a connection, dispatcher, or worker thread kills that
//! thread and, at best, degrades the server silently; at worst it
//! poisons shared locks and cascades. Failures on these paths must be
//! refused with a typed [`EngineError`] (or propagate `io::Error` on
//! the durability paths) so the documented truncate-and-recover and
//! refuse-the-request behaviours stay reachable. Genuine fail-fast
//! invariants — e.g. shard/mirror divergence, where continuing would
//! serve corrupt state — stay as panics with an inline
//! `lint:allow(no-panic-in-server-paths): <why>` justification.

use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::rules::Rule;
use crate::workspace::SourceFile;

/// Rule 2: server paths must not panic.
pub struct PanicPaths;

/// Panic-family macros flagged when invoked with `!`.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "assert"];

impl Rule for PanicPaths {
    fn id(&self) -> &'static str {
        "no-panic-in-server-paths"
    }

    fn summary(&self) -> &'static str {
        "unwrap()/expect()/panic! in non-test server code kills serving threads; refuse with typed errors instead"
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !cfg.server_paths.contains(&file.rel_path.as_str()) {
            return;
        }
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            let t = &tokens[i];
            // `.unwrap()` / `.expect(...)` method calls.
            let is_unwrap_call = (t.is_ident("unwrap") || t.is_ident("expect"))
                && i > 0
                && tokens[i - 1].is_punct(".")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
            if is_unwrap_call {
                out.push(Diagnostic {
                    rule: self.id().to_string(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "`.{}()` on a server path panics the serving thread; refuse with a typed EngineError / io::Error, or justify a fail-fast invariant inline",
                        t.text
                    ),
                    excerpt: file.excerpt(t.line),
                    suppressed_by: None,
                });
                continue;
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!` /
            // `assert!`-family macro invocations.
            let is_panic_macro = t.kind == crate::lexer::TokKind::Ident
                && (PANIC_MACROS.contains(&t.text.as_str()) || t.text.starts_with("assert_"))
                && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"));
            if is_panic_macro {
                out.push(Diagnostic {
                    rule: self.id().to_string(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}!` on a server path aborts the serving thread; degrade to a typed error, or justify a fail-fast invariant inline",
                        t.text
                    ),
                    excerpt: file.excerpt(t.line),
                    suppressed_by: None,
                });
            }
        }
    }
}
