//! Rule `serde-compat`: every wire-compatible config/snapshot type in
//! `igepa-engine` must match the pinned field baseline.
//!
//! Legacy configs and v1/v2 snapshots must keep decoding forever: the
//! crash-recovery pin replays old WAL segments and snapshot payloads
//! byte-for-byte. The vendored serde derive has **no**
//! `#[serde(default)]`, so a field added to a `Deserialize` type is
//! only safe when its decode path is hand-written with a
//! `None => default` arm (see `EngineConfig::deserialize` and
//! `EngineSnapshotState::deserialize`). This rule pins the exact
//! field/variant lists of every such type; any drift — a new field, a
//! removed field, a new type matching the wire-compat naming patterns
//! — is a diagnostic until the author consciously updates the baseline
//! in `config.rs`, which is the reviewable act of saying "I checked
//! the legacy decode path".

use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::rules::Rule;
use crate::workspace::SourceFile;

/// Rule 3: wire-compat types must match the pinned baseline.
pub struct SerdeCompat;

/// Name fragments that mark a type as wire-compatible state. `Error`
/// is wire state too: the typed error taxonomy rides enveloped
/// responses, so adding a variant (e.g. the overload refusals) is a
/// protocol change old clients must be able to survive.
const WIRE_PATTERNS: &[&str] = &[
    "Config", "Snapshot", "State", "Record", "Stats", "Policy", "Error",
];

impl Rule for SerdeCompat {
    fn id(&self) -> &'static str {
        "serde-compat"
    }

    fn summary(&self) -> &'static str {
        "fields of Deserialize config/snapshot types must stay decodable from legacy payloads; drift from the pinned baseline is flagged"
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !file.rel_path.starts_with(cfg.serde_scope) {
            return;
        }
        let defs = collect_type_defs(&file.tokens, &file.in_test);
        let handwritten = collect_handwritten_impls(&file.tokens);
        for def in &defs {
            let wire_named = WIRE_PATTERNS.iter().any(|p| def.name.contains(p));
            let deserializable =
                def.derives.iter().any(|d| d == "Deserialize") || handwritten.contains(&def.name);
            if !wire_named || !deserializable {
                continue;
            }
            let Some(baseline) = cfg.serde_baseline.get(def.name.as_str()) else {
                out.push(Diagnostic {
                    rule: self.id().to_string(),
                    file: file.rel_path.clone(),
                    line: def.line,
                    message: format!(
                        "`{}` is a wire-compatible Deserialize type but has no pinned field baseline; add it to the serde-compat baseline after confirming its decode path defaults every optional field",
                        def.name
                    ),
                    excerpt: file.excerpt(def.line),
                    suppressed_by: None,
                });
                continue;
            };
            for (field, line) in &def.fields {
                if !baseline.contains(&field.as_str()) {
                    out.push(Diagnostic {
                        rule: self.id().to_string(),
                        file: file.rel_path.clone(),
                        line: *line,
                        message: format!(
                            "field `{field}` of `{}` is not in the pinned wire-compat baseline; legacy payloads will not carry it — give the decode path a `None => default` arm (the vendored derive has no #[serde(default)]), then extend the baseline",
                            def.name
                        ),
                        excerpt: file.excerpt(*line),
                        suppressed_by: None,
                    });
                }
            }
            for expected in baseline {
                if !def.fields.iter().any(|(f, _)| f == expected) {
                    out.push(Diagnostic {
                        rule: self.id().to_string(),
                        file: file.rel_path.clone(),
                        line: def.line,
                        message: format!(
                            "field `{expected}` of `{}` is in the pinned wire-compat baseline but missing from the type; removing a field breaks decoding of payloads that still carry it — keep it, or migrate the baseline deliberately",
                            def.name
                        ),
                        excerpt: file.excerpt(def.line),
                        suppressed_by: None,
                    });
                }
            }
        }
    }
}

/// A parsed struct/enum definition.
struct TypeDef {
    /// Type name.
    name: String,
    /// Line of the `struct`/`enum` keyword.
    line: u32,
    /// Derive idents attached to the definition.
    derives: Vec<String>,
    /// Field names (structs) or variant names (enums) with lines.
    fields: Vec<(String, u32)>,
}

/// Collects non-test struct/enum definitions with their derives.
fn collect_type_defs(tokens: &[Tok], in_test: &[bool]) -> Vec<TypeDef> {
    let mut defs = Vec::new();
    let mut pending_derives: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            let (end, derives) = scan_derive_attr(tokens, i + 1);
            if let Some(d) = derives {
                pending_derives.extend(d);
            }
            i = end;
            continue;
        }
        if (t.is_ident("struct") || t.is_ident("enum")) && !in_test.get(i).copied().unwrap_or(false)
        {
            let is_enum = t.is_ident("enum");
            if let Some(name_tok) = tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                let (fields, end) = parse_body(tokens, i + 2, is_enum);
                defs.push(TypeDef {
                    name: name_tok.text.clone(),
                    line: t.line,
                    derives: std::mem::take(&mut pending_derives),
                    fields,
                });
                i = end;
                continue;
            }
        }
        // Any other token breaks the attribute→item adjacency.
        if !(t.is_ident("pub") || t.is_punct("(") || t.is_punct(")")) {
            pending_derives.clear();
        }
        i += 1;
    }
    defs
}

/// If the attribute starting at `[` is `derive(...)`, returns its
/// idents; always returns the index past the closing `]`.
fn scan_derive_attr(tokens: &[Tok], open: usize) -> (usize, Option<Vec<String>>) {
    let mut depth = 0usize;
    let mut j = open;
    let is_derive = tokens.get(open + 1).is_some_and(|t| t.is_ident("derive"));
    let mut idents = Vec::new();
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (j + 1, is_derive.then_some(idents));
            }
        } else if is_derive && t.kind == TokKind::Ident && !t.is_ident("derive") {
            idents.push(t.text.clone());
        }
        j += 1;
    }
    (tokens.len(), None)
}

/// Parses a struct's named fields or an enum's variants starting just
/// after the type name (generics are skipped). Returns the entries and
/// the index past the definition. Tuple and unit bodies yield no
/// entries.
fn parse_body(tokens: &[Tok], mut i: usize, is_enum: bool) -> (Vec<(String, u32)>, usize) {
    // Skip generics `<...>`.
    if tokens.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut angle = 0i32;
        while i < tokens.len() {
            if tokens[i].is_punct("<") {
                angle += 1;
            } else if tokens[i].is_punct(">") {
                angle -= 1;
                if angle == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let Some(open) = tokens.get(i) else {
        return (Vec::new(), i);
    };
    if open.is_punct(";") || open.is_punct("(") {
        // Unit or tuple body: scan to the terminating `;`.
        while i < tokens.len() && !tokens[i].is_punct(";") {
            i += 1;
        }
        return (Vec::new(), i + 1);
    }
    if !open.is_punct("{") {
        return (Vec::new(), i);
    }
    let mut fields = Vec::new();
    let mut depth = 0usize;
    // Variants are named at an element boundary; struct fields are
    // `name:` pairs. Both live at depth 1.
    let mut at_boundary = true;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
            at_boundary = depth == 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return (fields, i + 1);
            }
            i += 1;
            continue;
        }
        if depth == 1 {
            if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
                let (end, _) = scan_derive_attr(tokens, i + 1);
                i = end;
                continue;
            }
            if t.is_punct(",") {
                at_boundary = true;
                i += 1;
                continue;
            }
            if t.kind == TokKind::Ident && !t.is_ident("pub") {
                let named_field = tokens.get(i + 1).is_some_and(|n| n.is_punct(":"));
                if is_enum && at_boundary {
                    fields.push((t.text.clone(), t.line));
                    at_boundary = false;
                } else if !is_enum && named_field {
                    fields.push((t.text.clone(), t.line));
                }
            }
            if !t.is_punct(",") {
                at_boundary = false;
            }
        }
        i += 1;
    }
    (fields, i)
}

/// Finds `impl serde::Deserialize for Name` / `impl Deserialize for
/// Name` blocks and returns the implemented type names.
fn collect_handwritten_impls(tokens: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("impl") {
            continue;
        }
        // impl [serde ::] Deserialize for Name
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_ident("serde"))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct("::"))
        {
            j += 2;
        }
        if tokens.get(j).is_some_and(|t| t.is_ident("Deserialize"))
            && tokens.get(j + 1).is_some_and(|t| t.is_ident("for"))
        {
            if let Some(name) = tokens.get(j + 2).filter(|t| t.kind == TokKind::Ident) {
                names.push(name.text.clone());
            }
        }
    }
    names
}
