//! The rule registry. Each rule checks files (or the workspace as a
//! whole) and emits [`Diagnostic`]s; the engine in `lib.rs` applies
//! inline suppressions afterwards.

pub mod bench_schema;
pub mod float_accum;
pub mod lock_discipline;
pub mod panic_paths;
pub mod serde_compat;

use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::workspace::{SourceFile, Workspace};

/// One invariant check.
pub trait Rule {
    /// Stable rule id used in output and `lint:allow(...)` markers.
    fn id(&self) -> &'static str;
    /// One-line description shown by `--list-rules`.
    fn summary(&self) -> &'static str;
    /// Per-file check. Default: nothing.
    fn check_file(&self, _cfg: &Config, _file: &SourceFile, _out: &mut Vec<Diagnostic>) {}
    /// Workspace-level check (cross-artifact rules). Default: nothing.
    fn check_workspace(&self, _cfg: &Config, _ws: &Workspace, _out: &mut Vec<Diagnostic>) {}
}

/// All shipped rules, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(float_accum::FloatAccum),
        Box::new(panic_paths::PanicPaths),
        Box::new(serde_compat::SerdeCompat),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(bench_schema::BenchSchema),
    ]
}

use crate::lexer::{Tok, TokKind};

/// A function's token extent: signature plus body. Shared by the
/// rules that reason per-function (float accumulation, lock
/// discipline).
pub struct FuncSpan {
    /// Indices of the signature tokens (`fn` through the body `{`).
    pub sig: (usize, usize),
    /// Indices of the body tokens (inside the braces).
    pub body: (usize, usize),
}

/// Finds every non-test function body in the token stream. Nested
/// functions are covered by their enclosing function's span.
pub fn function_bodies(tokens: &[Tok], in_test: &[bool]) -> Vec<FuncSpan> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_fn_item =
            tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident);
        if !is_fn_item || in_test.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        // Scan the signature for the body `{` (or a `;` for bodyless
        // trait declarations).
        let mut j = i + 1;
        let mut body_open = None;
        while j < tokens.len() {
            if tokens[j].is_punct("{") {
                body_open = Some(j);
                break;
            }
            if tokens[j].is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut k = open;
        while k < tokens.len() {
            if tokens[k].is_punct("{") {
                depth += 1;
            } else if tokens[k].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        spans.push(FuncSpan {
            sig: (i, open),
            body: (open + 1, k.min(tokens.len())),
        });
        i = k + 1;
    }
    spans
}

/// Splits a token range into flat statement-ish segments at `;`, `{`,
/// and `}` boundaries — an approximation of statements that is good
/// enough for local evidence scanning.
pub fn segments(tokens: &[Tok], range: (usize, usize)) -> Vec<(usize, usize)> {
    let mut segs = Vec::new();
    let mut start = range.0;
    for i in range.0..range.1 {
        let t = &tokens[i];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            if i > start {
                segs.push((start, i));
            }
            start = i + 1;
        }
    }
    if range.1 > start {
        segs.push((start, range.1));
    }
    segs
}
