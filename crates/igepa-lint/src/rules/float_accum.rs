//! Rule `no-raw-float-accum`: raw `+=`/`-=`/`.sum()` on floating-point
//! values in `igepa-core`, `igepa-algos`, and `igepa-engine`.
//!
//! The determinism pins (bit-for-bit replay, crash recovery, one-shard
//! ≡ monolithic) hold because all *served* utility accumulation flows
//! through the exact superaccumulator in `igepa_core::exact`. A plain
//! `f64 +=` introduced anywhere on those paths silently re-orders
//! rounding and breaks the pins, so the rule flags every raw float
//! accumulation outside the approved kernels and forces the author to
//! either route through `ExactSum` or justify on the spot why the sum
//! is not replayed state.
//!
//! Detection is lexical: per function, a small fixpoint pass infers
//! which locals are floats (float literals, `f64`/`f32` annotations,
//! known float fields/methods of core types), then `+=`/`-=` sites
//! with float evidence on either side and `.sum()` calls with an
//! `f64` turbofish or an `f64` in the statement/signature are flagged.

use std::collections::HashSet;

use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::lexer::{is_float_literal, Tok, TokKind};
use crate::rules::{function_bodies, segments, FuncSpan, Rule};
use crate::workspace::SourceFile;

/// Rule 1: no raw float accumulation outside approved kernels.
pub struct FloatAccum;

impl Rule for FloatAccum {
    fn id(&self) -> &'static str {
        "no-raw-float-accum"
    }

    fn summary(&self) -> &'static str {
        "raw `+=`/`-=`/`.sum()` on f64 outside the exact-summation kernels breaks the bit-for-bit determinism pins"
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let in_scope = cfg.float_scope.iter().any(|p| file.rel_path.starts_with(p));
        if !in_scope || cfg.float_approved.contains(&file.rel_path.as_str()) {
            return;
        }
        for func in function_bodies(&file.tokens, &file.in_test) {
            check_function(self, cfg, file, &func, out);
        }
    }
}

/// True if the token slice carries float evidence: a float literal, an
/// `f64`/`f32` type token, a known float field/method access, or an
/// identifier already inferred to be a float local.
fn has_float_evidence(
    tokens: &[Tok],
    range: (usize, usize),
    floats: &HashSet<String>,
    cfg: &Config,
) -> bool {
    for i in range.0..range.1 {
        let t = &tokens[i];
        match t.kind {
            TokKind::Num if is_float_literal(&t.text) => return true,
            TokKind::Ident => {
                if t.text == "f64" || t.text == "f32" || t.text.ends_with("_f64") {
                    return true;
                }
                if floats.contains(&t.text) {
                    return true;
                }
                if i > range.0 && tokens[i - 1].is_punct(".") {
                    if cfg.float_fields.contains(&t.text.as_str()) {
                        return true;
                    }
                    if cfg.float_methods.contains(&t.text.as_str())
                        && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
                    {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

/// Runs the float-local inference to fixpoint over a function, then
/// reports raw accumulation sites.
fn check_function(
    rule: &FloatAccum,
    cfg: &Config,
    file: &SourceFile,
    func: &FuncSpan,
    out: &mut Vec<Diagnostic>,
) {
    let tokens = &file.tokens;
    let segs = segments(tokens, func.body);
    let mut floats: HashSet<String> = HashSet::new();

    // Explicit `name: f64` annotations anywhere in the function
    // (parameters and let bindings alike).
    for i in func.sig.0..func.body.1 {
        if tokens[i].kind == TokKind::Ident
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(":"))
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"))
        {
            floats.insert(tokens[i].text.clone());
        }
    }

    // Fixpoint: `let x = <float evidence>` makes `x` float evidence.
    for _ in 0..8 {
        let mut changed = false;
        for &(s, e) in &segs {
            if !tokens[s].is_ident("let") {
                continue;
            }
            let mut n = s + 1;
            if tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            let Some(name) = tokens.get(n).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if floats.contains(&name.text) {
                continue;
            }
            if has_float_evidence(tokens, (n + 1, e), &floats, cfg) {
                floats.insert(name.text.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let sig_has_f64 =
        (func.sig.0..func.sig.1).any(|i| tokens[i].is_ident("f64") || tokens[i].is_ident("f32"));

    for &(s, e) in &segs {
        // `+=` / `-=` with float evidence on either side.
        for i in s..e {
            if !(tokens[i].is_punct("+=") || tokens[i].is_punct("-=")) {
                continue;
            }
            if file.in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            let lhs = has_float_evidence(tokens, (s, i), &floats, cfg);
            let rhs = has_float_evidence(tokens, (i + 1, e), &floats, cfg);
            if lhs || rhs {
                out.push(Diagnostic {
                    rule: rule.id().to_string(),
                    file: file.rel_path.clone(),
                    line: tokens[i].line,
                    message: format!(
                        "raw `{}` on floating-point state; served sums must flow through igepa_core::exact::ExactSum to keep replay and recovery bit-identical",
                        tokens[i].text
                    ),
                    excerpt: file.excerpt(tokens[i].line),
                    suppressed_by: None,
                });
            }
        }
        // `.sum()` with an f64 turbofish or f64 in statement/signature.
        for i in s..e {
            if !tokens[i].is_ident("sum") || i == 0 || !tokens[i - 1].is_punct(".") {
                continue;
            }
            if file.in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            let turbofish_float = tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && tokens
                    .get(i + 3)
                    .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"));
            let call_paren = if turbofish_float { i + 5 } else { i + 1 };
            if !tokens.get(call_paren).is_some_and(|t| t.is_punct("(")) {
                continue;
            }
            let stmt_float =
                (s..e).any(|k| k != i && (tokens[k].is_ident("f64") || tokens[k].is_ident("f32")));
            if turbofish_float || stmt_float || sig_has_f64 {
                out.push(Diagnostic {
                    rule: rule.id().to_string(),
                    file: file.rel_path.clone(),
                    line: tokens[i].line,
                    message: "raw `.sum()` over floats folds in iterator order with plain rounding; route through ExactSum or justify why this sum is not replayed state".to_string(),
                    excerpt: file.excerpt(tokens[i].line),
                    suppressed_by: None,
                });
            }
        }
    }
}
