//! Rule `bench-schema`: CI perf gates may only reference scenario ids
//! that actually exist.
//!
//! The CI workflow greps `BENCH_engine.json` for specific scenario
//! rows and fails the build on regressions. A renamed scenario in
//! `benches/engine.rs` silently turns that gate into a no-op: the grep
//! finds nothing and the threshold never fires. This rule closes the
//! loop in both directions:
//!
//! * every scenario id referenced by the CI workflow must exist in
//!   `BENCH_engine.json` (ids with `{var}` placeholders are checked as
//!   prefixes);
//! * every scenario family in `BENCH_engine.json` must appear as a
//!   string literal in the bench source, so a family rename cannot
//!   orphan the whole baseline.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::lexer::{self, TokKind};
use crate::rules::Rule;
use crate::workspace::Workspace;

/// Rule 5: bench baseline, bench source, and CI gates must agree.
pub struct BenchSchema;

impl Rule for BenchSchema {
    fn id(&self) -> &'static str {
        "bench-schema"
    }

    fn summary(&self) -> &'static str {
        "scenario ids referenced by CI perf gates must exist in BENCH_engine.json and the bench source"
    }

    fn check_workspace(&self, cfg: &Config, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Ok(baseline_text) = ws.read_artifact(cfg.bench_baseline) else {
            out.push(missing_artifact(self, cfg.bench_baseline));
            return;
        };
        let Ok(ci_text) = ws.read_artifact(cfg.ci_workflow) else {
            out.push(missing_artifact(self, cfg.ci_workflow));
            return;
        };
        let Ok(bench_src) = ws.read_artifact(cfg.bench_source) else {
            out.push(missing_artifact(self, cfg.bench_source));
            return;
        };

        let scenario_names = baseline_scenarios(&baseline_text);
        if scenario_names.is_empty() {
            out.push(Diagnostic {
                rule: self.id().to_string(),
                file: cfg.bench_baseline.to_string(),
                line: 1,
                message: "bench baseline has no scenarios; the CI perf gates cannot check anything"
                    .to_string(),
                excerpt: String::new(),
                suppressed_by: None,
            });
            return;
        }

        // String literals in the bench source, for family checks.
        let bench_literals: Vec<String> = lexer::lex(&bench_src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text)
            .collect();

        // CI → baseline / bench source.
        for (line_no, id) in ci_scenario_refs(&ci_text) {
            let excerpt = ci_text
                .lines()
                .nth(line_no.saturating_sub(1) as usize)
                .map(|l| l.trim().to_string())
                .unwrap_or_default();
            let matches_baseline =
                if let Some(prefix) = id.split('{').next().filter(|_| id.contains('{')) {
                    scenario_names.iter().any(|n| n.starts_with(prefix))
                } else {
                    scenario_names.contains(&id)
                };
            if !matches_baseline {
                out.push(Diagnostic {
                    rule: self.id().to_string(),
                    file: cfg.ci_workflow.to_string(),
                    line: line_no,
                    message: format!(
                        "CI gate references scenario `{id}` which does not exist in {}; the gate is a silent no-op",
                        cfg.bench_baseline
                    ),
                    excerpt: excerpt.clone(),
                    suppressed_by: None,
                });
            }
            let family = id.split('/').next().unwrap_or(&id);
            if !bench_literals.iter().any(|l| l.contains(family)) {
                out.push(Diagnostic {
                    rule: self.id().to_string(),
                    file: cfg.ci_workflow.to_string(),
                    line: line_no,
                    message: format!(
                        "CI gate references scenario family `{family}` which no longer appears in {}; the bench cannot regenerate this row",
                        cfg.bench_source
                    ),
                    excerpt,
                    suppressed_by: None,
                });
            }
        }

        // Baseline families → bench source.
        let families: BTreeSet<&str> = scenario_names
            .iter()
            .filter_map(|n| n.split('/').next())
            .collect();
        for family in families {
            if !bench_literals.iter().any(|l| l.contains(family)) {
                let line = find_line(&baseline_text, family);
                out.push(Diagnostic {
                    rule: self.id().to_string(),
                    file: cfg.bench_baseline.to_string(),
                    line,
                    message: format!(
                        "baseline scenario family `{family}` no longer appears in {}; the rows are orphaned and will never be refreshed",
                        cfg.bench_source
                    ),
                    excerpt: format!("scenarios of family {family}/..."),
                    suppressed_by: None,
                });
            }
        }
    }
}

/// Diagnostic for a missing cross-checked artifact.
fn missing_artifact(rule: &BenchSchema, path: &str) -> Diagnostic {
    Diagnostic {
        rule: rule.id().to_string(),
        file: path.to_string(),
        line: 1,
        message: format!("expected workspace artifact `{path}` is missing or unreadable"),
        excerpt: String::new(),
        suppressed_by: None,
    }
}

/// Scenario names from the bench baseline JSON.
fn baseline_scenarios(text: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let Ok(value) = serde_json::from_str::<serde::Value>(text) else {
        return names;
    };
    let serde::Value::Object(fields) = &value else {
        return names;
    };
    let Some((_, serde::Value::Array(scenarios))) = fields.iter().find(|(k, _)| k == "scenarios")
    else {
        return names;
    };
    for s in scenarios {
        if let serde::Value::Object(entry) = s {
            if let Some((_, serde::Value::String(name))) = entry.iter().find(|(k, _)| k == "name") {
                names.insert(name.clone());
            }
        }
    }
    names
}

/// Extracts scenario-id-shaped quoted strings from the CI workflow:
/// quoted tokens whose characters are all `[a-z0-9_/{}]` with at
/// least two `/` separators (`family/case/param`). Returns
/// `(line, id)` pairs.
fn ci_scenario_refs(text: &str) -> Vec<(u32, String)> {
    let mut refs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        for quote in ['"', '\''] {
            let mut rest = line;
            while let Some(start) = rest.find(quote) {
                let after = &rest[start + 1..];
                let Some(end) = after.find(quote) else {
                    break;
                };
                let candidate = &after[..end];
                if candidate.matches('/').count() >= 2
                    && !candidate.is_empty()
                    && candidate
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_/{}".contains(c))
                {
                    refs.push((line_no, candidate.to_string()));
                }
                rest = &after[end + 1..];
            }
        }
    }
    refs.sort();
    refs.dedup();
    refs
}

/// 1-based line of the first occurrence of `needle` in `text`.
fn find_line(text: &str, needle: &str) -> u32 {
    for (idx, line) in text.lines().enumerate() {
        if line.contains(needle) {
            return (idx + 1) as u32;
        }
    }
    1
}
