//! Rule configuration: which files each rule covers, the float-
//! evidence vocabulary, and the pinned serde-compat baseline.
//!
//! The configuration is code, not an external file, for the same
//! reason the baselines in `BENCH_engine.json` are checked in: a
//! reviewer must see an explicit diff when an invariant's scope
//! changes.

use std::collections::BTreeMap;

/// Enforcement level for one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Findings fail the run (exit code 1) unless suppressed inline.
    Deny,
    /// Findings are reported but do not fail the run.
    Allow,
}

/// Full linter configuration.
pub struct Config {
    /// Per-rule enforcement level; rules default to `Deny`.
    pub levels: BTreeMap<String, Level>,
    /// Modules where raw float accumulation is approved: the exact-
    /// summation kernel itself and the dot-product interest kernels
    /// whose fixed evaluation order is pinned by their own proptests.
    pub float_approved: Vec<&'static str>,
    /// Field names that are known `f64` state on core types; seeing
    /// `.name` marks the surrounding expression as float evidence.
    pub float_fields: Vec<&'static str>,
    /// Method names that are known to return `f64`.
    pub float_methods: Vec<&'static str>,
    /// Files whose non-test code must not panic (rule 2 scope).
    pub server_paths: Vec<&'static str>,
    /// Crate path prefix for the lock-discipline rule.
    pub lock_scope: &'static str,
    /// Crate path prefixes for the float-accumulation rule.
    pub float_scope: Vec<&'static str>,
    /// Crate path prefix for the serde-compat rule.
    pub serde_scope: &'static str,
    /// Pinned field/variant lists for wire-compatible types
    /// (rule 3 baseline). Keys are type names; values are the exact
    /// expected field or variant names in declaration order.
    pub serde_baseline: BTreeMap<&'static str, Vec<&'static str>>,
    /// Workspace-relative path of the bench baseline JSON.
    pub bench_baseline: &'static str,
    /// Workspace-relative path of the CI workflow file.
    pub ci_workflow: &'static str,
    /// Workspace-relative path of the bench scenario source.
    pub bench_source: &'static str,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            levels: BTreeMap::new(),
            float_approved: vec![
                "crates/igepa-core/src/exact.rs",
                "crates/igepa-core/src/interest.rs",
            ],
            float_fields: vec![
                "total",
                "interest_sum",
                "interaction_sum",
                "utility",
                "last_observed_drift",
            ],
            float_methods: vec!["weight", "utility", "interest", "interaction"],
            server_paths: vec![
                "crates/igepa-engine/src/transport.rs",
                "crates/igepa-engine/src/coordinator.rs",
                "crates/igepa-engine/src/faults.rs",
                "crates/igepa-engine/src/shard.rs",
                "crates/igepa-engine/src/durability/mod.rs",
                "crates/igepa-engine/src/durability/wal.rs",
                "crates/igepa-engine/src/durability/snapshot.rs",
                "crates/igepa-engine/src/durability/recovery.rs",
            ],
            lock_scope: "crates/igepa-engine/src/",
            float_scope: vec![
                "crates/igepa-core/src/",
                "crates/igepa-algos/src/",
                "crates/igepa-engine/src/",
            ],
            serde_scope: "crates/igepa-engine/src/",
            serde_baseline: default_serde_baseline(),
            bench_baseline: "BENCH_engine.json",
            ci_workflow: ".github/workflows/ci.yml",
            bench_source: "crates/igepa-bench/benches/engine.rs",
        }
    }
}

impl Config {
    /// Enforcement level for `rule`, defaulting to `Deny`.
    pub fn level(&self, rule: &str) -> Level {
        self.levels.get(rule).copied().unwrap_or(Level::Deny)
    }
}

/// The pinned wire-compat baseline: every `Deserialize`-reachable
/// config/snapshot type in `igepa-engine` and the exact fields or
/// variants it had when its decode path last proved legacy
/// compatibility. Adding a field without extending this list (and
/// without a `None => default` arm in the hand-written decoder — the
/// vendored serde derive has no `#[serde(default)]`) is a diagnostic.
fn default_serde_baseline() -> BTreeMap<&'static str, Vec<&'static str>> {
    let mut m: BTreeMap<&'static str, Vec<&'static str>> = BTreeMap::new();
    m.insert(
        "EngineConfig",
        vec![
            "seed",
            "escalation_fraction",
            "staleness_check_interval",
            "max_staleness",
            "batch_policy",
            "online_cost_calibration",
            "durability",
            "repair_threads",
            "admission",
        ],
    );
    m.insert("BatchPolicy", vec!["Escalation", "CostModel"]);
    m.insert("AdmissionPolicy", vec!["Unbounded", "Bounded"]);
    m.insert(
        "OverloadStats",
        vec![
            "policy",
            "queue_depth",
            "high_water",
            "shed",
            "deadline_expired",
            "read_only",
        ],
    );
    m.insert(
        "EngineError",
        vec![
            "Rejected",
            "NotFound",
            "Unsupported",
            "Malformed",
            "Internal",
            "Overloaded",
            "DeadlineExceeded",
        ],
    );
    m.insert(
        "DurabilityPolicy",
        vec!["Off", "Interval", "EveryN", "Always"],
    );
    m.insert(
        "ShardedConfig",
        vec![
            "num_shards",
            "shard",
            "reconcile_interval",
            "reconcile_rounds",
        ],
    );
    m.insert(
        "EngineStats",
        vec![
            "deltas_applied",
            "deltas_rejected",
            "greedy_patches",
            "full_resolves",
            "batch_solves",
            "staleness_resolves",
            "staleness_checks",
            "quota_updates",
            "last_observed_drift",
        ],
    );
    m.insert(
        "CoordinatorStats",
        vec![
            "reconcile_passes",
            "quota_moved",
            "last_boundary_events",
            "reshards",
            "users_migrated",
            "migration_proposals",
        ],
    );
    m.insert(
        "ShardStatsEntry",
        vec![
            "shard",
            "users",
            "pairs",
            "utility",
            "stats",
            "moved_in",
            "moved_out",
        ],
    );
    m.insert(
        "MigrationRecord",
        vec![
            "from_shards",
            "to_shards",
            "moved_users",
            "quota_moved",
            "catalog_epoch",
        ],
    );
    m.insert("WalRecord", vec!["seq", "envelope_id", "epoch", "request"]);
    m.insert(
        "ShardRecord",
        vec![
            "quotas",
            "arrangement",
            "stats",
            "solve_counter",
            "last_staleness_check",
            "catalog_epoch",
            "interest_sum",
            "interaction_sum",
        ],
    );
    m.insert(
        "EngineSnapshotState",
        vec![
            "version",
            "wal_seq",
            "catalog_epoch",
            "config",
            "mirror",
            "owners",
            "rejected",
            "deltas_since_reconcile",
            "reconcile_candidates",
            "coordinator_stats",
            "probe_counter",
            "shards",
            "shard_migrations",
        ],
    );
    m
}
