//! Vertex centrality measures for the social network.
//!
//! The paper measures a participant's "degree of potential interaction" by
//! their (normalised) degree, citing Freeman's classical centrality work.
//! Degree is only one point in that design space, so the reproduction also
//! implements the other standard centralities — closeness, betweenness,
//! PageRank, eigenvector and core number — which the ablation experiments
//! plug into the utility in place of `D(G, u)` to check how sensitive the
//! algorithm ordering is to the chosen interaction measure.
//!
//! All functions return one score per vertex, indexed by the vertex id used
//! by [`SocialNetwork`](crate::SocialNetwork).

use crate::graph::SocialNetwork;
use crate::paths::{bfs_distances, UNREACHABLE};
use std::collections::VecDeque;

/// Degree centrality: `deg(u) / (n - 1)`, the paper's `D(G, u)`.
///
/// Graphs with fewer than two vertices get all-zero scores.
pub fn degree_centrality(g: &SocialNetwork) -> Vec<f64> {
    let n = g.num_users();
    if n <= 1 {
        return vec![0.0; n];
    }
    let norm = (n - 1) as f64;
    (0..n).map(|u| g.degree(u) as f64 / norm).collect()
}

/// Harmonic closeness centrality: `Σ_{w != u, reachable} 1 / d(u, w)`,
/// normalised by `n - 1` so scores stay in `[0, 1]`.
///
/// The harmonic form is used (rather than the classical reciprocal of the
/// distance sum) because EBSN friendship graphs are frequently disconnected
/// and harmonic closeness handles unreachable pairs gracefully.
pub fn closeness_centrality(g: &SocialNetwork) -> Vec<f64> {
    let n = g.num_users();
    if n <= 1 {
        return vec![0.0; n];
    }
    let norm = (n - 1) as f64;
    (0..n)
        .map(|u| {
            bfs_distances(g, u)
                .iter()
                .enumerate()
                .filter(|&(w, &d)| w != u && d != UNREACHABLE)
                .map(|(_, &d)| 1.0 / d as f64)
                .sum::<f64>()
                / norm
        })
        .collect()
}

/// Betweenness centrality via Brandes' algorithm (unweighted graphs).
///
/// Scores are normalised by `(n - 1)(n - 2) / 2`, the number of vertex
/// pairs a vertex could possibly lie between, so a vertex through which
/// every shortest path passes scores 1.
pub fn betweenness_centrality(g: &SocialNetwork) -> Vec<f64> {
    let n = g.num_users();
    let mut centrality = vec![0.0; n];
    if n < 3 {
        return centrality;
    }

    for s in 0..n {
        // Single-source shortest-path DAG via BFS.
        let mut stack: Vec<usize> = Vec::with_capacity(n);
        let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0_f64; n];
        let mut dist = vec![-1_i64; n];
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.neighbors(v) {
                let w = w as usize;
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    predecessors[w].push(v);
                }
            }
        }
        // Back-propagation of dependencies.
        let mut delta = vec![0.0_f64; n];
        while let Some(w) = stack.pop() {
            for &v in &predecessors[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }

    // Undirected graph: each pair was counted twice (once per endpoint as
    // the BFS source), and normalise to [0, 1].
    let norm = ((n - 1) * (n - 2)) as f64;
    for c in &mut centrality {
        *c /= norm;
    }
    centrality
}

/// Configuration for the PageRank power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor, conventionally 0.85.
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance between successive iterations.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 200,
            tolerance: 1e-10,
        }
    }
}

/// PageRank over the (symmetric) friendship graph.
///
/// Isolated vertices behave as dangling nodes: their mass is redistributed
/// uniformly. The result sums to one over all vertices.
pub fn pagerank(g: &SocialNetwork, config: &PageRankConfig) -> Vec<f64> {
    let n = g.num_users();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let degrees: Vec<usize> = (0..n).map(|u| g.degree(u)).collect();

    for _ in 0..config.max_iterations {
        let dangling_mass: f64 = (0..n).filter(|&u| degrees[u] == 0).map(|u| rank[u]).sum();
        let mut next =
            vec![(1.0 - config.damping) * uniform + config.damping * dangling_mass * uniform; n];
        for u in 0..n {
            if degrees[u] == 0 {
                continue;
            }
            let share = config.damping * rank[u] / degrees[u] as f64;
            for &w in g.neighbors(u) {
                next[w as usize] += share;
            }
        }
        let diff: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        rank = next;
        if diff < config.tolerance {
            break;
        }
    }
    rank
}

/// Eigenvector centrality by power iteration, normalised so the largest
/// score is 1. Vertices in components without edges score 0.
pub fn eigenvector_centrality(
    g: &SocialNetwork,
    max_iterations: usize,
    tolerance: f64,
) -> Vec<f64> {
    let n = g.num_users();
    if n == 0 {
        return Vec::new();
    }
    if g.num_edges() == 0 {
        return vec![0.0; n];
    }
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    for _ in 0..max_iterations.max(1) {
        // Iterate with A + I rather than A: the dominant eigenvector is the
        // same, but the shift prevents the period-two oscillation that plain
        // power iteration exhibits on bipartite graphs (e.g. stars).
        let mut next = x.clone();
        for u in 0..n {
            for &w in g.neighbors(u) {
                next[w as usize] += x[u];
            }
        }
        let norm = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm <= f64::EPSILON {
            return vec![0.0; n];
        }
        for v in &mut next {
            *v /= norm;
        }
        let diff: f64 = x.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
        x = next;
        if diff < tolerance {
            break;
        }
    }
    let max = x.iter().cloned().fold(0.0_f64, f64::max);
    if max <= f64::EPSILON {
        vec![0.0; n]
    } else {
        x.into_iter().map(|v| v / max).collect()
    }
}

/// Core number of every vertex (k-core decomposition).
///
/// The core number of `u` is the largest `k` such that `u` belongs to a
/// subgraph in which every vertex has degree at least `k`. Computed with
/// the standard peeling algorithm in `O(|E| + |U|)`.
pub fn core_numbers(g: &SocialNetwork) -> Vec<usize> {
    let n = g.num_users();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n).map(|u| g.degree(u)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by current degree.
    let mut bins = vec![0usize; max_degree + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut position = vec![0usize; n];
    let mut order = vec![0usize; n];
    for u in 0..n {
        position[u] = bins[degree[u]];
        order[position[u]] = u;
        bins[degree[u]] += 1;
    }
    // Restore bin starts.
    for d in (1..bins.len()).rev() {
        bins[d] = bins[d - 1];
    }
    bins[0] = 0;

    let mut core = degree.clone();
    for i in 0..n {
        let u = order[i];
        core[u] = degree[u];
        for &w in g.neighbors(u) {
            let w = w as usize;
            if degree[w] > degree[u] {
                // Move w one bucket down: swap it with the first vertex of
                // its current bucket, then shift the bucket boundary.
                let dw = degree[w];
                let pw = position[w];
                let ps = bins[dw];
                let s = order[ps];
                if s != w {
                    order[pw] = s;
                    order[ps] = w;
                    position[w] = ps;
                    position[s] = pw;
                }
                bins[dw] += 1;
                degree[w] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> SocialNetwork {
        SocialNetwork::from_edges(n, (1..n).map(|i| (0, i)))
    }

    fn path(n: usize) -> SocialNetwork {
        SocialNetwork::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn degree_centrality_matches_paper_definition() {
        let g = star(5);
        let c = degree_centrality(&g);
        assert!((c[0] - 1.0).abs() < 1e-12);
        for leaf in 1..5 {
            assert!((c[leaf] - 0.25).abs() < 1e-12);
        }
        assert_eq!(degree_centrality(&SocialNetwork::new(1)), vec![0.0]);
    }

    #[test]
    fn degree_centrality_agrees_with_graph_method() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi(50, 0.2, &mut rng);
        let ours = degree_centrality(&g);
        let theirs = g.degrees_of_potential_interaction();
        for (a, b) in ours.iter().zip(theirs.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn closeness_is_highest_at_the_star_center() {
        let g = star(6);
        let c = closeness_centrality(&g);
        assert!((c[0] - 1.0).abs() < 1e-12);
        for leaf in 1..6 {
            assert!(c[leaf] < c[0]);
            // leaf: 1 direct + 4 at distance 2 → (1 + 4·0.5) / 5 = 0.6
            assert!((c[leaf] - 0.6).abs() < 1e-12);
        }
    }

    #[test]
    fn closeness_handles_disconnected_graphs() {
        let g = SocialNetwork::from_edges(4, [(0, 1)]);
        let c = closeness_centrality(&g);
        assert!((c[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c[2], 0.0);
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn betweenness_of_a_path_peaks_in_the_middle() {
        let g = path(5);
        let c = betweenness_centrality(&g);
        // Endpoints lie on no shortest path between other vertices.
        assert!(c[0].abs() < 1e-12);
        assert!(c[4].abs() < 1e-12);
        // The middle vertex lies on paths between {0,1} × {3,4} and is the
        // unique interior vertex for (1,3) etc.
        assert!(c[2] > c[1]);
        assert!(c[1] > 0.0);
        // Vertex 2 separates 2×2 pairs plus (1,3): 4 + 1 = 5 of the 6 pairs? no:
        // pairs not involving 2: (0,1),(0,3),(0,4),(1,3),(1,4),(3,4) = 6 pairs,
        // those passing through 2: (0,3),(0,4),(1,3),(1,4) = 4 → 4/6.
        assert!((c[2] - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn betweenness_of_star_center_is_one() {
        let g = star(7);
        let c = betweenness_centrality(&g);
        assert!((c[0] - 1.0).abs() < 1e-9);
        for leaf in 1..7 {
            assert!(c[leaf].abs() < 1e-12);
        }
    }

    #[test]
    fn betweenness_of_complete_graph_is_zero() {
        let n = 6;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        let g = SocialNetwork::from_edges(n, edges);
        for c in betweenness_centrality(&g) {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_favours_hubs() {
        let g = star(10);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        for leaf in 1..10 {
            assert!(pr[0] > pr[leaf]);
        }
    }

    #[test]
    fn pagerank_of_edgeless_graph_is_uniform() {
        let g = SocialNetwork::new(4);
        let pr = pagerank(&g, &PageRankConfig::default());
        for score in pr {
            assert!((score - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_is_uniform_on_vertex_transitive_graphs() {
        // A cycle: every vertex is equivalent, so PageRank must be uniform.
        let n = 8;
        let g = SocialNetwork::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)));
        let pr = pagerank(&g, &PageRankConfig::default());
        for score in pr {
            assert!((score - 1.0 / n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn eigenvector_centrality_peaks_at_the_hub() {
        let g = star(8);
        let c = eigenvector_centrality(&g, 500, 1e-12);
        assert!((c[0] - 1.0).abs() < 1e-9);
        for leaf in 1..8 {
            assert!(c[leaf] < 1.0);
            assert!(c[leaf] > 0.0);
        }
    }

    #[test]
    fn eigenvector_centrality_of_edgeless_graph_is_zero() {
        let g = SocialNetwork::new(5);
        assert_eq!(eigenvector_centrality(&g, 100, 1e-9), vec![0.0; 5]);
    }

    #[test]
    fn core_numbers_of_path_and_clique() {
        let g = path(6);
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1, 1, 1]);

        let n = 5;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        let clique = SocialNetwork::from_edges(n, edges);
        assert_eq!(core_numbers(&clique), vec![4; 5]);
    }

    #[test]
    fn core_numbers_of_clique_with_pendant() {
        // Triangle {0,1,2} plus pendant vertex 3 attached to 0.
        let g = SocialNetwork::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)]);
        let core = core_numbers(&g);
        assert_eq!(core, vec![2, 2, 2, 1]);
    }

    #[test]
    fn core_numbers_never_exceed_degree() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = generators::erdos_renyi(80, 0.1, &mut rng);
        let core = core_numbers(&g);
        for u in 0..g.num_users() {
            assert!(core[u] <= g.degree(u));
        }
    }

    #[test]
    fn centralities_have_one_score_per_vertex() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::barabasi_albert(60, 3, &mut rng);
        let n = g.num_users();
        assert_eq!(degree_centrality(&g).len(), n);
        assert_eq!(closeness_centrality(&g).len(), n);
        assert_eq!(betweenness_centrality(&g).len(), n);
        assert_eq!(pagerank(&g, &PageRankConfig::default()).len(), n);
        assert_eq!(eigenvector_centrality(&g, 100, 1e-9).len(), n);
        assert_eq!(core_numbers(&g).len(), n);
    }
}
