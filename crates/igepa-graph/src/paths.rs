//! Shortest-path utilities over the (unweighted) social network.
//!
//! The interaction-aware utility of the paper only needs vertex degrees, but
//! the ablation studies (alternative interaction measures, workload
//! reporting) and the community/centrality modules need breadth-first
//! distances, eccentricities and connectivity checks. Everything here is
//! plain BFS on the compact adjacency representation of
//! [`SocialNetwork`](crate::SocialNetwork).

use crate::graph::SocialNetwork;
use std::collections::VecDeque;

/// Distance value used for unreachable vertices.
pub const UNREACHABLE: usize = usize::MAX;

/// Breadth-first distances from `source` to every vertex.
///
/// Unreachable vertices get [`UNREACHABLE`]. The source itself has distance
/// zero. Runs in `O(|U| + |E|)`.
pub fn bfs_distances(g: &SocialNetwork, source: usize) -> Vec<usize> {
    let n = g.num_users();
    let mut dist = vec![UNREACHABLE; n];
    if source >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = dist[u] + 1;
        for &w in g.neighbors(u) {
            let w = w as usize;
            if dist[w] == UNREACHABLE {
                dist[w] = next;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The eccentricity of `source`: the largest finite BFS distance from it.
///
/// Returns `None` when the vertex has no reachable neighbours (isolated
/// vertex) or is out of range.
pub fn eccentricity(g: &SocialNetwork, source: usize) -> Option<usize> {
    if source >= g.num_users() {
        return None;
    }
    let dist = bfs_distances(g, source);
    dist.iter()
        .filter(|&&d| d != UNREACHABLE && d > 0)
        .max()
        .copied()
}

/// Exact diameter of the graph: the largest eccentricity over all vertices
/// in the same connected component.
///
/// Returns `None` for graphs without any edge. Runs one BFS per vertex, so
/// it is intended for the instance sizes of the paper's evaluation
/// (thousands of users), not for web-scale graphs.
pub fn diameter(g: &SocialNetwork) -> Option<usize> {
    (0..g.num_users()).filter_map(|u| eccentricity(g, u)).max()
}

/// Average shortest-path length over all ordered reachable pairs `(u, w)`,
/// `u != w`. Returns `None` when no pair is connected.
pub fn average_path_length(g: &SocialNetwork) -> Option<f64> {
    let n = g.num_users();
    let mut total = 0usize;
    let mut pairs = 0usize;
    for u in 0..n {
        for (w, &d) in bfs_distances(g, u).iter().enumerate() {
            if w != u && d != UNREACHABLE {
                total += d;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

/// Whether every vertex can reach every other vertex.
///
/// The empty graph and the single-vertex graph are considered connected.
pub fn is_connected(g: &SocialNetwork) -> bool {
    let n = g.num_users();
    if n <= 1 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Number of vertices reachable from `source`, including the source itself.
pub fn reachable_count(g: &SocialNetwork, source: usize) -> usize {
    bfs_distances(g, source)
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> SocialNetwork {
        SocialNetwork::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    #[test]
    fn bfs_on_a_path_counts_hops() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, 2);
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_vertices_are_marked() {
        let mut g = SocialNetwork::new(4);
        g.add_edge(0, 1);
        // vertices 2 and 3 are isolated from 0/1
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn out_of_range_source_yields_all_unreachable() {
        let g = path_graph(3);
        let d = bfs_distances(&g, 99);
        assert!(d.iter().all(|&x| x == UNREACHABLE));
        assert_eq!(eccentricity(&g, 99), None);
    }

    #[test]
    fn diameter_of_a_path_is_its_length() {
        assert_eq!(diameter(&path_graph(6)), Some(5));
        assert_eq!(diameter(&path_graph(2)), Some(1));
    }

    #[test]
    fn diameter_of_edgeless_graph_is_none() {
        let g = SocialNetwork::new(7);
        assert_eq!(diameter(&g), None);
        assert_eq!(average_path_length(&g), None);
    }

    #[test]
    fn eccentricity_of_path_center_is_half() {
        let g = path_graph(5);
        assert_eq!(eccentricity(&g, 2), Some(2));
        assert_eq!(eccentricity(&g, 0), Some(4));
    }

    #[test]
    fn average_path_length_of_a_triangle_is_one() {
        let g = SocialNetwork::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let apl = average_path_length(&g).unwrap();
        assert!((apl - 1.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&SocialNetwork::new(0)));
        assert!(is_connected(&SocialNetwork::new(1)));
        assert!(is_connected(&path_graph(10)));
        let mut g = path_graph(4);
        assert!(is_connected(&g));
        g.add_edge(0, 3);
        assert!(is_connected(&g));
        let disconnected = SocialNetwork::from_edges(4, [(0, 1)]);
        assert!(!is_connected(&disconnected));
    }

    #[test]
    fn reachable_count_matches_component_size() {
        let g = SocialNetwork::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(reachable_count(&g, 0), 3);
        assert_eq!(reachable_count(&g, 3), 2);
        assert_eq!(reachable_count(&g, 5), 1);
    }

    #[test]
    fn dense_random_graph_has_small_diameter() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::erdos_renyi(60, 0.5, &mut rng);
        // With p = 0.5 on 60 vertices the graph is almost surely connected
        // with diameter 2.
        assert!(is_connected(&g));
        assert!(diameter(&g).unwrap() <= 3);
    }

    #[test]
    fn bfs_distance_satisfies_triangle_inequality_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi(40, 0.15, &mut rng);
        let d0 = bfs_distances(&g, 0);
        for mid in 0..g.num_users() {
            if d0[mid] == UNREACHABLE {
                continue;
            }
            let dm = bfs_distances(&g, mid);
            for target in 0..g.num_users() {
                if d0[target] != UNREACHABLE && dm[target] != UNREACHABLE {
                    assert!(d0[target] <= d0[mid] + dm[target]);
                }
            }
        }
    }
}
