//! Undirected social network over the user set `U`.
//!
//! Definition 6 of the paper defines the *degree of potential interaction*
//! of a user `u` as `D(G, u) = |{u' : (u, u') ∈ E}| / (|U| − 1)`, i.e. the
//! normalised degree of `u` in the social network `G = (U, E)`. This module
//! provides the graph storage that the workload generators populate and from
//! which the per-user interaction scores handed to `igepa_core::Instance`
//! are computed.

use serde::{Deserialize, Serialize};

/// An undirected, simple graph whose nodes are the users `0..n` of an IGEPA
/// instance.
///
/// Edges are stored as sorted adjacency lists, so neighbour queries are
/// `O(log deg)` and iteration is cache-friendly. Self-loops and parallel
/// edges are rejected/ignored, matching the "social tie" semantics of the
/// paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocialNetwork {
    adjacency: Vec<Vec<u32>>,
    num_edges: usize,
}

impl SocialNetwork {
    /// Creates an edgeless network over `num_users` users.
    pub fn new(num_users: usize) -> Self {
        SocialNetwork {
            adjacency: vec![Vec::new(); num_users],
            num_edges: 0,
        }
    }

    /// Builds a network from an edge list. Self-loops and duplicate edges are
    /// ignored; node indices must be smaller than `num_users`.
    pub fn from_edges(num_users: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Self::new(num_users);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of users (nodes), `|U|`.
    pub fn num_users(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of social ties (undirected edges), `|E|`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the undirected edge `{a, b}`. Returns `true` if the edge was new.
    ///
    /// Self-loops are ignored (returns `false`).
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        assert!(
            a < self.num_users() && b < self.num_users(),
            "edge ({a}, {b}) references a user outside 0..{}",
            self.num_users()
        );
        if a == b {
            return false;
        }
        let (a32, b32) = (a as u32, b as u32);
        match self.adjacency[a].binary_search(&b32) {
            Ok(_) => false,
            Err(pos_a) => {
                self.adjacency[a].insert(pos_a, b32);
                let pos_b = self.adjacency[b]
                    .binary_search(&a32)
                    .expect_err("adjacency lists out of sync");
                self.adjacency[b].insert(pos_b, a32);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Whether the undirected edge `{a, b}` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        if a >= self.num_users() || b >= self.num_users() || a == b {
            return false;
        }
        self.adjacency[a].binary_search(&(b as u32)).is_ok()
    }

    /// Degree of user `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency[u].len()
    }

    /// Degrees of all users, in user order.
    pub fn degrees(&self) -> Vec<usize> {
        self.adjacency.iter().map(Vec::len).collect()
    }

    /// Neighbours of user `u`, sorted by id.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.adjacency[u]
    }

    /// Iterates over every undirected edge exactly once, as `(lo, hi)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(a, nbrs)| {
            nbrs.iter()
                .filter(move |&&b| (b as usize) > a)
                .map(move |&b| (a, b as usize))
        })
    }

    /// Degree of potential interaction `D(G, u)` for every user
    /// (Definition 6): `deg(u) / (|U| − 1)`, or 0 when `|U| ≤ 1`.
    ///
    /// The result is exactly the `interaction_scores` vector expected by
    /// `igepa_core::InstanceBuilder`.
    pub fn degrees_of_potential_interaction(&self) -> Vec<f64> {
        let n = self.num_users();
        if n <= 1 {
            return vec![0.0; n];
        }
        let denom = (n - 1) as f64;
        self.adjacency
            .iter()
            .map(|nbrs| nbrs.len() as f64 / denom)
            .collect()
    }

    /// Degree of potential interaction of a single user.
    pub fn degree_of_potential_interaction(&self, u: usize) -> f64 {
        let n = self.num_users();
        if n <= 1 {
            return 0.0;
        }
        self.degree(u) as f64 / (n - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_network_has_no_edges() {
        let g = SocialNetwork::new(5);
        assert_eq!(g.num_users(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degrees(), vec![0; 5]);
    }

    #[test]
    fn add_edge_is_undirected_and_idempotent() {
        let mut g = SocialNetwork::new(3);
        assert!(g.add_edge(0, 2));
        assert!(!g.add_edge(2, 0));
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = SocialNetwork::new(2);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    #[should_panic(expected = "references a user outside")]
    fn out_of_range_edge_panics() {
        let mut g = SocialNetwork::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn from_edges_deduplicates() {
        let g = SocialNetwork::from_edges(4, vec![(0, 1), (1, 0), (2, 3), (2, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn edges_iterates_each_pair_once() {
        let g = SocialNetwork::from_edges(4, vec![(0, 1), (1, 2), (0, 3)]);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn interaction_degree_matches_definition_six() {
        // 4 users: degrees 2, 1, 1, 0 -> D = deg / 3.
        let g = SocialNetwork::from_edges(4, vec![(0, 1), (0, 2)]);
        let d = g.degrees_of_potential_interaction();
        assert!((d[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((d[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d[3], 0.0);
        assert!((g.degree_of_potential_interaction(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn interaction_degree_of_tiny_networks_is_zero() {
        assert!(SocialNetwork::new(0)
            .degrees_of_potential_interaction()
            .is_empty());
        assert_eq!(
            SocialNetwork::new(1).degrees_of_potential_interaction(),
            vec![0.0]
        );
        assert_eq!(
            SocialNetwork::new(1).degree_of_potential_interaction(0),
            0.0
        );
    }

    #[test]
    fn complete_graph_has_interaction_one() {
        let n = 6;
        let mut g = SocialNetwork::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        assert_eq!(g.num_edges(), n * (n - 1) / 2);
        for d in g.degrees_of_potential_interaction() {
            assert!((d - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = SocialNetwork::from_edges(5, vec![(2, 4), (2, 0), (2, 3)]);
        assert_eq!(g.neighbors(2), &[0, 3, 4]);
    }
}
