//! # igepa-graph — social-network substrate for IGEPA
//!
//! The utility of an IGEPA arrangement rewards socially active participants
//! through the *degree of potential interaction* `D(G, u)` (Definition 6 of
//! the paper): the degree of user `u` in the social network `G = (U, E)`,
//! normalised by `|U| − 1`.
//!
//! This crate provides:
//!
//! * [`SocialNetwork`] — compact undirected graph storage over the user set,
//!   with [`SocialNetwork::degrees_of_potential_interaction`] producing the
//!   score vector consumed by `igepa_core::InstanceBuilder`;
//! * [`generators`] — Erdős–Rényi (`pdeg` of Table I), group-overlap (the
//!   Meetup rule), Barabási–Albert and Watts–Strogatz models;
//! * [`metrics`] — density, degree histograms, clustering and connected
//!   components for workload reporting.
//!
//! ```
//! use igepa_graph::{generators, SocialNetwork, metrics::NetworkStats};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g: SocialNetwork = generators::erdos_renyi(100, 0.1, &mut rng);
//! let interaction = g.degrees_of_potential_interaction();
//! assert_eq!(interaction.len(), 100);
//! assert!(NetworkStats::of(&g).density > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod centrality;
pub mod community;
pub mod components;
pub mod generators;
pub mod graph;
pub mod interaction;
pub mod metrics;
pub mod paths;

pub use centrality::{
    betweenness_centrality, closeness_centrality, core_numbers, degree_centrality,
    eigenvector_centrality, pagerank, PageRankConfig,
};
pub use community::{greedy_modularity, label_propagation, modularity, Partition};
pub use components::{DenseDisjointSets, DenseInterner, DisjointSets};
pub use generators::{
    barabasi_albert, erdos_renyi, from_group_memberships, random_edges, watts_strogatz,
};
pub use graph::SocialNetwork;
pub use interaction::InteractionMeasure;
pub use metrics::NetworkStats;
pub use paths::{
    average_path_length, bfs_distances, diameter, eccentricity, is_connected, reachable_count,
    UNREACHABLE,
};
