//! Community detection over the social network.
//!
//! EBSN friendship graphs are formed from shared Meetup groups, so they have
//! pronounced community structure. The clustered workload generator
//! (`igepa-datagen`) plants such communities, and the analysis tooling here
//! recovers them: asynchronous **label propagation** for the partition and
//! **Newman modularity** as the quality score, plus a deterministic greedy
//! merge refinement for small graphs.

use crate::graph::SocialNetwork;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// A partition of the vertex set into communities.
///
/// `membership[u]` is the community label of vertex `u`; labels are
/// normalised to `0..num_communities`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    membership: Vec<usize>,
    num_communities: usize,
}

impl Partition {
    /// Builds a partition from raw (not necessarily contiguous) labels.
    pub fn from_labels(labels: Vec<usize>) -> Self {
        let mut remap: HashMap<usize, usize> = HashMap::new();
        let mut membership = Vec::with_capacity(labels.len());
        for label in labels {
            let next = remap.len();
            let id = *remap.entry(label).or_insert(next);
            membership.push(id);
        }
        Partition {
            num_communities: remap.len(),
            membership,
        }
    }

    /// The singleton partition: every vertex in its own community.
    pub fn singletons(num_vertices: usize) -> Self {
        Partition {
            membership: (0..num_vertices).collect(),
            num_communities: num_vertices,
        }
    }

    /// Community label of a vertex.
    pub fn community_of(&self, u: usize) -> usize {
        self.membership[u]
    }

    /// Number of communities in the partition.
    pub fn num_communities(&self) -> usize {
        self.num_communities
    }

    /// Number of vertices covered by the partition.
    pub fn num_vertices(&self) -> usize {
        self.membership.len()
    }

    /// Community membership vector, indexed by vertex.
    pub fn membership(&self) -> &[usize] {
        &self.membership
    }

    /// Vertices of every community, indexed by community label.
    pub fn communities(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_communities];
        for (u, &c) in self.membership.iter().enumerate() {
            groups[c].push(u);
        }
        groups
    }

    /// Sizes of the communities, sorted in descending order.
    pub fn sizes_desc(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.communities().iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// Whether two vertices share a community.
    pub fn same_community(&self, a: usize, b: usize) -> bool {
        self.membership[a] == self.membership[b]
    }
}

/// Newman modularity `Q` of a partition:
/// `Q = Σ_c (e_c / m − (d_c / 2m)²)` where `e_c` is the number of
/// intra-community edges, `d_c` the total degree of community `c` and `m`
/// the number of edges. Returns 0 for edgeless graphs.
pub fn modularity(g: &SocialNetwork, partition: &Partition) -> f64 {
    let m = g.num_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let k = partition.num_communities();
    let mut intra_edges = vec![0.0_f64; k];
    let mut total_degree = vec![0.0_f64; k];
    for (a, b) in g.edges() {
        let ca = partition.community_of(a);
        let cb = partition.community_of(b);
        if ca == cb {
            intra_edges[ca] += 1.0;
        }
    }
    for u in 0..g.num_users() {
        total_degree[partition.community_of(u)] += g.degree(u) as f64;
    }
    (0..k)
        .map(|c| intra_edges[c] / m - (total_degree[c] / (2.0 * m)).powi(2))
        .sum()
}

/// Asynchronous label propagation.
///
/// Every vertex starts in its own community; in each round the vertices are
/// visited in random order and adopt the most frequent label among their
/// neighbours (ties broken towards the lowest label for determinism given
/// the visiting order). Stops when a round changes nothing or after
/// `max_rounds`.
pub fn label_propagation<R: Rng + ?Sized>(
    g: &SocialNetwork,
    max_rounds: usize,
    rng: &mut R,
) -> Partition {
    let n = g.num_users();
    let mut labels: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = (0..n).collect();

    for _ in 0..max_rounds.max(1) {
        order.shuffle(rng);
        let mut changed = false;
        for &u in &order {
            if g.degree(u) == 0 {
                continue;
            }
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for &w in g.neighbors(u) {
                *counts.entry(labels[w as usize]).or_insert(0) += 1;
            }
            // Most frequent neighbour label, lowest label on ties.
            let best = counts
                .iter()
                .map(|(&label, &count)| (count, std::cmp::Reverse(label)))
                .max()
                .map(|(_, std::cmp::Reverse(label))| label)
                .expect("degree > 0 implies at least one neighbour label");
            if best != labels[u] {
                labels[u] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Partition::from_labels(labels)
}

/// Deterministic greedy modularity merging (a compact CNM-style pass).
///
/// Starts from singleton communities and repeatedly merges the pair of
/// *adjacent* communities whose merge increases modularity the most, until
/// no merge improves it. Quadratic in the number of communities per merge,
/// so intended for reporting on paper-scale instances, not huge graphs.
pub fn greedy_modularity(g: &SocialNetwork) -> Partition {
    let n = g.num_users();
    let m = g.num_edges() as f64;
    if n == 0 || m == 0.0 {
        return Partition::singletons(n);
    }

    let mut labels: Vec<usize> = (0..n).collect();
    loop {
        let partition = Partition::from_labels(labels.clone());
        let k = partition.num_communities();
        if k <= 1 {
            break;
        }
        // Aggregate community-level quantities.
        let mut degree_sum = vec![0.0_f64; k];
        for u in 0..n {
            degree_sum[partition.community_of(u)] += g.degree(u) as f64;
        }
        let mut between: HashMap<(usize, usize), f64> = HashMap::new();
        for (a, b) in g.edges() {
            let (ca, cb) = (partition.community_of(a), partition.community_of(b));
            if ca != cb {
                let key = (ca.min(cb), ca.max(cb));
                *between.entry(key).or_insert(0.0) += 1.0;
            }
        }
        // ΔQ of merging communities i and j:
        //   e_ij / m − 2 (d_i / 2m)(d_j / 2m)
        let mut best: Option<((usize, usize), f64)> = None;
        for (&(i, j), &e_ij) in &between {
            let delta = e_ij / m - 2.0 * (degree_sum[i] / (2.0 * m)) * (degree_sum[j] / (2.0 * m));
            match best {
                Some((_, d)) if d >= delta => {}
                _ => best = Some(((i, j), delta)),
            }
        }
        match best {
            Some(((i, j), delta)) if delta > 1e-12 => {
                // Re-label: vertices in community j join community i.
                let mut new_labels = Vec::with_capacity(n);
                for u in 0..n {
                    let c = partition.community_of(u);
                    new_labels.push(if c == j { i } else { c });
                }
                labels = new_labels;
            }
            _ => break,
        }
    }
    Partition::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two 5-cliques joined by a single bridge edge.
    fn two_cliques() -> SocialNetwork {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((0, 5));
        SocialNetwork::from_edges(10, edges)
    }

    #[test]
    fn partition_normalises_labels() {
        let p = Partition::from_labels(vec![7, 7, 3, 9, 3]);
        assert_eq!(p.num_communities(), 3);
        assert_eq!(p.num_vertices(), 5);
        assert!(p.same_community(0, 1));
        assert!(p.same_community(2, 4));
        assert!(!p.same_community(0, 3));
        assert_eq!(p.sizes_desc(), vec![2, 2, 1]);
    }

    #[test]
    fn singleton_partition_has_zero_or_negative_modularity() {
        let g = two_cliques();
        let q = modularity(&g, &Partition::singletons(10));
        assert!(q <= 0.0);
    }

    #[test]
    fn planted_partition_has_high_modularity() {
        let g = two_cliques();
        let planted = Partition::from_labels(vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1]);
        let q = modularity(&g, &planted);
        // 20 of 21 edges are intra-community.
        assert!(q > 0.4, "modularity {q}");
        // Merging everything into one community scores 0.
        let one = Partition::from_labels(vec![0; 10]);
        assert!(modularity(&g, &one).abs() < 1e-12);
        assert!(q > modularity(&g, &one));
    }

    #[test]
    fn modularity_of_edgeless_graph_is_zero() {
        let g = SocialNetwork::new(5);
        assert_eq!(modularity(&g, &Partition::singletons(5)), 0.0);
    }

    #[test]
    fn label_propagation_recovers_two_cliques() {
        let g = two_cliques();
        let mut rng = StdRng::seed_from_u64(4);
        let p = label_propagation(&g, 50, &mut rng);
        // The two cliques must each end up internally consistent.
        for a in 0..5 {
            assert!(p.same_community(0, a), "clique 1 split");
            assert!(p.same_community(5, a + 5), "clique 2 split");
        }
        assert!(p.num_communities() <= 2);
        assert!(modularity(&g, &p) >= 0.0);
    }

    #[test]
    fn label_propagation_leaves_isolated_vertices_alone() {
        let mut g = SocialNetwork::new(4);
        g.add_edge(0, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let p = label_propagation(&g, 20, &mut rng);
        assert!(p.same_community(0, 1));
        assert!(!p.same_community(2, 3));
    }

    #[test]
    fn greedy_modularity_recovers_two_cliques() {
        let g = two_cliques();
        let p = greedy_modularity(&g);
        for a in 1..5 {
            assert!(p.same_community(0, a));
            assert!(p.same_community(5, a + 5));
        }
        assert_eq!(p.num_communities(), 2);
        let q = modularity(&g, &p);
        assert!(q > 0.4);
    }

    #[test]
    fn greedy_modularity_on_edgeless_graph_keeps_singletons() {
        let g = SocialNetwork::new(6);
        let p = greedy_modularity(&g);
        assert_eq!(p.num_communities(), 6);
    }

    #[test]
    fn greedy_modularity_never_scores_below_zero_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(9);
        for seed in 0..3 {
            let g = generators::erdos_renyi(40 + seed * 10, 0.1, &mut rng);
            let p = greedy_modularity(&g);
            if g.num_edges() > 0 {
                assert!(modularity(&g, &p) >= -1e-12);
            }
        }
    }

    #[test]
    fn group_overlap_graph_communities_match_groups() {
        // Users 0-4 share group A, users 5-9 share group B → two cliques.
        let memberships: Vec<Vec<usize>> = vec![(0..5).collect(), (5..10).collect()];
        let g = generators::from_group_memberships(10, &memberships);
        let p = greedy_modularity(&g);
        assert_eq!(p.num_communities(), 2);
        assert!(p.same_community(0, 4));
        assert!(p.same_community(5, 9));
        assert!(!p.same_community(0, 9));
    }
}
