//! Sparse disjoint-set union over an arbitrary node universe.
//!
//! The serving engine splits a shard's dirty set into independent
//! connected components of the repair-interference graph so components
//! can be repaired concurrently. Node ids there are drawn from two huge
//! dense spaces (users and events), but a repair only ever touches a
//! handful of them — so the union-find here is **sparse**: state is
//! allocated per *touched* node, found by binary search over a sorted
//! node table, keeping the whole structure O(changed) rather than
//! O(universe).
//!
//! Determinism: components are reported sorted by their smallest member,
//! with members sorted ascending — the grouping is a pure function of
//! the inserted nodes and union edges, independent of insertion order.

/// Sparse union-find: tracks connectivity among an explicitly inserted
/// set of `u64` node keys.
///
/// Callers encode their own id spaces into the key (e.g. users as `2k`,
/// events as `2k + 1`). All operations after [`DisjointSets::build`] are
/// O(α) amortised plus an O(log n) key lookup.
#[derive(Debug, Clone)]
pub struct DisjointSets {
    /// Sorted, deduplicated node keys; index in this table is the dense
    /// internal id.
    keys: Vec<u64>,
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl DisjointSets {
    /// Builds the structure over the given node keys (duplicates are
    /// collapsed; order does not matter).
    pub fn build(mut nodes: Vec<u64>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        let n = nodes.len();
        DisjointSets {
            keys: nodes,
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Dense internal id of `key`, if it was inserted.
    pub fn index_of(&self, key: u64) -> Option<usize> {
        self.keys.binary_search(&key).ok()
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            // Path halving.
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// Unions the sets containing `a` and `b`. Both keys must have been
    /// inserted at build time; unknown keys are ignored (the edge is
    /// irrelevant to the tracked universe).
    pub fn union(&mut self, a: u64, b: u64) {
        let (Some(a), Some(b)) = (self.index_of(a), self.index_of(b)) else {
            return;
        };
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }

    /// Whether `a` and `b` are currently in the same set (false if
    /// either key is unknown).
    pub fn connected(&mut self, a: u64, b: u64) -> bool {
        match (self.index_of(a), self.index_of(b)) {
            (Some(a), Some(b)) => self.find(a) == self.find(b),
            _ => false,
        }
    }

    /// Extracts the connected components as sorted member lists, ordered
    /// by smallest member — deterministic regardless of build or union
    /// order.
    pub fn components(mut self) -> Vec<Vec<u64>> {
        let n = self.keys.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<u64>> = Default::default();
        for i in 0..n {
            let root = self.find(i);
            by_root.entry(root).or_default().push(self.keys[i]);
        }
        // Keys were visited in ascending order, so each member list is
        // already sorted; sort the components by smallest member.
        let mut out: Vec<Vec<u64>> = by_root.into_values().collect();
        out.sort_by_key(|c| c[0]);
        out
    }
}

/// Epoch-stamped interner from a bounded `usize` key space to dense ids
/// `0..len()`.
///
/// [`DenseInterner::begin`] resets the mapping in O(1) by bumping an
/// epoch instead of clearing the table, so a caller that interns a few
/// dozen keys per round out of a universe of millions pays O(touched)
/// per round and O(universe) memory once. This is the front half of the
/// repair-interference component split: node keys are interned while
/// the graph is built, and the union-find then runs over dense ids with
/// no per-operation key lookup at all (compare [`DisjointSets`], whose
/// binary-search lookups dominate on large dirty sets).
#[derive(Debug, Clone, Default)]
pub struct DenseInterner {
    /// Generation stamp; `table` entries from older generations are
    /// treated as absent.
    epoch: u32,
    next: u32,
    /// `epoch << 32 | id` per key; stale epochs mean "not interned".
    table: Vec<u64>,
}

impl DenseInterner {
    /// Starts a fresh mapping over keys `0..key_bound`. O(1) unless the
    /// table needs to grow (or the 32-bit epoch wraps, which forces one
    /// O(universe) clear every 2^32 rounds).
    pub fn begin(&mut self, key_bound: usize) {
        if self.epoch == u32::MAX {
            self.table.clear();
            self.epoch = 0;
        }
        self.epoch += 1;
        self.next = 0;
        if self.table.len() < key_bound {
            self.table.resize(key_bound, 0);
        }
    }

    /// Dense id of `key`, allocating the next id on first sight this
    /// epoch.
    pub fn intern(&mut self, key: usize) -> u32 {
        let entry = self.table[key];
        if (entry >> 32) as u32 == self.epoch {
            return entry as u32;
        }
        let id = self.next;
        self.next += 1;
        self.table[key] = (u64::from(self.epoch) << 32) | u64::from(id);
        id
    }

    /// Dense id of `key` if it was interned this epoch.
    pub fn get(&self, key: usize) -> Option<u32> {
        let entry = *self.table.get(key)?;
        ((entry >> 32) as u32 == self.epoch).then_some(entry as u32)
    }

    /// Number of keys interned this epoch.
    pub fn len(&self) -> usize {
        self.next as usize
    }

    /// Whether nothing was interned this epoch.
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }
}

/// Dense union-find over ids `0..n` — the back half of the interned
/// component split. All operations are O(α) amortised with plain array
/// reads; there is no key lookup anywhere.
#[derive(Debug, Clone)]
pub struct DenseDisjointSets {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl DenseDisjointSets {
    /// Builds `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DenseDisjointSets {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of tracked ids.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no ids are tracked.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    fn find(&mut self, mut i: u32) -> u32 {
        while self.parent[i as usize] != i {
            // Path halving.
            self.parent[i as usize] = self.parent[self.parent[i as usize] as usize];
            i = self.parent[i as usize];
        }
        i
    }

    /// Unions the sets containing ids `a` and `b`.
    pub fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Extracts the connected components as member-id lists in ascending
    /// id order, ordered by smallest member — deterministic regardless
    /// of union order.
    pub fn components(mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len() as u32;
        // First visit in ascending id order assigns component positions
        // by smallest member, so no sort is needed afterwards.
        let mut slot_of_root: Vec<u32> = vec![u32::MAX; n as usize];
        let mut out: Vec<Vec<u32>> = Vec::new();
        for i in 0..n {
            let root = self.find(i) as usize;
            if slot_of_root[root] == u32::MAX {
                slot_of_root[root] = out.len() as u32;
                out.push(Vec::new());
            }
            out[slot_of_root[root] as usize].push(i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_components_without_unions() {
        let sets = DisjointSets::build(vec![10, 3, 7, 3]);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets.components(), vec![vec![3], vec![7], vec![10]]);
    }

    #[test]
    fn unions_merge_components_deterministically() {
        let mut a = DisjointSets::build(vec![1, 2, 3, 4, 5]);
        a.union(1, 3);
        a.union(5, 4);
        a.union(3, 2);
        let mut b = DisjointSets::build(vec![5, 4, 3, 2, 1]);
        b.union(3, 2);
        b.union(1, 3);
        b.union(4, 5);
        let components = a.components();
        assert_eq!(components, vec![vec![1, 2, 3], vec![4, 5]]);
        assert_eq!(components, b.components());
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let mut sets = DisjointSets::build(vec![1, 2]);
        sets.union(1, 99);
        sets.union(98, 2);
        assert!(!sets.connected(1, 2));
        assert!(!sets.connected(1, 99));
        sets.union(1, 2);
        assert!(sets.connected(1, 2));
    }

    #[test]
    fn sparse_keys_far_apart_work() {
        let mut sets = DisjointSets::build(vec![0, u64::MAX, 1 << 40]);
        sets.union(0, u64::MAX);
        assert!(sets.connected(u64::MAX, 0));
        let components = sets.components();
        assert_eq!(components, vec![vec![0, u64::MAX], vec![1 << 40]]);
    }

    #[test]
    fn interner_assigns_dense_ids_in_first_sight_order() {
        let mut interner = DenseInterner::default();
        interner.begin(10);
        assert_eq!(interner.intern(7), 0);
        assert_eq!(interner.intern(3), 1);
        assert_eq!(interner.intern(7), 0);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.get(3), Some(1));
        assert_eq!(interner.get(4), None);
    }

    #[test]
    fn interner_epochs_reset_in_constant_time() {
        let mut interner = DenseInterner::default();
        interner.begin(5);
        interner.intern(2);
        interner.begin(5);
        assert!(interner.is_empty());
        assert_eq!(interner.get(2), None);
        assert_eq!(interner.intern(4), 0);
    }

    #[test]
    fn dense_union_find_matches_the_sparse_one() {
        let keys: Vec<u64> = vec![1, 2, 3, 4, 5];
        let mut sparse = DisjointSets::build(keys.clone());
        let mut dense = DenseDisjointSets::new(keys.len());
        for (a, b) in [(1u64, 3), (5, 4), (3, 2)] {
            sparse.union(a, b);
            dense.union(a as u32 - 1, b as u32 - 1);
        }
        let dense_as_keys: Vec<Vec<u64>> = dense
            .components()
            .into_iter()
            .map(|c| c.into_iter().map(|i| keys[i as usize]).collect())
            .collect();
        assert_eq!(sparse.components(), dense_as_keys);
    }

    #[test]
    fn dense_components_order_by_smallest_member() {
        let mut sets = DenseDisjointSets::new(6);
        sets.union(5, 0);
        sets.union(3, 1);
        assert!(sets.connected(0, 5));
        assert!(!sets.connected(0, 1));
        assert_eq!(
            sets.components(),
            vec![vec![0, 5], vec![1, 3], vec![2], vec![4]]
        );
    }
}
