//! Structural metrics over social networks.
//!
//! These are used by the experiment harness to report workload
//! characteristics (density, degree distribution, clustering, connectivity)
//! alongside utility numbers, and by tests to validate the generators.

use crate::graph::SocialNetwork;
use serde::{Deserialize, Serialize};

/// Edge density: `|E| / C(|U|, 2)`, or 0 for fewer than two users.
pub fn density(g: &SocialNetwork) -> f64 {
    let n = g.num_users();
    if n < 2 {
        return 0.0;
    }
    g.num_edges() as f64 / ((n * (n - 1)) / 2) as f64
}

/// Mean degree over all users (0 for the empty graph).
pub fn mean_degree(g: &SocialNetwork) -> f64 {
    let n = g.num_users();
    if n == 0 {
        return 0.0;
    }
    2.0 * g.num_edges() as f64 / n as f64
}

/// Histogram of degrees: `histogram[d]` is the number of users with degree `d`.
pub fn degree_histogram(g: &SocialNetwork) -> Vec<usize> {
    let degrees = g.degrees();
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in degrees {
        hist[d] += 1;
    }
    hist
}

/// Global clustering via the average of local clustering coefficients.
///
/// The local coefficient of a node with degree < 2 is defined as 0.
pub fn average_clustering(g: &SocialNetwork) -> f64 {
    let n = g.num_users();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for u in 0..n {
        let nbrs = g.neighbors(u);
        let k = nbrs.len();
        if k < 2 {
            continue;
        }
        let mut links = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a as usize, b as usize) {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (k * (k - 1)) as f64;
    }
    total / n as f64
}

/// Connected components, as a vector of sorted node lists, largest first.
pub fn connected_components(g: &SocialNetwork) -> Vec<Vec<usize>> {
    let n = g.num_users();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![start];
        let mut component = Vec::new();
        seen[start] = true;
        while let Some(u) = stack.pop() {
            component.push(u);
            for &v in g.neighbors(u) {
                let v = v as usize;
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// Summary of a social network, reported by the experiment harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of users.
    pub num_users: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Edge density in `[0, 1]`.
    pub density: f64,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average local clustering coefficient.
    pub clustering: f64,
    /// Number of connected components.
    pub num_components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
}

impl NetworkStats {
    /// Computes all statistics for the given network.
    pub fn of(g: &SocialNetwork) -> Self {
        let components = connected_components(g);
        NetworkStats {
            num_users: g.num_users(),
            num_edges: g.num_edges(),
            density: density(g),
            mean_degree: mean_degree(g),
            max_degree: g.degrees().into_iter().max().unwrap_or(0),
            clustering: average_clustering(g),
            num_components: components.len(),
            largest_component: components.first().map(Vec::len).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolated() -> SocialNetwork {
        // 0-1-2 triangle, 3 isolated.
        SocialNetwork::from_edges(4, vec![(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn density_of_triangle_plus_isolated() {
        let g = triangle_plus_isolated();
        assert!((density(&g) - 3.0 / 6.0).abs() < 1e-12);
        assert_eq!(density(&SocialNetwork::new(1)), 0.0);
    }

    #[test]
    fn mean_degree_counts_both_endpoints() {
        let g = triangle_plus_isolated();
        assert!((mean_degree(&g) - 6.0 / 4.0).abs() < 1e-12);
        assert_eq!(mean_degree(&SocialNetwork::new(0)), 0.0);
    }

    #[test]
    fn degree_histogram_counts() {
        let g = triangle_plus_isolated();
        assert_eq!(degree_histogram(&g), vec![1, 0, 3]);
        assert_eq!(degree_histogram(&SocialNetwork::new(3)), vec![3]);
    }

    #[test]
    fn clustering_of_triangle_is_three_quarters_here() {
        let g = triangle_plus_isolated();
        // Triangle nodes each have coefficient 1; the isolated node has 0.
        assert!((average_clustering(&g) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_path_is_zero() {
        let g = SocialNetwork::from_edges(3, vec![(0, 1), (1, 2)]);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn components_split_and_ordered_by_size() {
        let g = SocialNetwork::from_edges(6, vec![(0, 1), (1, 2), (3, 4)]);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5]);
    }

    #[test]
    fn stats_aggregate_everything() {
        let g = triangle_plus_isolated();
        let s = NetworkStats::of(&g);
        assert_eq!(s.num_users, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.num_components, 2);
        assert_eq!(s.largest_component, 3);
        assert!((s.clustering - 0.75).abs() < 1e-12);
    }
}
