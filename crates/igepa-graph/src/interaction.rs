//! Alternative "degree of potential interaction" measures.
//!
//! Definition 6 of the paper fixes `D(G, u) = deg(u) / (|U| − 1)`, citing
//! Freeman's centrality survey. That is one member of a family of
//! interaction measures; the ablation experiments swap the measure to check
//! whether LP-packing's advantage over the baselines depends on the exact
//! choice. Every measure returns a score vector in `[0, 1]` suitable for
//! `igepa_core::InstanceBuilder::interaction_scores`.

use crate::centrality::{
    closeness_centrality, core_numbers, degree_centrality, eigenvector_centrality, pagerank,
    PageRankConfig,
};
use crate::graph::SocialNetwork;
use serde::{Deserialize, Serialize};

/// Which social-network statistic is used as the interaction score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InteractionMeasure {
    /// `deg(u) / (|U| − 1)` — the paper's Definition 6 (the default).
    #[default]
    Degree,
    /// Harmonic closeness centrality.
    Closeness,
    /// PageRank, rescaled so the largest score is 1.
    PageRank,
    /// Eigenvector centrality (already in `[0, 1]`).
    Eigenvector,
    /// Core number, rescaled by the maximum core number.
    CoreNumber,
}

impl InteractionMeasure {
    /// All measures, in a stable order used by the ablation sweep.
    pub fn all() -> [InteractionMeasure; 5] {
        [
            InteractionMeasure::Degree,
            InteractionMeasure::Closeness,
            InteractionMeasure::PageRank,
            InteractionMeasure::Eigenvector,
            InteractionMeasure::CoreNumber,
        ]
    }

    /// Stable identifier used in reports and CSV headers.
    pub fn id(&self) -> &'static str {
        match self {
            InteractionMeasure::Degree => "degree",
            InteractionMeasure::Closeness => "closeness",
            InteractionMeasure::PageRank => "pagerank",
            InteractionMeasure::Eigenvector => "eigenvector",
            InteractionMeasure::CoreNumber => "core",
        }
    }

    /// Parses the identifier produced by [`InteractionMeasure::id`].
    pub fn parse(text: &str) -> Option<InteractionMeasure> {
        match text.trim().to_ascii_lowercase().as_str() {
            "degree" => Some(InteractionMeasure::Degree),
            "closeness" => Some(InteractionMeasure::Closeness),
            "pagerank" => Some(InteractionMeasure::PageRank),
            "eigenvector" => Some(InteractionMeasure::Eigenvector),
            "core" | "corenumber" | "core-number" => Some(InteractionMeasure::CoreNumber),
            _ => None,
        }
    }

    /// Computes the per-user interaction scores in `[0, 1]`.
    pub fn scores(&self, g: &SocialNetwork) -> Vec<f64> {
        match self {
            InteractionMeasure::Degree => degree_centrality(g),
            InteractionMeasure::Closeness => closeness_centrality(g),
            InteractionMeasure::PageRank => rescale_by_max(pagerank(g, &PageRankConfig::default())),
            InteractionMeasure::Eigenvector => eigenvector_centrality(g, 200, 1e-10),
            InteractionMeasure::CoreNumber => {
                rescale_by_max(core_numbers(g).into_iter().map(|c| c as f64).collect())
            }
        }
    }
}

impl std::fmt::Display for InteractionMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

fn rescale_by_max(mut scores: Vec<f64>) -> Vec<f64> {
    let max = scores.iter().cloned().fold(0.0_f64, f64::max);
    if max > f64::EPSILON {
        for s in &mut scores {
            *s /= max;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graph() -> SocialNetwork {
        let mut rng = StdRng::seed_from_u64(100);
        generators::barabasi_albert(80, 2, &mut rng)
    }

    #[test]
    fn every_measure_stays_in_unit_interval() {
        let g = sample_graph();
        for measure in InteractionMeasure::all() {
            let scores = measure.scores(&g);
            assert_eq!(scores.len(), g.num_users(), "{measure}");
            for &s in &scores {
                assert!((0.0..=1.0 + 1e-12).contains(&s), "{measure}: {s}");
            }
        }
    }

    #[test]
    fn degree_measure_matches_paper_definition() {
        let g = sample_graph();
        let ours = InteractionMeasure::Degree.scores(&g);
        let paper = g.degrees_of_potential_interaction();
        for (a, b) in ours.iter().zip(paper.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn ids_round_trip_through_parse() {
        for measure in InteractionMeasure::all() {
            assert_eq!(InteractionMeasure::parse(measure.id()), Some(measure));
            assert_eq!(
                InteractionMeasure::parse(&measure.id().to_uppercase()),
                Some(measure)
            );
        }
        assert_eq!(InteractionMeasure::parse("nope"), None);
    }

    #[test]
    fn default_measure_is_degree() {
        assert_eq!(InteractionMeasure::default(), InteractionMeasure::Degree);
    }

    #[test]
    fn hubs_score_high_under_every_measure() {
        // A star: the hub must dominate the leaves under every measure.
        let g = SocialNetwork::from_edges(12, (1..12).map(|i| (0, i)));
        for measure in InteractionMeasure::all() {
            let scores = measure.scores(&g);
            for leaf in 1..12 {
                assert!(
                    scores[0] >= scores[leaf] - 1e-12,
                    "{measure}: hub {} < leaf {}",
                    scores[0],
                    scores[leaf]
                );
            }
        }
    }

    #[test]
    fn edgeless_graph_yields_zero_or_uniform_scores() {
        let g = SocialNetwork::new(6);
        for measure in InteractionMeasure::all() {
            let scores = measure.scores(&g);
            assert_eq!(scores.len(), 6);
            let first = scores[0];
            assert!(scores.iter().all(|&s| (s - first).abs() < 1e-12));
        }
    }
}
