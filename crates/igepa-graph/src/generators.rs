//! Random and structured social-network generators.
//!
//! The paper's synthetic workloads connect "each pair of users ... with the
//! probability of `pdeg`" — an Erdős–Rényi `G(n, p)` graph — while the real
//! Meetup dataset links two users iff they share at least one group. Both
//! generators live here, together with Barabási–Albert and Watts–Strogatz
//! models used by the extension experiments to probe how degree skew affects
//! the interaction term of the utility.

use crate::graph::SocialNetwork;
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: every unordered pair becomes an edge independently
/// with probability `p`. This is the `pdeg` model of the paper's Table I.
pub fn erdos_renyi<R: Rng + ?Sized>(num_users: usize, p: f64, rng: &mut R) -> SocialNetwork {
    let mut g = SocialNetwork::new(num_users);
    if p <= 0.0 {
        return g;
    }
    for a in 0..num_users {
        for b in (a + 1)..num_users {
            if p >= 1.0 || rng.gen_bool(p) {
                g.add_edge(a, b);
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches every new node to `m` existing nodes chosen proportionally to
/// their degree. Produces the heavy-tailed degree distributions observed on
/// real EBSNs.
pub fn barabasi_albert<R: Rng + ?Sized>(num_users: usize, m: usize, rng: &mut R) -> SocialNetwork {
    let mut g = SocialNetwork::new(num_users);
    if num_users == 0 || m == 0 {
        return g;
    }
    let m = m.min(num_users.saturating_sub(1)).max(1);
    // Seed clique over the first m + 1 nodes.
    let seed = (m + 1).min(num_users);
    for a in 0..seed {
        for b in (a + 1)..seed {
            g.add_edge(a, b);
        }
    }
    // `targets` holds one entry per edge endpoint, so sampling uniformly from
    // it is sampling proportionally to degree.
    let mut endpoints: Vec<usize> = Vec::new();
    for (a, b) in g.edges().collect::<Vec<_>>() {
        endpoints.push(a);
        endpoints.push(b);
    }
    for new_node in seed..num_users {
        let mut chosen = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let target = if endpoints.is_empty() {
                rng.gen_range(0..new_node)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if target != new_node && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &target in &chosen {
            if g.add_edge(new_node, target) {
                endpoints.push(new_node);
                endpoints.push(target);
            }
        }
    }
    g
}

/// Watts–Strogatz small-world graph: a ring lattice where every node is
/// connected to its `k` nearest neighbours (k/2 on each side), with each
/// edge rewired to a random endpoint with probability `p_rewire`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    num_users: usize,
    k: usize,
    p_rewire: f64,
    rng: &mut R,
) -> SocialNetwork {
    let mut g = SocialNetwork::new(num_users);
    if num_users < 2 || k == 0 {
        return g;
    }
    let half = (k / 2).max(1).min(num_users - 1);
    for a in 0..num_users {
        for offset in 1..=half {
            let b = (a + offset) % num_users;
            if a == b {
                continue;
            }
            if p_rewire > 0.0 && rng.gen_bool(p_rewire.min(1.0)) {
                // Rewire: keep `a`, pick a random other endpoint.
                let mut guard = 0;
                loop {
                    guard += 1;
                    let c = rng.gen_range(0..num_users);
                    if c != a && !g.has_edge(a, c) {
                        g.add_edge(a, c);
                        break;
                    }
                    if guard > 20 {
                        g.add_edge(a, b);
                        break;
                    }
                }
            } else {
                g.add_edge(a, b);
            }
        }
    }
    g
}

/// Links two users iff they share at least one group — the rule the paper
/// uses to derive the social network of the Meetup dataset ("if two users
/// join at least one common group, they have an edge in G").
///
/// `memberships[g]` lists the users belonging to group `g`.
pub fn from_group_memberships(num_users: usize, memberships: &[Vec<usize>]) -> SocialNetwork {
    let mut g = SocialNetwork::new(num_users);
    for members in memberships {
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if a < num_users && b < num_users {
                    g.add_edge(a, b);
                }
            }
        }
    }
    g
}

/// Samples exactly `num_edges` distinct random edges (an Erdős–Rényi
/// `G(n, M)` graph). Useful when a target edge count, rather than an edge
/// probability, should be matched.
pub fn random_edges<R: Rng + ?Sized>(
    num_users: usize,
    num_edges: usize,
    rng: &mut R,
) -> SocialNetwork {
    let mut g = SocialNetwork::new(num_users);
    if num_users < 2 {
        return g;
    }
    let max_edges = num_users * (num_users - 1) / 2;
    let target = num_edges.min(max_edges);
    if target * 3 >= max_edges {
        // Dense regime: enumerate all pairs and shuffle.
        let mut pairs: Vec<(usize, usize)> = (0..num_users)
            .flat_map(|a| ((a + 1)..num_users).map(move |b| (a, b)))
            .collect();
        pairs.shuffle(rng);
        for &(a, b) in pairs.iter().take(target) {
            g.add_edge(a, b);
        }
    } else {
        // Sparse regime: rejection-sample.
        while g.num_edges() < target {
            let a = rng.gen_range(0..num_users);
            let b = rng.gen_range(0..num_users);
            if a != b {
                g.add_edge(a, b);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn erdos_renyi_extremes() {
        let g0 = erdos_renyi(10, 0.0, &mut rng(1));
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(10, 1.0, &mut rng(1));
        assert_eq!(g1.num_edges(), 45);
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi(n, p, &mut rng(7));
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.num_edges() as f64;
        // Loose 3-sigma-ish bound; deterministic because the seed is fixed.
        assert!(
            (actual - expected).abs() < 0.25 * expected,
            "{actual} vs {expected}"
        );
    }

    #[test]
    fn erdos_renyi_is_deterministic_for_a_seed() {
        let a = erdos_renyi(50, 0.2, &mut rng(99));
        let b = erdos_renyi(50, 0.2, &mut rng(99));
        assert_eq!(a, b);
    }

    #[test]
    fn barabasi_albert_has_expected_edge_count() {
        let n = 100;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng(3));
        // seed clique of m+1 nodes + ~m edges per subsequent node
        let min_expected = (n - (m + 1)) + m * (m + 1) / 2;
        assert!(g.num_edges() >= min_expected);
        assert!(g.num_edges() <= m * n + m * (m + 1) / 2);
        // Every late node has degree >= 1.
        for u in 0..n {
            assert!(g.degree(u) >= 1, "node {u} is isolated");
        }
    }

    #[test]
    fn barabasi_albert_degenerate_inputs() {
        assert_eq!(barabasi_albert(0, 2, &mut rng(1)).num_users(), 0);
        assert_eq!(barabasi_albert(5, 0, &mut rng(1)).num_edges(), 0);
        let single = barabasi_albert(1, 3, &mut rng(1));
        assert_eq!(single.num_users(), 1);
        assert_eq!(single.num_edges(), 0);
    }

    #[test]
    fn watts_strogatz_without_rewiring_is_a_ring_lattice() {
        let g = watts_strogatz(10, 2, 0.0, &mut rng(5));
        assert_eq!(g.num_edges(), 10);
        for u in 0..10 {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    fn watts_strogatz_rewiring_preserves_edge_count_roughly() {
        let g = watts_strogatz(50, 4, 0.3, &mut rng(11));
        // Rewiring can occasionally fall back or collide, so allow slack.
        assert!(
            g.num_edges() >= 80 && g.num_edges() <= 100,
            "{}",
            g.num_edges()
        );
    }

    #[test]
    fn group_membership_links_members() {
        let groups = vec![vec![0, 1, 2], vec![2, 3], vec![4]];
        let g = from_group_memberships(5, &groups);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn random_edges_hits_exact_count() {
        let g = random_edges(30, 50, &mut rng(2));
        assert_eq!(g.num_edges(), 50);
        // Request more edges than possible: clamp to the complete graph.
        let g_full = random_edges(5, 1000, &mut rng(2));
        assert_eq!(g_full.num_edges(), 10);
        let g_tiny = random_edges(1, 10, &mut rng(2));
        assert_eq!(g_tiny.num_edges(), 0);
    }
}
