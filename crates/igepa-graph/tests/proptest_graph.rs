//! Property-based tests for the social-network substrate: every generator
//! must produce simple undirected graphs whose interaction degrees satisfy
//! Definition 6 of the paper.

use igepa_graph::{
    barabasi_albert, erdos_renyi, from_group_memberships, metrics, random_edges, watts_strogatz,
    SocialNetwork,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks the structural invariants every generated network must satisfy.
fn check_invariants(g: &SocialNetwork) {
    let n = g.num_users();
    // Handshake lemma: the degree sum equals twice the edge count.
    let degree_sum: usize = g.degrees().iter().sum();
    assert_eq!(degree_sum, 2 * g.num_edges());
    // No self-loops, symmetric adjacency, sorted neighbour lists.
    for u in 0..n {
        let nbrs = g.neighbors(u);
        assert!(
            nbrs.windows(2).all(|w| w[0] < w[1]),
            "unsorted/duplicate neighbours"
        );
        for &v in nbrs {
            assert_ne!(u, v as usize, "self loop at {u}");
            assert!(g.has_edge(v as usize, u), "asymmetric edge {u}-{v}");
        }
    }
    // Definition 6: D(G, u) = deg(u) / (n - 1), clamped to [0, 1].
    let interaction = g.degrees_of_potential_interaction();
    assert_eq!(interaction.len(), n);
    for (u, &d) in interaction.iter().enumerate() {
        assert!((0.0..=1.0).contains(&d), "interaction {d} out of range");
        if n > 1 {
            let expected = g.degree(u) as f64 / (n - 1) as f64;
            assert!((d - expected).abs() < 1e-12);
        } else {
            assert_eq!(d, 0.0);
        }
    }
    // Components partition the node set.
    let components = metrics::connected_components(g);
    let covered: usize = components.iter().map(Vec::len).sum();
    assert_eq!(covered, n);
    // Density is consistent with the edge count.
    if n >= 2 {
        let expected = g.num_edges() as f64 / ((n * (n - 1)) / 2) as f64;
        assert!((metrics::density(g) - expected).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn erdos_renyi_invariants(n in 0usize..120, p in 0.0f64..1.0, seed in 0u64..500) {
        let g = erdos_renyi(n, p, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.num_users(), n);
        check_invariants(&g);
    }

    #[test]
    fn barabasi_albert_invariants(n in 0usize..100, m in 0usize..6, seed in 0u64..500) {
        let g = barabasi_albert(n, m, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.num_users(), n);
        check_invariants(&g);
        // Once the seed clique exists, the graph stays connected.
        if n > 0 && m > 0 {
            let components = metrics::connected_components(&g);
            prop_assert_eq!(components[0].len(), n, "BA graph should be connected");
        }
    }

    #[test]
    fn watts_strogatz_invariants(n in 0usize..100, k in 0usize..8, p in 0.0f64..1.0, seed in 0u64..500) {
        let g = watts_strogatz(n, k, p, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.num_users(), n);
        check_invariants(&g);
    }

    #[test]
    fn random_edges_invariants(n in 0usize..80, m in 0usize..300, seed in 0u64..500) {
        let g = random_edges(n, m, &mut StdRng::seed_from_u64(seed));
        check_invariants(&g);
        let max_edges = if n < 2 { 0 } else { n * (n - 1) / 2 };
        prop_assert_eq!(g.num_edges(), m.min(max_edges));
    }

    #[test]
    fn group_overlap_invariants(
        memberships in proptest::collection::vec(
            proptest::collection::vec(0usize..40, 0..8),
            0..10,
        ),
    ) {
        let g = from_group_memberships(40, &memberships);
        check_invariants(&g);
        // Every pair of users sharing a group must be linked.
        for group in &memberships {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    if a != b {
                        prop_assert!(g.has_edge(a, b));
                    }
                }
            }
        }
    }

    #[test]
    fn determinism_per_seed(n in 2usize..60, p in 0.0f64..1.0, seed in 0u64..500) {
        let a = erdos_renyi(n, p, &mut StdRng::seed_from_u64(seed));
        let b = erdos_renyi(n, p, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }
}
