//! Arrival-sequence generators for online arrangement experiments.
//!
//! The online variants of event-participant arrangement (Section V of the
//! paper cites several) process users one at a time. What order the users
//! arrive in matters; this module generates the arrival processes used by
//! the online experiments and the `online_arrivals` example:
//!
//! * a uniformly random permutation (the standard random-order model);
//! * Poisson arrivals with exponential inter-arrival times (timestamps
//!   matter when events also have deadlines);
//! * activity-ordered arrivals (socially active users first or last), the
//!   adversarial-ish orders that stress interaction-aware objectives.

use igepa_core::{Instance, UserId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An arrival sequence over the users of an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSequence {
    /// User indices in arrival order.
    pub order: Vec<usize>,
    /// Arrival timestamp of each entry of `order` (non-decreasing).
    pub times: Vec<f64>,
}

impl ArrivalSequence {
    /// Number of arrivals in the sequence.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The arrival order as a slice (what the online algorithms consume).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Timestamp of the last arrival (0.0 for empty sequences).
    pub fn makespan(&self) -> f64 {
        self.times.last().copied().unwrap_or(0.0)
    }

    /// Checks the internal invariants: one arrival per user (a permutation)
    /// and non-decreasing timestamps.
    pub fn is_valid_for(&self, num_users: usize) -> bool {
        if self.order.len() != num_users || self.times.len() != num_users {
            return false;
        }
        let mut seen = vec![false; num_users];
        for &u in &self.order {
            if u >= num_users || seen[u] {
                return false;
            }
            seen[u] = true;
        }
        self.times.windows(2).all(|w| w[0] <= w[1])
    }
}

/// A uniformly random arrival order with unit-spaced timestamps.
pub fn random_order<R: Rng + ?Sized>(num_users: usize, rng: &mut R) -> ArrivalSequence {
    let mut order: Vec<usize> = (0..num_users).collect();
    // Fisher–Yates shuffle.
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    ArrivalSequence {
        times: (0..num_users).map(|i| i as f64).collect(),
        order,
    }
}

/// Poisson arrivals: a random order with exponential(rate) inter-arrival
/// times. `rate` must be positive (it is clamped to a tiny positive value).
pub fn poisson_arrivals<R: Rng + ?Sized>(
    num_users: usize,
    rate: f64,
    rng: &mut R,
) -> ArrivalSequence {
    let rate = if rate > 0.0 { rate } else { f64::MIN_POSITIVE };
    let mut sequence = random_order(num_users, rng);
    let mut clock = 0.0;
    for t in sequence.times.iter_mut() {
        // Inverse-transform sampling of Exp(rate).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        clock += -u.ln() / rate;
        *t = clock;
    }
    sequence
}

/// Users ordered by their degree of potential interaction, most active
/// first (`descending = true`) or least active first. Ties break by id so
/// the order is deterministic.
pub fn activity_order(instance: &Instance, descending: bool) -> ArrivalSequence {
    let mut order: Vec<usize> = (0..instance.num_users()).collect();
    order.sort_by(|&a, &b| {
        let da = instance.interaction(UserId::new(a));
        let db = instance.interaction(UserId::new(b));
        let primary = if descending {
            db.partial_cmp(&da)
        } else {
            da.partial_cmp(&db)
        }
        .unwrap_or(std::cmp::Ordering::Equal);
        primary.then_with(|| a.cmp(&b))
    });
    ArrivalSequence {
        times: (0..instance.num_users()).map(|i| i as f64).collect(),
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_synthetic, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_order_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let sequence = random_order(50, &mut rng);
        assert!(sequence.is_valid_for(50));
        assert_eq!(sequence.len(), 50);
        assert!(!sequence.is_empty());
    }

    #[test]
    fn poisson_arrivals_have_increasing_times() {
        let mut rng = StdRng::seed_from_u64(2);
        let sequence = poisson_arrivals(100, 2.0, &mut rng);
        assert!(sequence.is_valid_for(100));
        assert!(sequence.times.windows(2).all(|w| w[0] < w[1]));
        assert!(sequence.makespan() > 0.0);
        // Mean inter-arrival ≈ 1/rate = 0.5; makespan ≈ 50 within loose bounds.
        assert!(sequence.makespan() > 20.0 && sequence.makespan() < 120.0);
    }

    #[test]
    fn zero_rate_is_clamped_instead_of_panicking() {
        let mut rng = StdRng::seed_from_u64(3);
        let sequence = poisson_arrivals(5, 0.0, &mut rng);
        assert!(sequence.is_valid_for(5));
    }

    #[test]
    fn activity_order_sorts_by_interaction_score() {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), 4);
        let descending = activity_order(&instance, true);
        assert!(descending.is_valid_for(instance.num_users()));
        for w in descending.order.windows(2) {
            assert!(
                instance.interaction(UserId::new(w[0])) >= instance.interaction(UserId::new(w[1]))
            );
        }
        let ascending = activity_order(&instance, false);
        for w in ascending.order.windows(2) {
            assert!(
                instance.interaction(UserId::new(w[0])) <= instance.interaction(UserId::new(w[1]))
            );
        }
    }

    #[test]
    fn validity_check_rejects_duplicates_and_bad_times() {
        let bad = ArrivalSequence {
            order: vec![0, 0, 1],
            times: vec![0.0, 1.0, 2.0],
        };
        assert!(!bad.is_valid_for(3));
        let bad_times = ArrivalSequence {
            order: vec![0, 1, 2],
            times: vec![0.0, 2.0, 1.0],
        };
        assert!(!bad_times.is_valid_for(3));
        let wrong_len = ArrivalSequence {
            order: vec![0, 1],
            times: vec![0.0, 1.0],
        };
        assert!(!wrong_len.is_valid_for(3));
        let empty = ArrivalSequence {
            order: vec![],
            times: vec![],
        };
        assert!(empty.is_valid_for(0));
        assert_eq!(empty.makespan(), 0.0);
    }
}
