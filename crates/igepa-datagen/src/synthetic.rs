//! Synthetic workloads following Table I of the paper.
//!
//! The paper evaluates on synthetic datasets with six controllable factors
//! (Table I defaults in parentheses): the number of events `|V|` (200), the
//! number of users `|U|` (2000), the maximum event capacity `max c_v` (50),
//! the maximum user capacity `max c_u` (4), the probability `pcf` that two
//! events conflict (0.3) and the probability `pdeg` that two users are
//! friends (0.5). Capacities and interest values are drawn uniformly;
//! "users tend to bid a group of similar and often conflicting events", so
//! bids are sampled *dependently* from sets of conflicting events.
//!
//! [`generate_synthetic`] reproduces that recipe:
//!
//! 1. event capacities `~ U{1, max c_v}`, user capacities `~ U{1, max c_u}`;
//! 2. every unordered event pair conflicts independently with probability
//!    `pcf`;
//! 3. the social network is Erdős–Rényi `G(|U|, pdeg)`; for very large user
//!    counts (where materialising ~`pdeg·|U|²/2` edges would dominate the
//!    experiment runtime) the per-user degree is sampled from the same
//!    Binomial(|U|−1, pdeg) marginal instead — the utility only ever
//!    consumes the normalised degree `D(G, u)`, so the workload statistics
//!    are unchanged (documented in DESIGN.md);
//! 4. each user's bid set is grown by repeatedly picking a random seed event
//!    and pulling in events that conflict with it, yielding the
//!    "similar and often conflicting" bid groups the paper describes;
//! 5. interest values for bid pairs are uniform in `[0, 1]`.

use igepa_core::{AttributeVector, EventId, Instance, PairSetConflict, TableInterest};
use igepa_graph::{erdos_renyi, SocialNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Above this user count the Erdős–Rényi network is not materialised and the
/// interaction degrees are sampled from their Binomial marginal instead.
pub const DENSE_NETWORK_USER_LIMIT: usize = 4000;

/// Configuration of the synthetic generator (the six factors of Table I plus
/// the bid-shape knobs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of events `|V|`.
    pub num_events: usize,
    /// Number of users `|U|`.
    pub num_users: usize,
    /// Maximum event capacity `max c_v`; capacities are uniform in `1..=max`.
    pub max_event_capacity: usize,
    /// Maximum user capacity `max c_u`; capacities are uniform in `1..=max`.
    pub max_user_capacity: usize,
    /// Probability `pcf` that two events conflict.
    pub p_conflict: f64,
    /// Probability `pdeg` that two users are friends.
    pub p_friend: f64,
    /// Balance parameter β of the utility (the paper evaluates β = 0.5).
    pub beta: f64,
    /// Target number of bids per user.
    pub bids_per_user: usize,
    /// How many events are pulled in around each conflicting "seed" event
    /// when growing a bid set.
    pub conflict_group_width: usize,
}

impl Default for SyntheticConfig {
    /// The Table I default setting.
    fn default() -> Self {
        SyntheticConfig {
            num_events: 200,
            num_users: 2000,
            max_event_capacity: 50,
            max_user_capacity: 4,
            p_conflict: 0.3,
            p_friend: 0.5,
            beta: 0.5,
            bids_per_user: 8,
            conflict_group_width: 4,
        }
    }
}

impl SyntheticConfig {
    /// The paper's Table I default setting.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A scaled-down setting for examples, unit tests and doc tests
    /// (20 events, 100 users).
    pub fn small() -> Self {
        SyntheticConfig {
            num_events: 20,
            num_users: 100,
            max_event_capacity: 10,
            max_user_capacity: 3,
            bids_per_user: 5,
            ..Self::default()
        }
    }

    /// A tiny setting whose exact optimum can still be computed by the
    /// branch-and-bound baseline (used by the approximation-ratio study).
    pub fn tiny() -> Self {
        SyntheticConfig {
            num_events: 8,
            num_users: 20,
            max_event_capacity: 4,
            max_user_capacity: 2,
            bids_per_user: 4,
            conflict_group_width: 3,
            ..Self::default()
        }
    }
}

/// Generates a synthetic IGEPA instance. The same `(config, seed)` pair
/// always produces the same instance.
pub fn generate_synthetic(config: &SyntheticConfig, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_synthetic_with_rng(config, &mut rng)
}

/// Generates a synthetic instance drawing randomness from the given RNG.
pub fn generate_synthetic_with_rng<R: Rng + ?Sized>(
    config: &SyntheticConfig,
    rng: &mut R,
) -> Instance {
    let mut builder = Instance::builder();
    builder.beta(config.beta);

    // Events with uniform capacities. Attribute vectors stay empty: the
    // synthetic model defines conflicts and interests explicitly.
    let event_ids: Vec<EventId> = (0..config.num_events)
        .map(|_| {
            let capacity = rng.gen_range(1..=config.max_event_capacity.max(1));
            builder.add_event(capacity, AttributeVector::empty())
        })
        .collect();

    // Pairwise conflicts with probability pcf, plus the per-event adjacency
    // used to grow conflict-heavy bid sets.
    let mut sigma = PairSetConflict::new();
    let mut conflict_neighbours: Vec<Vec<EventId>> = vec![Vec::new(); config.num_events];
    if config.p_conflict > 0.0 && config.num_events > 1 {
        for i in 0..config.num_events {
            for j in (i + 1)..config.num_events {
                if config.p_conflict >= 1.0 || rng.gen_bool(config.p_conflict) {
                    sigma.add(event_ids[i], event_ids[j]);
                    conflict_neighbours[i].push(event_ids[j]);
                    conflict_neighbours[j].push(event_ids[i]);
                }
            }
        }
    }

    // Users: uniform capacities, dependent bid sets grown around conflicting
    // seeds.
    let mut user_bids: Vec<Vec<EventId>> = Vec::with_capacity(config.num_users);
    for _ in 0..config.num_users {
        let bids = sample_dependent_bids(config, &conflict_neighbours, rng);
        user_bids.push(bids);
    }
    for bids in &user_bids {
        let capacity = rng.gen_range(1..=config.max_user_capacity.max(1));
        builder.add_user(capacity, AttributeVector::empty(), bids.clone());
    }

    // Social network → degree of potential interaction.
    let interaction = sample_interaction_scores(config, rng);
    builder.interaction_scores(interaction);

    // Uniform interests on bid pairs.
    let mut interest = TableInterest::zeros(config.num_events, config.num_users);
    for (user_index, bids) in user_bids.iter().enumerate() {
        for &event in bids {
            interest.set(
                event,
                igepa_core::UserId::new(user_index),
                rng.gen_range(0.0..1.0),
            );
        }
    }

    builder
        .build(&sigma, &interest)
        .expect("synthetic generator produces valid instances")
}

/// Builds the social network (or its degree marginal for very large `|U|`)
/// and returns the per-user degree of potential interaction.
fn sample_interaction_scores<R: Rng + ?Sized>(config: &SyntheticConfig, rng: &mut R) -> Vec<f64> {
    if config.num_users <= 1 {
        return vec![0.0; config.num_users];
    }
    if config.num_users <= DENSE_NETWORK_USER_LIMIT {
        let network: SocialNetwork = erdos_renyi(config.num_users, config.p_friend, rng);
        network.degrees_of_potential_interaction()
    } else {
        let n = config.num_users - 1;
        (0..config.num_users)
            .map(|_| sample_binomial(n, config.p_friend, rng) as f64 / n as f64)
            .collect()
    }
}

/// Grows one user's bid set by repeatedly picking a random seed event and
/// pulling in up to `conflict_group_width − 1` events conflicting with it.
fn sample_dependent_bids<R: Rng + ?Sized>(
    config: &SyntheticConfig,
    conflict_neighbours: &[Vec<EventId>],
    rng: &mut R,
) -> Vec<EventId> {
    let target = config.bids_per_user.min(config.num_events).max(1);
    let mut bids: Vec<EventId> = Vec::with_capacity(target);
    let mut guard = 0;
    while bids.len() < target && guard < 20 * target {
        guard += 1;
        let seed_index = rng.gen_range(0..config.num_events);
        let seed = EventId::new(seed_index);
        if !bids.contains(&seed) {
            bids.push(seed);
        }
        let neighbours = &conflict_neighbours[seed_index];
        if neighbours.is_empty() {
            continue;
        }
        let width = config.conflict_group_width.saturating_sub(1);
        for _ in 0..width {
            if bids.len() >= target {
                break;
            }
            let pick = neighbours[rng.gen_range(0..neighbours.len())];
            if !bids.contains(&pick) {
                bids.push(pick);
            }
        }
    }
    bids.sort_unstable();
    bids.dedup();
    bids
}

/// Samples from Binomial(n, p). Exact Bernoulli summation for small `n`,
/// normal approximation (clamped) for large `n`.
fn sample_binomial<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> usize {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    let var = mean * (1.0 - p);
    if mean > 30.0 && var > 30.0 {
        // Box–Muller normal approximation.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let value = (mean + z * var.sqrt()).round();
        value.clamp(0.0, n as f64) as usize
    } else {
        (0..n).filter(|_| rng.gen_bool(p)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::InstanceStats;

    #[test]
    fn default_config_matches_table_one() {
        let c = SyntheticConfig::default();
        assert_eq!(c.num_events, 200);
        assert_eq!(c.num_users, 2000);
        assert_eq!(c.max_event_capacity, 50);
        assert_eq!(c.max_user_capacity, 4);
        assert_eq!(c.p_conflict, 0.3);
        assert_eq!(c.p_friend, 0.5);
        assert_eq!(c.beta, 0.5);
    }

    #[test]
    fn small_instance_has_requested_dimensions() {
        let config = SyntheticConfig::small();
        let inst = generate_synthetic(&config, 7);
        assert_eq!(inst.num_events(), 20);
        assert_eq!(inst.num_users(), 100);
        let stats = InstanceStats::of(&inst);
        assert!(stats.max_event_capacity <= config.max_event_capacity);
        assert!(stats.max_user_capacity <= config.max_user_capacity);
        assert!(stats.mean_bids_per_user > 0.0);
        assert!(stats.mean_bids_per_user <= config.bids_per_user as f64 + 1e-9);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = SyntheticConfig::small();
        let a = generate_synthetic(&config, 11);
        let b = generate_synthetic(&config, 11);
        assert_eq!(a.num_bids(), b.num_bids());
        assert_eq!(
            a.conflicts().num_conflicting_pairs(),
            b.conflicts().num_conflicting_pairs()
        );
        let ua = igepa_core::UserId::new(3);
        assert_eq!(a.user(ua).bids, b.user(ua).bids);
        assert_eq!(a.interaction(ua), b.interaction(ua));
        let c = generate_synthetic(&config, 12);
        // A different seed should (overwhelmingly) give a different workload.
        assert!(
            a.num_bids() != c.num_bids()
                || a.conflicts().num_conflicting_pairs() != c.conflicts().num_conflicting_pairs()
                || a.user(ua).bids != c.user(ua).bids
        );
    }

    #[test]
    fn conflict_density_tracks_pcf() {
        let mut config = SyntheticConfig::small();
        config.num_events = 60;
        config.p_conflict = 0.4;
        let inst = generate_synthetic(&config, 3);
        let density = inst.conflicts().density();
        assert!((density - 0.4).abs() < 0.1, "density {density}");
        config.p_conflict = 0.0;
        let inst0 = generate_synthetic(&config, 3);
        assert_eq!(inst0.conflicts().density(), 0.0);
        config.p_conflict = 1.0;
        let inst1 = generate_synthetic(&config, 3);
        assert!((inst1.conflicts().density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interaction_scores_track_pdeg() {
        let mut config = SyntheticConfig::small();
        config.num_users = 200;
        config.p_friend = 0.3;
        let inst = generate_synthetic(&config, 5);
        let mean: f64 = (0..inst.num_users())
            .map(|i| inst.interaction(igepa_core::UserId::new(i)))
            .sum::<f64>()
            / inst.num_users() as f64;
        assert!((mean - 0.3).abs() < 0.05, "mean interaction {mean}");
    }

    #[test]
    fn large_user_counts_use_binomial_marginal() {
        let config = SyntheticConfig {
            num_users: DENSE_NETWORK_USER_LIMIT + 500,
            num_events: 10,
            bids_per_user: 3,
            ..SyntheticConfig::small()
        };
        let inst = generate_synthetic(&config, 9);
        assert_eq!(inst.num_users(), DENSE_NETWORK_USER_LIMIT + 500);
        let mean: f64 = (0..inst.num_users())
            .map(|i| inst.interaction(igepa_core::UserId::new(i)))
            .sum::<f64>()
            / inst.num_users() as f64;
        assert!(
            (mean - config.p_friend).abs() < 0.05,
            "mean interaction {mean}"
        );
    }

    #[test]
    fn bids_are_valid_events_and_bounded() {
        let config = SyntheticConfig::small();
        let inst = generate_synthetic(&config, 21);
        for user in inst.users() {
            assert!(!user.bids.is_empty());
            assert!(user.bids.len() <= config.bids_per_user);
            for &v in &user.bids {
                assert!(v.index() < inst.num_events());
            }
        }
    }

    #[test]
    fn bid_sets_contain_conflicting_events_when_pcf_high() {
        let mut config = SyntheticConfig::small();
        config.p_conflict = 0.8;
        config.bids_per_user = 6;
        let inst = generate_synthetic(&config, 13);
        // With pcf = 0.8 and dependent sampling most users should hold at
        // least one conflicting pair in their bid set.
        let mut users_with_conflicting_bids = 0;
        for user in inst.users() {
            let mut found = false;
            for (i, &a) in user.bids.iter().enumerate() {
                for &b in &user.bids[i + 1..] {
                    if inst.conflicts().conflicts(a, b) {
                        found = true;
                    }
                }
            }
            if found {
                users_with_conflicting_bids += 1;
            }
        }
        assert!(
            users_with_conflicting_bids * 2 > inst.num_users(),
            "only {users_with_conflicting_bids} of {} users have conflicting bids",
            inst.num_users()
        );
    }

    #[test]
    fn binomial_sampler_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(17);
        // Small-n exact path.
        let small: f64 = (0..2000)
            .map(|_| sample_binomial(10, 0.3, &mut rng) as f64)
            .sum::<f64>()
            / 2000.0;
        assert!((small - 3.0).abs() < 0.2, "{small}");
        // Large-n normal approximation path.
        let large: f64 = (0..500)
            .map(|_| sample_binomial(5000, 0.5, &mut rng) as f64)
            .sum::<f64>()
            / 500.0;
        assert!((large - 2500.0).abs() < 25.0, "{large}");
        assert_eq!(sample_binomial(100, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(100, 1.0, &mut rng), 100);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
    }

    #[test]
    fn interest_values_are_in_unit_interval() {
        let inst = generate_synthetic(&SyntheticConfig::small(), 31);
        for user in inst.users() {
            for &v in &user.bids {
                let si = inst.interest(v, user.id);
                assert!((0.0..=1.0).contains(&si));
            }
        }
    }
}
