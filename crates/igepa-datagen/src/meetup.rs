//! Meetup-SF simulator: a synthetic stand-in for the paper's real dataset.
//!
//! The paper's Table II uses a crawl of Meetup events in San Francisco
//! (190 events, 2811 users) that is not publicly available. This module
//! reproduces every preprocessing rule the paper documents on top of a
//! synthetic trace with matching structure, so that the Table II comparison
//! can be regenerated (algorithm ordering and relative gaps, not the
//! absolute utility of the proprietary crawl):
//!
//! * every event has a start time and a duration; two events conflict iff
//!   they overlap in time;
//! * only some events specify a capacity; the rest default to `|U|`;
//! * users join groups (heavy-tailed sizes); two users are linked in the
//!   social network iff they share at least one group;
//! * each user *attended* a handful of events (preferring events matching
//!   their group's topic); the user capacity is set to twice that number;
//! * bids are the attended events plus the `c_u / 2` most interesting other
//!   events;
//! * interest is computed from the attribute (category) vectors.

use igepa_core::{
    AttributeVector, CosineInterest, EventId, Instance, InterestFn, TimeOverlapConflict, UserId,
};
use igepa_graph::{from_group_memberships, SocialNetwork};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the Meetup-SF simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeetupConfig {
    /// Number of events (the paper's crawl has 190).
    pub num_events: usize,
    /// Number of users (the paper's crawl has 2811).
    pub num_users: usize,
    /// Number of interest groups users can join.
    pub num_groups: usize,
    /// Number of topic categories used for attribute vectors.
    pub num_categories: usize,
    /// Length of the simulated calendar, in minutes.
    pub horizon_minutes: i64,
    /// Shortest event duration in minutes.
    pub min_duration: i64,
    /// Longest event duration in minutes.
    pub max_duration: i64,
    /// Fraction of events that publish an explicit capacity; the rest
    /// default to `|U|` as in the paper.
    pub capacity_known_fraction: f64,
    /// Largest published event capacity.
    pub max_known_capacity: usize,
    /// Largest number of events a user attended in the trace.
    pub max_attended: usize,
    /// Balance parameter β (the paper evaluates β = 0.5).
    pub beta: f64,
}

impl Default for MeetupConfig {
    /// Dimensions matching the paper's San Francisco crawl.
    fn default() -> Self {
        MeetupConfig {
            num_events: 190,
            num_users: 2811,
            num_groups: 60,
            num_categories: 12,
            horizon_minutes: 60 * 24 * 30, // one month of events
            min_duration: 60,
            max_duration: 240,
            capacity_known_fraction: 0.5,
            max_known_capacity: 120,
            max_attended: 5,
            beta: 0.5,
        }
    }
}

impl MeetupConfig {
    /// The paper-scale configuration (190 events, 2811 users).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A scaled-down configuration for tests and examples.
    pub fn small() -> Self {
        MeetupConfig {
            num_events: 30,
            num_users: 200,
            num_groups: 10,
            num_categories: 6,
            max_attended: 3,
            ..Self::default()
        }
    }
}

/// Everything the simulator produces: the IGEPA instance plus the raw trace
/// pieces useful for reporting (social network and group memberships).
#[derive(Debug, Clone)]
pub struct MeetupDataset {
    /// The IGEPA instance derived from the simulated trace.
    pub instance: Instance,
    /// The group-overlap social network.
    pub network: SocialNetwork,
    /// `memberships[g]` lists the users in group `g`.
    pub memberships: Vec<Vec<usize>>,
    /// `attended[u]` lists the events user `u` attended in the trace.
    pub attended: Vec<Vec<EventId>>,
}

/// Generates a Meetup-style dataset (instance only).
pub fn generate_meetup(config: &MeetupConfig, seed: u64) -> Instance {
    generate_meetup_dataset(config, seed).instance
}

/// Generates a Meetup-style dataset including the raw trace pieces.
pub fn generate_meetup_dataset(config: &MeetupConfig, seed: u64) -> MeetupDataset {
    let mut rng = StdRng::seed_from_u64(seed);

    // --- Events: time window, topic mix, (sometimes) a published capacity.
    let mut event_attrs: Vec<AttributeVector> = Vec::with_capacity(config.num_events);
    let mut event_capacity: Vec<usize> = Vec::with_capacity(config.num_events);
    for _ in 0..config.num_events {
        let start = rng.gen_range(0..config.horizon_minutes.max(1));
        let duration =
            rng.gen_range(config.min_duration..=config.max_duration.max(config.min_duration));
        let topic = rng.gen_range(0..config.num_categories.max(1));
        let mut categories = vec![0.0; config.num_categories.max(1)];
        categories[topic] = 1.0;
        // A secondary topic with smaller weight makes interests smoother.
        let secondary = rng.gen_range(0..config.num_categories.max(1));
        categories[secondary] += 0.4;
        event_attrs.push(AttributeVector::from_time(start, duration).with_categories(categories));
        let capacity = if rng.gen_bool(config.capacity_known_fraction.clamp(0.0, 1.0)) {
            rng.gen_range(10..=config.max_known_capacity.max(10))
        } else {
            // "For those without capacity information, we set it to the total
            // number of users."
            config.num_users
        };
        event_capacity.push(capacity);
    }

    // --- Groups: heavy-tailed memberships; each group has a home topic.
    let mut memberships: Vec<Vec<usize>> = vec![Vec::new(); config.num_groups.max(1)];
    let group_topic: Vec<usize> = (0..config.num_groups.max(1))
        .map(|_| rng.gen_range(0..config.num_categories.max(1)))
        .collect();
    let mut user_groups: Vec<Vec<usize>> = vec![Vec::new(); config.num_users];
    for user in 0..config.num_users {
        // 1-4 groups per user, biased towards low-index (popular) groups via
        // a squared-uniform draw, yielding heavy-tailed group sizes.
        let joins = rng.gen_range(1..=4usize);
        for _ in 0..joins {
            let r: f64 = rng.gen_range(0.0..1.0);
            let group = ((r * r) * config.num_groups.max(1) as f64) as usize;
            let group = group.min(config.num_groups.max(1) - 1);
            if !user_groups[user].contains(&group) {
                user_groups[user].push(group);
                memberships[group].push(user);
            }
        }
    }

    // --- User topic profiles from their groups (plus personal noise).
    let mut user_attrs: Vec<AttributeVector> = Vec::with_capacity(config.num_users);
    for groups in &user_groups {
        let mut categories = vec![0.0; config.num_categories.max(1)];
        for &g in groups {
            categories[group_topic[g]] += 1.0;
        }
        let personal = rng.gen_range(0..config.num_categories.max(1));
        categories[personal] += 0.5;
        user_attrs.push(AttributeVector::from_categories(categories));
    }

    // --- Attendance: users attend events whose topic matches their profile.
    let interest_fn = CosineInterest;
    let mut attended: Vec<Vec<EventId>> = vec![Vec::new(); config.num_users];
    // Pre-rank events per category for cheap preference sampling.
    for user in 0..config.num_users {
        let attends = rng.gen_range(1..=config.max_attended.max(1));
        let mut candidates: Vec<usize> = (0..config.num_events).collect();
        candidates.shuffle(&mut rng);
        // Scan a random order and keep events with a topical match, falling
        // back to arbitrary events so everyone attends something.
        let mut chosen = Vec::new();
        for &e in &candidates {
            if chosen.len() >= attends {
                break;
            }
            let overlap = event_attrs[e]
                .categories
                .iter()
                .zip(&user_attrs[user].categories)
                .map(|(a, b)| a * b)
                .sum::<f64>();
            if overlap > 0.0 || rng.gen_bool(0.15) {
                chosen.push(e);
            }
        }
        for &e in candidates.iter().take(attends) {
            if chosen.len() >= attends {
                break;
            }
            if !chosen.contains(&e) {
                chosen.push(e);
            }
        }
        attended[user] = chosen.into_iter().map(EventId::new).collect();
    }

    // --- Assemble the instance.
    let mut builder = Instance::builder();
    builder.beta(config.beta);
    for (attrs, capacity) in event_attrs.iter().zip(&event_capacity) {
        builder.add_event(*capacity, attrs.clone());
    }

    // Temporary Event values for scoring "most interesting" extra bids.
    let scoring_events: Vec<igepa_core::Event> = event_attrs
        .iter()
        .enumerate()
        .map(|(i, attrs)| igepa_core::Event::new(EventId::new(i), event_capacity[i], attrs.clone()))
        .collect();

    for user in 0..config.num_users {
        // "We set each user's capacity as twice the number of events he/she
        // attended."
        let capacity = 2 * attended[user].len().max(1);
        // Bids: attended events + the c_u / 2 most interesting other events.
        let extra = capacity / 2;
        let scoring_user = igepa_core::User::new(
            UserId::new(user),
            capacity,
            user_attrs[user].clone(),
            vec![],
        );
        let mut others: Vec<(f64, usize)> = (0..config.num_events)
            .filter(|e| !attended[user].contains(&EventId::new(*e)))
            .map(|e| (interest_fn.interest(&scoring_events[e], &scoring_user), e))
            .collect();
        others.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut bids: Vec<EventId> = attended[user].clone();
        bids.extend(others.into_iter().take(extra).map(|(_, e)| EventId::new(e)));
        builder.add_user(capacity, user_attrs[user].clone(), bids);
    }

    // --- Social network from shared groups.
    let network = from_group_memberships(config.num_users, &memberships);
    builder.interaction_scores(network.degrees_of_potential_interaction());

    let instance = builder
        .build(&TimeOverlapConflict, &CosineInterest)
        .expect("meetup simulator produces valid instances");

    MeetupDataset {
        instance,
        network,
        memberships,
        attended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::InstanceStats;

    #[test]
    fn paper_scale_dimensions() {
        let c = MeetupConfig::default();
        assert_eq!(c.num_events, 190);
        assert_eq!(c.num_users, 2811);
    }

    #[test]
    fn small_dataset_structure() {
        let config = MeetupConfig::small();
        let ds = generate_meetup_dataset(&config, 1);
        assert_eq!(ds.instance.num_events(), 30);
        assert_eq!(ds.instance.num_users(), 200);
        assert_eq!(ds.network.num_users(), 200);
        assert_eq!(ds.attended.len(), 200);
        let stats = InstanceStats::of(&ds.instance);
        assert!(stats.mean_bids_per_user >= 1.0);
    }

    #[test]
    fn user_capacity_is_twice_attendance() {
        let config = MeetupConfig::small();
        let ds = generate_meetup_dataset(&config, 5);
        for (u, attended) in ds.attended.iter().enumerate() {
            let cap = ds.instance.user(UserId::new(u)).capacity;
            assert_eq!(cap, 2 * attended.len().max(1));
        }
    }

    #[test]
    fn bids_contain_attended_events() {
        let config = MeetupConfig::small();
        let ds = generate_meetup_dataset(&config, 9);
        for (u, attended) in ds.attended.iter().enumerate() {
            let user = ds.instance.user(UserId::new(u));
            for &e in attended {
                assert!(user.has_bid(e), "user {u} lost attended event {e}");
            }
            // Bids = attended + at most c_u / 2 extras.
            assert!(user.bids.len() <= attended.len() + user.capacity / 2);
        }
    }

    #[test]
    fn conflicts_are_time_overlaps() {
        let config = MeetupConfig::small();
        let inst = generate_meetup(&config, 3);
        let events = inst.events();
        for i in 0..events.len() {
            for j in (i + 1)..events.len() {
                let expected = events[i]
                    .attrs
                    .time
                    .unwrap()
                    .overlaps(&events[j].attrs.time.unwrap());
                assert_eq!(
                    inst.conflicts().conflicts(events[i].id, events[j].id),
                    expected
                );
            }
        }
    }

    #[test]
    fn unknown_capacities_default_to_num_users() {
        let mut config = MeetupConfig::small();
        config.capacity_known_fraction = 0.0;
        let inst = generate_meetup(&config, 2);
        for e in inst.events() {
            assert_eq!(e.capacity, config.num_users);
        }
        config.capacity_known_fraction = 1.0;
        let inst2 = generate_meetup(&config, 2);
        for e in inst2.events() {
            assert!(e.capacity <= config.max_known_capacity);
        }
    }

    #[test]
    fn social_network_mirrors_group_overlap() {
        let config = MeetupConfig::small();
        let ds = generate_meetup_dataset(&config, 4);
        // Two users in the same group must be connected.
        for members in &ds.memberships {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    assert!(ds.network.has_edge(a, b));
                }
            }
        }
        // Interaction scores on the instance come from that network.
        let d = ds.network.degrees_of_potential_interaction();
        for u in 0..config.num_users {
            assert!((ds.instance.interaction(UserId::new(u)) - d[u]).abs() < 1e-12);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = MeetupConfig::small();
        let a = generate_meetup(&config, 8);
        let b = generate_meetup(&config, 8);
        assert_eq!(a.num_bids(), b.num_bids());
        assert_eq!(
            a.conflicts().num_conflicting_pairs(),
            b.conflicts().num_conflicting_pairs()
        );
    }

    #[test]
    fn interest_values_are_valid() {
        let config = MeetupConfig::small();
        let inst = generate_meetup(&config, 6);
        for user in inst.users() {
            for &v in &user.bids {
                let si = inst.interest(v, user.id);
                assert!((0.0..=1.0).contains(&si), "interest {si}");
            }
        }
    }
}
