//! # igepa-datagen — workload generators for the IGEPA reproduction
//!
//! Two families of workloads drive the paper's evaluation and are rebuilt
//! here:
//!
//! * [`generate_synthetic`] / [`SyntheticConfig`] — the Table I synthetic
//!   model: uniform capacities and interests, pairwise event conflicts with
//!   probability `pcf`, an Erdős–Rényi friendship graph with probability
//!   `pdeg`, and bid sets grown dependently around conflicting events;
//! * [`generate_meetup`] / [`MeetupConfig`] — a simulator standing in for
//!   the proprietary Meetup San Francisco crawl behind Table II, following
//!   every preprocessing rule the paper documents (time-overlap conflicts,
//!   group-overlap social edges, capacity defaults, attendance-derived user
//!   capacities and bids, attribute-based interest).
//!
//! All generators are deterministic given `(config, seed)`.
//!
//! ```
//! use igepa_datagen::{generate_synthetic, SyntheticConfig};
//!
//! let instance = generate_synthetic(&SyntheticConfig::small(), 42);
//! assert_eq!(instance.num_events(), 20);
//! assert_eq!(instance.num_users(), 100);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod clustered;
pub mod meetup;
pub mod synthetic;
pub mod trace;

pub use arrival::{activity_order, poisson_arrivals, random_order, ArrivalSequence};
pub use clustered::{
    generate_clustered, generate_clustered_dataset, ClusteredConfig, ClusteredDataset,
};
pub use meetup::{generate_meetup, generate_meetup_dataset, MeetupConfig, MeetupDataset};
pub use synthetic::{
    generate_synthetic, generate_synthetic_with_rng, SyntheticConfig, DENSE_NETWORK_USER_LIMIT,
};
pub use trace::{
    generate_community_trace, generate_trace, generate_trace_with_rng, CommunityTraceConfig,
    DeltaTrace, TimedDelta, TraceConfig,
};
