//! Community-structured workload generator (extension beyond Table I).
//!
//! The paper's synthetic model draws interests uniformly and wires the
//! friendship graph as `G(n, p)`, which has no community structure. Real
//! EBSNs are organised around groups: users join a handful of groups,
//! befriend people in the same groups and bid mostly for their groups'
//! events. This generator plants that structure explicitly so the ablation
//! experiments can check whether the algorithm ordering of Fig. 1 survives
//! on community-structured workloads:
//!
//! * users belong to one of `num_communities` communities;
//! * the friendship graph is a stochastic block model (`p_intra` within a
//!   community, `p_inter` across);
//! * every event has a home community and a time slot; events in the same
//!   slot conflict (a structured, transitive conflict pattern instead of the
//!   i.i.d. `pcf` coin flips of Table I);
//! * event popularity follows a Zipf-like law, and users bid mostly for
//!   popular events of their own community;
//! * interest is `base + boost` when the event belongs to the user's
//!   community, `base` otherwise.

use igepa_core::{AttributeVector, Instance, PairSetConflict, TableInterest, UserId};
use igepa_graph::SocialNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the clustered (community-structured) generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteredConfig {
    /// Number of events `|V|`.
    pub num_events: usize,
    /// Number of users `|U|`.
    pub num_users: usize,
    /// Number of planted communities.
    pub num_communities: usize,
    /// Number of conflicting time slots events are spread over.
    pub num_time_slots: usize,
    /// Maximum event capacity; capacities are uniform in `1..=max`.
    pub max_event_capacity: usize,
    /// Maximum user capacity; capacities are uniform in `1..=max`.
    pub max_user_capacity: usize,
    /// Friendship probability within a community.
    pub p_intra: f64,
    /// Friendship probability across communities.
    pub p_inter: f64,
    /// Target number of bids per user.
    pub bids_per_user: usize,
    /// Probability that a single bid targets the user's own community.
    pub own_community_bias: f64,
    /// Zipf exponent of event popularity within a community (0 = uniform).
    pub popularity_exponent: f64,
    /// Baseline interest drawn uniformly from `[0, base_interest]`.
    pub base_interest: f64,
    /// Added interest when the event is from the user's own community.
    pub community_boost: f64,
    /// Balance parameter β of the utility.
    pub beta: f64,
}

impl Default for ClusteredConfig {
    fn default() -> Self {
        ClusteredConfig {
            num_events: 200,
            num_users: 2000,
            num_communities: 10,
            num_time_slots: 20,
            max_event_capacity: 50,
            max_user_capacity: 4,
            p_intra: 0.25,
            p_inter: 0.01,
            bids_per_user: 8,
            own_community_bias: 0.8,
            popularity_exponent: 1.0,
            base_interest: 0.5,
            community_boost: 0.5,
            beta: 0.5,
        }
    }
}

impl ClusteredConfig {
    /// A scaled-down configuration for tests and examples.
    pub fn small() -> Self {
        ClusteredConfig {
            num_events: 20,
            num_users: 120,
            num_communities: 4,
            num_time_slots: 5,
            max_event_capacity: 10,
            max_user_capacity: 3,
            bids_per_user: 5,
            ..Self::default()
        }
    }

    /// A tiny configuration small enough for exact baselines.
    pub fn tiny() -> Self {
        ClusteredConfig {
            num_events: 8,
            num_users: 24,
            num_communities: 3,
            num_time_slots: 3,
            max_event_capacity: 4,
            max_user_capacity: 2,
            bids_per_user: 4,
            ..Self::default()
        }
    }
}

/// A clustered instance together with the ground-truth structure that
/// produced it (handy for community-recovery tests and reporting).
#[derive(Debug, Clone)]
pub struct ClusteredDataset {
    /// The IGEPA instance.
    pub instance: Instance,
    /// Planted community of every user.
    pub user_communities: Vec<usize>,
    /// Home community of every event.
    pub event_communities: Vec<usize>,
    /// Time slot of every event (events sharing a slot conflict).
    pub event_slots: Vec<usize>,
    /// The friendship graph behind the interaction scores.
    pub network: SocialNetwork,
}

/// Generates a clustered instance. Deterministic given `(config, seed)`.
pub fn generate_clustered(config: &ClusteredConfig, seed: u64) -> Instance {
    generate_clustered_dataset(config, seed).instance
}

/// Generates a clustered instance along with its planted ground truth.
pub fn generate_clustered_dataset(config: &ClusteredConfig, seed: u64) -> ClusteredDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_communities = config.num_communities.max(1);
    let num_slots = config.num_time_slots.max(1);

    // --- Communities ---------------------------------------------------------
    let user_communities: Vec<usize> = (0..config.num_users)
        .map(|_| rng.gen_range(0..num_communities))
        .collect();
    let event_communities: Vec<usize> = (0..config.num_events)
        .map(|_| rng.gen_range(0..num_communities))
        .collect();
    let event_slots: Vec<usize> = (0..config.num_events)
        .map(|_| rng.gen_range(0..num_slots))
        .collect();

    // --- Friendship graph (stochastic block model) ----------------------------
    let mut network = SocialNetwork::new(config.num_users);
    for a in 0..config.num_users {
        for b in (a + 1)..config.num_users {
            let p = if user_communities[a] == user_communities[b] {
                config.p_intra
            } else {
                config.p_inter
            };
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                network.add_edge(a, b);
            }
        }
    }
    let interaction = network.degrees_of_potential_interaction();

    // --- Events ---------------------------------------------------------------
    let mut builder = Instance::builder();
    builder.beta(config.beta);
    let mut event_ids = Vec::with_capacity(config.num_events);
    for index in 0..config.num_events {
        let capacity = rng.gen_range(1..=config.max_event_capacity.max(1));
        // The time slot doubles as the event's time window so the instance is
        // also consumable by the generic TimeOverlapConflict.
        let attrs = AttributeVector::empty().with_time(event_slots[index] as i64 * 100, 90);
        event_ids.push(builder.add_event(capacity, attrs));
    }

    // --- Popularity-weighted, community-biased bids ---------------------------
    // Events of each community sorted by a fixed "popularity rank"; rank r is
    // drawn with probability ∝ 1 / (r + 1)^exponent.
    let mut events_of_community: Vec<Vec<usize>> = vec![Vec::new(); num_communities];
    for (event, &community) in event_communities.iter().enumerate() {
        events_of_community[community].push(event);
    }
    let all_events: Vec<usize> = (0..config.num_events).collect();

    let pick_weighted = |pool: &[usize], rng: &mut StdRng| -> Option<usize> {
        if pool.is_empty() {
            return None;
        }
        let weights: Vec<f64> = (0..pool.len())
            .map(|rank| 1.0 / ((rank + 1) as f64).powf(config.popularity_exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut threshold = rng.gen_range(0.0..total);
        for (position, &weight) in weights.iter().enumerate() {
            if threshold < weight {
                return Some(pool[position]);
            }
            threshold -= weight;
        }
        Some(pool[pool.len() - 1])
    };

    let mut user_bids: Vec<Vec<usize>> = Vec::with_capacity(config.num_users);
    for &community in &user_communities {
        let mut bids: Vec<usize> = Vec::new();
        let mut attempts = 0;
        while bids.len() < config.bids_per_user && attempts < config.bids_per_user * 10 {
            attempts += 1;
            let own = rng.gen_bool(config.own_community_bias.clamp(0.0, 1.0));
            let pool: &[usize] = if own && !events_of_community[community].is_empty() {
                &events_of_community[community]
            } else {
                &all_events
            };
            if let Some(event) = pick_weighted(pool, &mut rng) {
                if !bids.contains(&event) {
                    bids.push(event);
                }
            }
        }
        bids.sort_unstable();
        user_bids.push(bids);
    }

    // --- Users ----------------------------------------------------------------
    for bids in &user_bids {
        let capacity = rng.gen_range(1..=config.max_user_capacity.max(1));
        let bid_ids = bids.iter().map(|&e| event_ids[e]).collect();
        builder.add_user(capacity, AttributeVector::empty(), bid_ids);
    }
    builder.interaction_scores(interaction);

    // --- Conflicts: events sharing a time slot --------------------------------
    let mut sigma = PairSetConflict::new();
    for a in 0..config.num_events {
        for b in (a + 1)..config.num_events {
            if event_slots[a] == event_slots[b] {
                sigma.add(event_ids[a], event_ids[b]);
            }
        }
    }

    // --- Interests: base + community boost -------------------------------------
    let mut interest = TableInterest::zeros(config.num_events, config.num_users);
    for (user_index, bids) in user_bids.iter().enumerate() {
        for &event in bids {
            let base = rng.gen_range(0.0..config.base_interest.max(f64::MIN_POSITIVE));
            let boost = if event_communities[event] == user_communities[user_index] {
                config.community_boost
            } else {
                0.0
            };
            interest.set(
                event_ids[event],
                UserId::new(user_index),
                (base + boost).min(1.0),
            );
        }
    }

    let instance = builder
        .build(&sigma, &interest)
        .expect("clustered generator produces valid instances");
    ClusteredDataset {
        instance,
        user_communities,
        event_communities,
        event_slots,
        network,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::EventId;
    use igepa_graph::{label_propagation, modularity, Partition};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dimensions_match_the_configuration() {
        let config = ClusteredConfig::small();
        let instance = generate_clustered(&config, 1);
        assert_eq!(instance.num_events(), config.num_events);
        assert_eq!(instance.num_users(), config.num_users);
        assert!((instance.beta() - config.beta).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = ClusteredConfig::tiny();
        let a = generate_clustered(&config, 9);
        let b = generate_clustered(&config, 9);
        assert_eq!(
            igepa_core::instance_to_json(&a),
            igepa_core::instance_to_json(&b)
        );
        let c = generate_clustered(&config, 10);
        assert_ne!(
            igepa_core::instance_to_json(&a),
            igepa_core::instance_to_json(&c)
        );
    }

    #[test]
    fn conflicts_are_exactly_the_shared_time_slots() {
        let config = ClusteredConfig::small();
        let dataset = generate_clustered_dataset(&config, 3);
        let instance = &dataset.instance;
        for a in 0..config.num_events {
            for b in (a + 1)..config.num_events {
                let expected = dataset.event_slots[a] == dataset.event_slots[b];
                assert_eq!(
                    instance
                        .conflicts()
                        .conflicts(EventId::new(a), EventId::new(b)),
                    expected,
                    "events {a},{b}"
                );
            }
        }
    }

    #[test]
    fn own_community_events_are_more_interesting_on_average() {
        let config = ClusteredConfig {
            community_boost: 0.5,
            ..ClusteredConfig::small()
        };
        let dataset = generate_clustered_dataset(&config, 5);
        let instance = &dataset.instance;
        let mut own_sum = 0.0;
        let mut own_count = 0usize;
        let mut other_sum = 0.0;
        let mut other_count = 0usize;
        for user in instance.users() {
            for &v in &user.bids {
                let si = instance.interest(v, user.id);
                if dataset.event_communities[v.index()] == dataset.user_communities[user.id.index()]
                {
                    own_sum += si;
                    own_count += 1;
                } else {
                    other_sum += si;
                    other_count += 1;
                }
            }
        }
        assert!(own_count > 0 && other_count > 0);
        assert!(own_sum / own_count as f64 > other_sum / other_count as f64 + 0.2);
    }

    #[test]
    fn friendship_graph_has_planted_community_structure() {
        let config = ClusteredConfig {
            num_users: 150,
            p_intra: 0.3,
            p_inter: 0.005,
            ..ClusteredConfig::small()
        };
        let dataset = generate_clustered_dataset(&config, 11);
        let planted = Partition::from_labels(dataset.user_communities.clone());
        let q_planted = modularity(&dataset.network, &planted);
        assert!(q_planted > 0.3, "planted modularity {q_planted}");
        // Label propagation should find a partition of comparable quality.
        let mut rng = StdRng::seed_from_u64(1);
        let found = label_propagation(&dataset.network, 30, &mut rng);
        let q_found = modularity(&dataset.network, &found);
        assert!(q_found > 0.2, "recovered modularity {q_found}");
    }

    #[test]
    fn bids_respect_the_requested_count_and_are_unique() {
        let config = ClusteredConfig::small();
        let instance = generate_clustered(&config, 7);
        for user in instance.users() {
            assert!(user.bids.len() <= config.bids_per_user);
            assert!(!user.bids.is_empty());
            let mut seen = user.bids.clone();
            seen.dedup();
            assert_eq!(seen.len(), user.bids.len(), "duplicate bids");
        }
    }

    #[test]
    fn capacities_stay_within_the_configured_bounds() {
        let config = ClusteredConfig::small();
        let instance = generate_clustered(&config, 2);
        for event in instance.events() {
            assert!((1..=config.max_event_capacity).contains(&event.capacity));
        }
        for user in instance.users() {
            assert!((1..=config.max_user_capacity).contains(&user.capacity));
        }
    }

    #[test]
    fn single_community_and_single_slot_edge_cases_work() {
        let config = ClusteredConfig {
            num_communities: 1,
            num_time_slots: 1,
            ..ClusteredConfig::tiny()
        };
        let dataset = generate_clustered_dataset(&config, 4);
        // Every pair of events conflicts (same slot), so every user's
        // admissible sets are singletons; the instance must still be valid.
        let instance = &dataset.instance;
        assert_eq!(instance.num_events(), config.num_events);
        assert!(instance.conflicts().num_conflicting_pairs() > 0);
    }
}
