//! Arrival-process delta traces for the serving engine.
//!
//! The batch generators freeze a snapshot of the platform; this module
//! generates what happens *next*: a timestamped stream of
//! [`InstanceDelta`]s — users joining and leaving, events being announced,
//! capacities and bid sets churning — shaped like Meetup-style arrival
//! processes. Timestamps follow a Poisson process (exponential
//! inter-arrival times, as in [`crate::arrival`]), and the users touched by
//! churn deltas rotate through a random arrival order drawn with
//! [`crate::arrival::random_order`], so socially distinct users are
//! exercised rather than one hot user.
//!
//! Traces are deterministic given `(instance, config, seed)` and serialize
//! with serde, making them reproducible benchmark artifacts.

use crate::arrival::random_order;
use igepa_core::{AttributeVector, CapacityTarget, EventId, Instance, InstanceDelta, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Relative frequencies of the delta kinds plus workload shape knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of deltas to generate.
    pub num_deltas: usize,
    /// Poisson arrival rate (deltas per abstract time unit).
    pub arrival_rate: f64,
    /// Relative weight of `AddUser` deltas.
    pub weight_add_user: f64,
    /// Relative weight of `RemoveUser` deltas.
    pub weight_remove_user: f64,
    /// Relative weight of `AddEvent` deltas.
    pub weight_add_event: f64,
    /// Relative weight of `UpdateCapacity` deltas.
    pub weight_update_capacity: f64,
    /// Relative weight of `UpdateBids` deltas.
    pub weight_update_bids: f64,
    /// Relative weight of `UpdateInteractionScore` deltas.
    pub weight_update_interaction: f64,
    /// Bid-set size of new users / rebids, `1..=max_bids`.
    pub max_bids: usize,
    /// Capacity of new users and user-capacity updates, `1..=max_user_capacity`.
    pub max_user_capacity: usize,
    /// Capacity of new events and event-capacity updates, `1..=max_event_capacity`.
    pub max_event_capacity: usize,
    /// Give announced events Meetup-like time windows (a deterministic
    /// rolling slot per announcement) instead of empty attribute vectors,
    /// so time-based conflict functions do real work on announcement
    /// streams. Off by default, matching historical traces.
    pub timed_announcements: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // Meetup-flavoured mix: registrations dominate, followed by bid
        // churn and event announcements; leavers and capacity edits are
        // comparatively rare.
        TraceConfig {
            num_deltas: 1000,
            arrival_rate: 10.0,
            weight_add_user: 0.35,
            weight_remove_user: 0.05,
            weight_add_event: 0.15,
            weight_update_capacity: 0.10,
            weight_update_bids: 0.25,
            weight_update_interaction: 0.10,
            max_bids: 5,
            max_user_capacity: 3,
            max_event_capacity: 20,
            timed_announcements: false,
        }
    }
}

impl TraceConfig {
    /// A small trace for tests and examples.
    pub fn small() -> Self {
        TraceConfig {
            num_deltas: 200,
            ..TraceConfig::default()
        }
    }

    /// Total of all kind weights.
    fn total_weight(&self) -> f64 {
        self.weight_add_user
            + self.weight_remove_user
            + self.weight_add_event
            + self.weight_update_capacity
            + self.weight_update_bids
            + self.weight_update_interaction
    }
}

/// Attribute vector of an announced event: a deterministic rolling time
/// slot when [`TraceConfig::timed_announcements`] is on (90-minute
/// windows every 30 abstract minutes, so neighbouring announcements
/// overlap and conflict under time-based σ), empty otherwise.
fn announcement_attrs(config: &TraceConfig, event_index: usize) -> AttributeVector {
    if config.timed_announcements {
        AttributeVector::from_time(event_index as i64 * 30, 90)
    } else {
        AttributeVector::empty()
    }
}

/// One timestamped delta of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedDelta {
    /// Arrival timestamp (abstract time units, non-decreasing).
    pub at: f64,
    /// The mutation arriving at that time.
    pub delta: InstanceDelta,
}

/// A generated delta trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DeltaTrace {
    /// The timestamped deltas, ordered by arrival time.
    pub deltas: Vec<TimedDelta>,
}

impl DeltaTrace {
    /// Number of deltas in the trace.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Timestamp of the last delta (0.0 for empty traces).
    pub fn makespan(&self) -> f64 {
        self.deltas.last().map(|d| d.at).unwrap_or(0.0)
    }

    /// The bare deltas, without timestamps.
    pub fn deltas_only(&self) -> Vec<InstanceDelta> {
        self.deltas.iter().map(|d| d.delta.clone()).collect()
    }
}

/// Generates a delta trace against (a snapshot of) `instance`.
///
/// The generator tracks the evolving user/event population implied by its
/// own deltas, so every generated delta is valid when the trace is applied
/// in order to an engine seeded with `instance`: ids referenced by churn
/// deltas always exist, removed users are not targeted twice, and bids only
/// name events that have been announced by that point.
pub fn generate_trace(instance: &Instance, config: &TraceConfig, seed: u64) -> DeltaTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_trace_with_rng(instance, config, &mut rng)
}

/// As [`generate_trace`] with a caller-provided generator.
pub fn generate_trace_with_rng<R: Rng + ?Sized>(
    instance: &Instance,
    config: &TraceConfig,
    rng: &mut R,
) -> DeltaTrace {
    let mut num_events = instance.num_events();
    // Active users rotate through a random arrival order so churn deltas
    // spread over the population instead of hammering one id.
    let mut active: Vec<usize> = if instance.num_users() > 0 {
        random_order(instance.num_users(), rng).order
    } else {
        Vec::new()
    };
    let mut next_active = 0usize;
    let mut num_users = instance.num_users();

    let rate = config.arrival_rate.max(f64::MIN_POSITIVE);
    let total_weight = config.total_weight();
    let mut clock = 0.0;
    let mut deltas = Vec::with_capacity(config.num_deltas);

    for _ in 0..config.num_deltas {
        // Exponential inter-arrival times (Poisson process).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        clock += -u.ln() / rate;

        let mut draws = 0usize;
        let delta = loop {
            // Every churn kind needs an active user; if the population is
            // drained (or the weights only name churn kinds), fall back to
            // growth instead of redrawing forever.
            draws += 1;
            if draws > 16 {
                break make_add_user(config, num_events, rng);
            }
            let pick = if total_weight > 0.0 {
                rng.gen_range(0.0..total_weight)
            } else {
                0.0
            };
            let mut acc = config.weight_add_user;
            if pick < acc || total_weight <= 0.0 {
                break make_add_user(config, num_events, rng);
            }
            acc += config.weight_remove_user;
            if pick < acc {
                if let Some(user) = pick_active(&active, &mut next_active) {
                    // Retire the user and drop them from the rotation.
                    active.retain(|&x| x != user);
                    break InstanceDelta::RemoveUser {
                        user: UserId::new(user),
                    };
                }
                continue;
            }
            acc += config.weight_add_event;
            if pick < acc {
                let attrs = announcement_attrs(config, num_events);
                num_events += 1;
                break InstanceDelta::AddEvent {
                    capacity: rng.gen_range(1..=config.max_event_capacity.max(1)),
                    attrs,
                };
            }
            acc += config.weight_update_capacity;
            if pick < acc {
                if rng.gen_bool(0.5) && num_events > 0 {
                    break InstanceDelta::UpdateCapacity {
                        target: CapacityTarget::Event(EventId::new(rng.gen_range(0..num_events))),
                        capacity: rng.gen_range(1..=config.max_event_capacity.max(1)),
                    };
                }
                if let Some(user) = pick_active(&active, &mut next_active) {
                    break InstanceDelta::UpdateCapacity {
                        target: CapacityTarget::User(UserId::new(user)),
                        capacity: rng.gen_range(1..=config.max_user_capacity.max(1)),
                    };
                }
                continue;
            }
            acc += config.weight_update_bids;
            if pick < acc {
                if let Some(user) = pick_active(&active, &mut next_active) {
                    break InstanceDelta::UpdateBids {
                        user: UserId::new(user),
                        bids: sample_bids(config, num_events, rng),
                    };
                }
                continue;
            }
            // UpdateInteractionScore.
            if let Some(user) = pick_active(&active, &mut next_active) {
                break InstanceDelta::UpdateInteractionScore {
                    user: UserId::new(user),
                    score: rng.gen_range(0.0..1.0),
                };
            }
            continue;
        };

        // New users join the churn rotation.
        if matches!(delta, InstanceDelta::AddUser { .. }) {
            active.push(num_users);
            num_users += 1;
        }
        deltas.push(TimedDelta { at: clock, delta });
    }

    DeltaTrace { deltas }
}

/// Shape knobs of a *multi-community* delta trace: the workload that
/// stresses (or spares) a sharded engine's cross-shard boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunityTraceConfig {
    /// The underlying arrival-process mix.
    pub base: TraceConfig,
    /// Number of communities events and users are organised around.
    pub num_communities: usize,
    /// Probability that a single bid targets the bidder's home community.
    /// `1.0` is perfectly partition-friendly; lowering it grows the
    /// cross-community (and, under a community-aligned partitioner,
    /// cross-shard) boundary.
    pub locality: f64,
    /// Zipf exponent of home-community popularity for arriving users
    /// (0 = uniform): with skew, a few hot communities absorb most churn.
    pub skew: f64,
}

impl Default for CommunityTraceConfig {
    fn default() -> Self {
        CommunityTraceConfig {
            base: TraceConfig::default(),
            num_communities: 4,
            locality: 0.9,
            skew: 1.0,
        }
    }
}

impl CommunityTraceConfig {
    /// A partition-friendly mix: population churn (registrations, bid
    /// churn, departures) dominates while the event catalogue stays
    /// comparatively stable, and bids are strongly local. This is the
    /// workload where sharding pays — every event announcement is
    /// broadcast to all shards, so announcement-heavy traces dilute the
    /// per-shard latency win that user-routed deltas enjoy.
    pub fn partition_friendly(num_deltas: usize, num_communities: usize) -> Self {
        CommunityTraceConfig {
            base: TraceConfig {
                num_deltas,
                weight_add_user: 0.40,
                weight_remove_user: 0.05,
                weight_add_event: 0.05,
                weight_update_capacity: 0.05,
                weight_update_bids: 0.30,
                weight_update_interaction: 0.15,
                ..TraceConfig::default()
            },
            num_communities,
            locality: 0.95,
            skew: 1.0,
        }
    }

    /// An announcement-heavy mix: the event catalogue churns — new events
    /// and event-capacity edits dominate the stream, with just enough
    /// user churn that announcements have bidders to seat. This is the
    /// historical sharding anti-pattern: every event-scoped delta
    /// broadcasts to all shards, so pre-catalogue engines paid k+1 full
    /// applications per announcement. Use it to measure how well shared
    /// event state absorbs catalogue churn.
    pub fn announcement_heavy(num_deltas: usize, num_communities: usize) -> Self {
        CommunityTraceConfig {
            base: TraceConfig {
                num_deltas,
                weight_add_user: 0.20,
                weight_remove_user: 0.02,
                weight_add_event: 0.35,
                weight_update_capacity: 0.25,
                weight_update_bids: 0.13,
                weight_update_interaction: 0.05,
                timed_announcements: true,
                ..TraceConfig::default()
            },
            num_communities,
            locality: 0.9,
            skew: 1.0,
        }
    }
}

/// Generates a community-structured delta trace against (a snapshot of)
/// `instance`.
///
/// `event_communities` names the home community of every existing event
/// (e.g. `ClusteredDataset::event_communities`); events announced by the
/// trace itself are dealt to communities round-robin by global event
/// index. Every arriving user draws a Zipf-skewed home community and
/// bids inside it with probability [`CommunityTraceConfig::locality`];
/// bid churn keeps the user's home. Existing users inherit the majority
/// community of their bids. The same validity guarantees as
/// [`generate_trace`] hold: applied in order, every delta is valid.
pub fn generate_community_trace(
    instance: &Instance,
    event_communities: &[usize],
    config: &CommunityTraceConfig,
    seed: u64,
) -> DeltaTrace {
    assert_eq!(
        event_communities.len(),
        instance.num_events(),
        "one community per existing event"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let num_communities = config.num_communities.max(1);

    // Evolving community membership of events.
    let mut events_of_community: Vec<Vec<usize>> = vec![Vec::new(); num_communities];
    for (event, &community) in event_communities.iter().enumerate() {
        events_of_community[community % num_communities].push(event);
    }
    let mut num_events = instance.num_events();

    // Home community of every user: majority of their bids, ties to the
    // smaller community, `u mod C` for users without bids.
    let mut user_home: Vec<usize> = instance
        .users()
        .iter()
        .map(|user| {
            if user.bids.is_empty() {
                return user.id.index() % num_communities;
            }
            let mut votes = vec![0usize; num_communities];
            for &v in &user.bids {
                votes[event_communities[v.index()] % num_communities] += 1;
            }
            votes
                .iter()
                .enumerate()
                .max_by_key(|&(c, &count)| (count, std::cmp::Reverse(c)))
                .map(|(c, _)| c)
                .unwrap_or(0)
        })
        .collect();

    // Zipf weights over communities for arriving users.
    let community_weights: Vec<f64> = (0..num_communities)
        .map(|c| 1.0 / ((c + 1) as f64).powf(config.skew.max(0.0)))
        .collect();
    let total_community_weight: f64 = community_weights.iter().sum();

    let mut active: Vec<usize> = if instance.num_users() > 0 {
        random_order(instance.num_users(), &mut rng).order
    } else {
        Vec::new()
    };
    let mut next_active = 0usize;

    let base = &config.base;
    let rate = base.arrival_rate.max(f64::MIN_POSITIVE);
    let total_weight = base.total_weight();
    let mut clock = 0.0;
    let mut deltas = Vec::with_capacity(base.num_deltas);

    for _ in 0..base.num_deltas {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        clock += -u.ln() / rate;

        let mut draws = 0usize;
        let delta = loop {
            draws += 1;
            let home = {
                let mut threshold = rng.gen_range(0.0..total_community_weight);
                let mut chosen = num_communities - 1;
                for (c, &w) in community_weights.iter().enumerate() {
                    if threshold < w {
                        chosen = c;
                        break;
                    }
                    threshold -= w;
                }
                chosen
            };
            if draws > 16 {
                user_home.push(home);
                break make_community_add_user(
                    config,
                    home,
                    &events_of_community,
                    num_events,
                    &mut rng,
                );
            }
            let pick = if total_weight > 0.0 {
                rng.gen_range(0.0..total_weight)
            } else {
                0.0
            };
            let mut acc = base.weight_add_user;
            if pick < acc || total_weight <= 0.0 {
                user_home.push(home);
                break make_community_add_user(
                    config,
                    home,
                    &events_of_community,
                    num_events,
                    &mut rng,
                );
            }
            acc += base.weight_remove_user;
            if pick < acc {
                if let Some(user) = pick_active(&active, &mut next_active) {
                    active.retain(|&x| x != user);
                    break InstanceDelta::RemoveUser {
                        user: UserId::new(user),
                    };
                }
                continue;
            }
            acc += base.weight_add_event;
            if pick < acc {
                // New events are dealt to communities round-robin by id.
                events_of_community[num_events % num_communities].push(num_events);
                let attrs = announcement_attrs(base, num_events);
                num_events += 1;
                break InstanceDelta::AddEvent {
                    capacity: rng.gen_range(1..=base.max_event_capacity.max(1)),
                    attrs,
                };
            }
            acc += base.weight_update_capacity;
            if pick < acc {
                if rng.gen_bool(0.5) && num_events > 0 {
                    break InstanceDelta::UpdateCapacity {
                        target: CapacityTarget::Event(EventId::new(rng.gen_range(0..num_events))),
                        capacity: rng.gen_range(1..=base.max_event_capacity.max(1)),
                    };
                }
                if let Some(user) = pick_active(&active, &mut next_active) {
                    break InstanceDelta::UpdateCapacity {
                        target: CapacityTarget::User(UserId::new(user)),
                        capacity: rng.gen_range(1..=base.max_user_capacity.max(1)),
                    };
                }
                continue;
            }
            acc += base.weight_update_bids;
            if pick < acc {
                if let Some(user) = pick_active(&active, &mut next_active) {
                    let home = user_home[user];
                    break InstanceDelta::UpdateBids {
                        user: UserId::new(user),
                        bids: sample_community_bids(
                            config,
                            home,
                            &events_of_community,
                            num_events,
                            &mut rng,
                        ),
                    };
                }
                continue;
            }
            if let Some(user) = pick_active(&active, &mut next_active) {
                break InstanceDelta::UpdateInteractionScore {
                    user: UserId::new(user),
                    score: rng.gen_range(0.0..1.0),
                };
            }
            continue;
        };

        if matches!(delta, InstanceDelta::AddUser { .. }) {
            active.push(user_home.len() - 1);
        }
        deltas.push(TimedDelta { at: clock, delta });
    }

    DeltaTrace { deltas }
}

fn make_community_add_user<R: Rng + ?Sized>(
    config: &CommunityTraceConfig,
    home: usize,
    events_of_community: &[Vec<usize>],
    num_events: usize,
    rng: &mut R,
) -> InstanceDelta {
    InstanceDelta::AddUser {
        capacity: rng.gen_range(1..=config.base.max_user_capacity.max(1)),
        attrs: AttributeVector::empty(),
        bids: sample_community_bids(config, home, events_of_community, num_events, rng),
        interaction: rng.gen_range(0.0..1.0),
    }
}

/// Draws a bid set mostly inside the home community: each bid stays home
/// with probability `locality` (when the home community has events) and
/// falls back to a uniform global pick otherwise.
fn sample_community_bids<R: Rng + ?Sized>(
    config: &CommunityTraceConfig,
    home: usize,
    events_of_community: &[Vec<usize>],
    num_events: usize,
    rng: &mut R,
) -> Vec<EventId> {
    if num_events == 0 {
        return Vec::new();
    }
    let wanted = rng
        .gen_range(1..=config.base.max_bids.max(1))
        .min(num_events);
    let home_pool = &events_of_community[home % events_of_community.len()];
    let mut bids: Vec<EventId> = (0..wanted)
        .map(|_| {
            if !home_pool.is_empty() && rng.gen_bool(config.locality.clamp(0.0, 1.0)) {
                EventId::new(home_pool[rng.gen_range(0..home_pool.len())])
            } else {
                EventId::new(rng.gen_range(0..num_events))
            }
        })
        .collect();
    bids.sort_unstable();
    bids.dedup();
    bids
}

fn make_add_user<R: Rng + ?Sized>(
    config: &TraceConfig,
    num_events: usize,
    rng: &mut R,
) -> InstanceDelta {
    InstanceDelta::AddUser {
        capacity: rng.gen_range(1..=config.max_user_capacity.max(1)),
        attrs: AttributeVector::empty(),
        bids: sample_bids(config, num_events, rng),
        interaction: rng.gen_range(0.0..1.0),
    }
}

fn sample_bids<R: Rng + ?Sized>(
    config: &TraceConfig,
    num_events: usize,
    rng: &mut R,
) -> Vec<EventId> {
    if num_events == 0 {
        return Vec::new();
    }
    let wanted = rng.gen_range(1..=config.max_bids.max(1)).min(num_events);
    let mut bids: Vec<EventId> = (0..wanted)
        .map(|_| EventId::new(rng.gen_range(0..num_events)))
        .collect();
    bids.sort_unstable();
    bids.dedup();
    bids
}

fn pick_active(active: &[usize], cursor: &mut usize) -> Option<usize> {
    if active.is_empty() {
        return None;
    }
    let user = active[*cursor % active.len()];
    *cursor += 1;
    Some(user)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_synthetic, SyntheticConfig};
    use igepa_core::{ConstantInterest, NeverConflict};

    fn base() -> Instance {
        generate_synthetic(&SyntheticConfig::tiny(), 7)
    }

    #[test]
    fn trace_is_deterministic_and_timestamped() {
        let instance = base();
        let config = TraceConfig::small();
        let a = generate_trace(&instance, &config, 11);
        let b = generate_trace(&instance, &config, 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), config.num_deltas);
        assert!(!a.is_empty());
        assert!(a.makespan() > 0.0);
        assert!(a.deltas.windows(2).all(|w| w[0].at <= w[1].at));
        let c = generate_trace(&instance, &config, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn every_delta_applies_cleanly_in_order() {
        let mut instance = base();
        let trace = generate_trace(&instance, &TraceConfig::small(), 3);
        let mut kinds_seen = std::collections::BTreeSet::new();
        for timed in &trace.deltas {
            kinds_seen.insert(timed.delta.kind());
            instance
                .apply_delta(&timed.delta, &NeverConflict, &ConstantInterest(0.5))
                .expect("generated deltas must be valid in order");
        }
        // The default mix exercises every kind.
        assert_eq!(kinds_seen.len(), 6, "kinds seen: {kinds_seen:?}");
    }

    #[test]
    fn removed_users_are_never_touched_again() {
        let instance = base();
        let config = TraceConfig {
            num_deltas: 500,
            weight_remove_user: 0.3,
            ..TraceConfig::default()
        };
        let trace = generate_trace(&instance, &config, 5);
        let mut removed = std::collections::BTreeSet::new();
        for timed in &trace.deltas {
            match &timed.delta {
                InstanceDelta::RemoveUser { user } => {
                    assert!(removed.insert(*user), "user {user} removed twice");
                }
                InstanceDelta::UpdateBids { user, .. }
                | InstanceDelta::UpdateInteractionScore { user, .. }
                | InstanceDelta::UpdateCapacity {
                    target: CapacityTarget::User(user),
                    ..
                } => {
                    assert!(!removed.contains(user), "removed user {user} touched");
                }
                _ => {}
            }
        }
        assert!(!removed.is_empty());
    }

    #[test]
    fn trace_serializes_roundtrip() {
        let instance = base();
        let trace = generate_trace(
            &instance,
            &TraceConfig {
                num_deltas: 20,
                ..TraceConfig::default()
            },
            2,
        );
        let json = serde_json::to_string(&trace).unwrap();
        let back: DeltaTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn community_trace_is_deterministic_and_applies_cleanly() {
        let dataset = crate::generate_clustered_dataset(&crate::ClusteredConfig::tiny(), 5);
        let config = CommunityTraceConfig {
            base: TraceConfig::small(),
            num_communities: 3,
            locality: 0.9,
            skew: 1.0,
        };
        let a =
            generate_community_trace(&dataset.instance, &dataset.event_communities, &config, 21);
        let b =
            generate_community_trace(&dataset.instance, &dataset.event_communities, &config, 21);
        assert_eq!(a, b);
        assert_eq!(a.len(), config.base.num_deltas);
        let mut instance = dataset.instance.clone();
        for timed in &a.deltas {
            instance
                .apply_delta(&timed.delta, &NeverConflict, &ConstantInterest(0.5))
                .expect("community trace deltas must be valid in order");
        }
    }

    #[test]
    fn high_locality_keeps_bids_inside_the_home_community() {
        let dataset = crate::generate_clustered_dataset(&crate::ClusteredConfig::tiny(), 9);
        let num_communities = 3;
        let config = CommunityTraceConfig {
            base: TraceConfig {
                num_deltas: 400,
                weight_add_user: 1.0,
                weight_remove_user: 0.0,
                weight_add_event: 0.0,
                weight_update_capacity: 0.0,
                weight_update_bids: 0.0,
                weight_update_interaction: 0.0,
                ..TraceConfig::default()
            },
            num_communities,
            locality: 1.0,
            skew: 0.0,
        };
        let trace =
            generate_community_trace(&dataset.instance, &dataset.event_communities, &config, 3);
        // With locality 1.0 and no new events, every AddUser's bid set
        // must live inside a single community.
        for timed in &trace.deltas {
            if let InstanceDelta::AddUser { bids, .. } = &timed.delta {
                let communities: std::collections::BTreeSet<usize> = bids
                    .iter()
                    .map(|v| dataset.event_communities[v.index()] % num_communities)
                    .collect();
                assert!(
                    communities.len() <= 1,
                    "bids {bids:?} span communities {communities:?}"
                );
            }
        }
    }

    #[test]
    fn skewed_communities_absorb_more_arrivals() {
        let dataset = crate::generate_clustered_dataset(&crate::ClusteredConfig::tiny(), 2);
        let config = CommunityTraceConfig {
            base: TraceConfig {
                num_deltas: 600,
                weight_add_user: 1.0,
                weight_remove_user: 0.0,
                weight_add_event: 0.0,
                weight_update_capacity: 0.0,
                weight_update_bids: 0.0,
                weight_update_interaction: 0.0,
                ..TraceConfig::default()
            },
            num_communities: 3,
            locality: 1.0,
            skew: 2.0,
        };
        let trace =
            generate_community_trace(&dataset.instance, &dataset.event_communities, &config, 7);
        // Count arrivals per home community via the bid sets.
        let mut per_community = vec![0usize; 3];
        for timed in &trace.deltas {
            if let InstanceDelta::AddUser { bids, .. } = &timed.delta {
                if let Some(v) = bids.first() {
                    per_community[dataset.event_communities[v.index()] % 3] += 1;
                }
            }
        }
        assert!(
            per_community[0] > per_community[2],
            "skew 2.0 must favour community 0: {per_community:?}"
        );
    }

    #[test]
    fn empty_population_still_generates_add_deltas() {
        let instance = Instance::builder().build_trivial().unwrap();
        let trace = generate_trace(&instance, &TraceConfig::small(), 1);
        assert_eq!(trace.len(), TraceConfig::small().num_deltas);
        // With nobody to churn, only additions can occur at the start.
        assert!(matches!(
            trace.deltas[0].delta,
            InstanceDelta::AddUser { .. } | InstanceDelta::AddEvent { .. }
        ));
    }
}
