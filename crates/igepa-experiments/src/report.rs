//! Report structures and renderers (markdown + CSV) shared by all
//! experiments.

use serde::{Deserialize, Serialize};

/// Mean utility of one algorithm at one sweep point (or table row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmResult {
    /// Algorithm name as reported by `ArrangementAlgorithm::name`.
    pub algorithm: String,
    /// Mean utility over the repetitions.
    pub mean_utility: f64,
    /// Minimum utility over the repetitions.
    pub min_utility: f64,
    /// Maximum utility over the repetitions.
    pub max_utility: f64,
    /// Mean wall-clock runtime per repetition, in seconds.
    pub mean_runtime_seconds: f64,
    /// Number of repetitions aggregated.
    pub repetitions: usize,
}

impl AlgorithmResult {
    /// Aggregates per-run utilities and runtimes into a result row.
    pub fn from_runs(algorithm: &str, utilities: &[f64], runtimes: &[f64]) -> Self {
        assert!(!utilities.is_empty(), "at least one repetition is required");
        let n = utilities.len() as f64;
        AlgorithmResult {
            algorithm: algorithm.to_string(),
            mean_utility: utilities.iter().sum::<f64>() / n,
            min_utility: utilities.iter().cloned().fold(f64::INFINITY, f64::min),
            max_utility: utilities.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            mean_runtime_seconds: if runtimes.is_empty() {
                0.0
            } else {
                runtimes.iter().sum::<f64>() / runtimes.len() as f64
            },
            repetitions: utilities.len(),
        }
    }
}

/// One point of a parameter sweep (e.g. `|V| = 200`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept factor's value at this point.
    pub factor_value: f64,
    /// Per-algorithm results at this point.
    pub results: Vec<AlgorithmResult>,
}

/// A full sweep over one factor — the reproduction of one subfigure of
/// Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Experiment identifier, e.g. `"fig1a"`.
    pub id: String,
    /// Human-readable description of the swept factor.
    pub factor_name: String,
    /// The sweep points in order.
    pub points: Vec<SweepPoint>,
}

/// A single-setting comparison — the reproduction of Table I/II style rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableReport {
    /// Experiment identifier, e.g. `"table2"`.
    pub id: String,
    /// Human-readable workload description.
    pub description: String,
    /// Per-algorithm results.
    pub results: Vec<AlgorithmResult>,
}

impl SweepReport {
    /// Renders the sweep as a GitHub-flavoured markdown table (one row per
    /// sweep point, one column per algorithm).
    pub fn to_markdown(&self) -> String {
        let mut algorithms: Vec<&str> = Vec::new();
        for p in &self.points {
            for r in &p.results {
                if !algorithms.contains(&r.algorithm.as_str()) {
                    algorithms.push(&r.algorithm);
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "### {} — utility vs {}\n\n",
            self.id, self.factor_name
        ));
        out.push_str(&format!("| {} |", self.factor_name));
        for a in &algorithms {
            out.push_str(&format!(" {a} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &algorithms {
            out.push_str("---|");
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("| {} |", format_value(p.factor_value)));
            for a in &algorithms {
                match p.results.iter().find(|r| r.algorithm == *a) {
                    Some(r) => out.push_str(&format!(" {:.2} |", r.mean_utility)),
                    None => out.push_str(" – |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the sweep as CSV (`factor,algorithm,mean,min,max,runtime,reps`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("factor_value,algorithm,mean_utility,min_utility,max_utility,mean_runtime_seconds,repetitions\n");
        for p in &self.points {
            for r in &p.results {
                out.push_str(&format!(
                    "{},{},{:.6},{:.6},{:.6},{:.6},{}\n",
                    format_value(p.factor_value),
                    r.algorithm,
                    r.mean_utility,
                    r.min_utility,
                    r.max_utility,
                    r.mean_runtime_seconds,
                    r.repetitions
                ));
            }
        }
        out
    }
}

impl TableReport {
    /// Renders the comparison as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.description));
        out.push_str("| Algorithm | Mean utility | Min | Max | Mean runtime (s) | Reps |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for r in &self.results {
            out.push_str(&format!(
                "| {} | {:.2} | {:.2} | {:.2} | {:.3} | {} |\n",
                r.algorithm,
                r.mean_utility,
                r.min_utility,
                r.max_utility,
                r.mean_runtime_seconds,
                r.repetitions
            ));
        }
        out
    }

    /// Renders the comparison as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "algorithm,mean_utility,min_utility,max_utility,mean_runtime_seconds,repetitions\n",
        );
        for r in &self.results {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{}\n",
                r.algorithm,
                r.mean_utility,
                r.min_utility,
                r.max_utility,
                r.mean_runtime_seconds,
                r.repetitions
            ));
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sweep() -> SweepReport {
        SweepReport {
            id: "fig1a".into(),
            factor_name: "|V|".into(),
            points: vec![
                SweepPoint {
                    factor_value: 100.0,
                    results: vec![
                        AlgorithmResult::from_runs("LP-packing", &[10.0, 12.0], &[0.1, 0.2]),
                        AlgorithmResult::from_runs("GG", &[9.0, 9.0], &[0.01, 0.01]),
                    ],
                },
                SweepPoint {
                    factor_value: 200.0,
                    results: vec![
                        AlgorithmResult::from_runs("LP-packing", &[20.0], &[0.1]),
                        AlgorithmResult::from_runs("GG", &[18.0], &[0.01]),
                    ],
                },
            ],
        }
    }

    #[test]
    fn algorithm_result_aggregates_runs() {
        let r = AlgorithmResult::from_runs("X", &[1.0, 3.0], &[0.5, 1.5]);
        assert_eq!(r.mean_utility, 2.0);
        assert_eq!(r.min_utility, 1.0);
        assert_eq!(r.max_utility, 3.0);
        assert_eq!(r.mean_runtime_seconds, 1.0);
        assert_eq!(r.repetitions, 2);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn empty_runs_are_rejected() {
        let _ = AlgorithmResult::from_runs("X", &[], &[]);
    }

    #[test]
    fn sweep_markdown_contains_all_points_and_algorithms() {
        let md = sample_sweep().to_markdown();
        assert!(md.contains("| 100 |"));
        assert!(md.contains("| 200 |"));
        assert!(md.contains("LP-packing"));
        assert!(md.contains("GG"));
        assert!(md.contains("11.00")); // mean of 10 and 12
    }

    #[test]
    fn sweep_csv_has_one_row_per_algorithm_per_point() {
        let csv = sample_sweep().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + 4); // header + 2 points × 2 algorithms
        assert!(lines[1].starts_with("100,LP-packing"));
    }

    #[test]
    fn table_markdown_and_csv() {
        let t = TableReport {
            id: "table2".into(),
            description: "Meetup-SF".into(),
            results: vec![AlgorithmResult::from_runs("GG", &[5.0], &[0.2])],
        };
        assert!(t.to_markdown().contains("Meetup-SF"));
        assert!(t.to_csv().contains("GG,5.000000"));
    }

    #[test]
    fn reports_serialize_to_json() {
        let json = serde_json::to_string(&sample_sweep()).unwrap();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sample_sweep());
    }
}
