//! Ablation studies around the design choices of LP-packing.
//!
//! None of these appear as numbered artefacts in the (4-page) paper, but
//! each probes a decision the paper either makes implicitly or leaves
//! unexplored. DESIGN.md lists them as extensions:
//!
//! * **α sweep** — Theorem 2 proves the ¼ bound at `α = ½`, yet the
//!   evaluation uses `α = 1`. The sweep shows how utility varies with α.
//! * **β sweep** — the utility trades user interest against social
//!   interaction; the sweep varies β from 0 (interaction only) to 1
//!   (interest only) and checks the algorithm ordering at every point.
//! * **LP backend** — exact simplex vs the dual-subgradient packing solver
//!   behind the same rounding, on identical workloads.
//! * **Guidance/rounding ablation** — LP-packing vs its deterministic
//!   rounding, the Lagrangian price heuristic, and the metaheuristics.
//! * **Interaction measure** — Definition 6 uses normalised degree; the
//!   ablation re-scores the same workload with closeness, PageRank,
//!   eigenvector and core-number centralities.
//! * **Clustered workloads** — the Table I comparison repeated on the
//!   community-structured generator.

use crate::report::{AlgorithmResult, SweepPoint, SweepReport, TableReport};
use crate::settings::ExperimentSettings;
use igepa_algos::{
    run_and_record, ArrangementAlgorithm, GreedyArrangement, Lagrangian, LocalSearch, LpBackend,
    LpDeterministic, LpPacking, RandomU, RandomV, SimulatedAnnealing, TabuSearch,
};
use igepa_core::{Instance, InstanceSnapshot};
use igepa_datagen::{
    generate_clustered_dataset, generate_synthetic, ClusteredConfig, SyntheticConfig,
};
use igepa_graph::InteractionMeasure;

/// Runs a roster of algorithms on `repetitions` freshly generated instances
/// and aggregates one [`AlgorithmResult`] per algorithm.
fn compare_roster<F>(
    settings: &ExperimentSettings,
    algorithms: &[Box<dyn ArrangementAlgorithm>],
    mut make_instance: F,
) -> Vec<AlgorithmResult>
where
    F: FnMut(usize) -> Instance,
{
    let mut utilities: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
    let mut runtimes: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
    for rep in 0..settings.repetitions.max(1) {
        let instance = make_instance(rep);
        for (i, algorithm) in algorithms.iter().enumerate() {
            let record = run_and_record(
                algorithm.as_ref(),
                &instance,
                settings.base_seed + rep as u64,
            );
            assert!(
                record.feasible,
                "{} produced an infeasible arrangement",
                record.algorithm
            );
            utilities[i].push(record.utility);
            runtimes[i].push(record.runtime_seconds);
        }
    }
    algorithms
        .iter()
        .enumerate()
        .map(|(i, a)| AlgorithmResult::from_runs(a.name(), &utilities[i], &runtimes[i]))
        .collect()
}

/// α sweep: LP-packing with α ∈ {¼, ½, ¾, 1} on the (scaled) Table I
/// default workload. The result keeps one row per α value; the algorithm
/// name in each row is `LP-packing`.
pub fn run_alpha_ablation(settings: &ExperimentSettings) -> SweepReport {
    let config = settings.scale_config(&SyntheticConfig::paper_default());
    let alphas = [0.25, 0.5, 0.75, 1.0];
    let mut points = Vec::with_capacity(alphas.len());
    for (k, &alpha) in alphas.iter().enumerate() {
        let algorithm: Vec<Box<dyn ArrangementAlgorithm>> = vec![Box::new(LpPacking {
            alpha,
            backend: settings.lp_backend,
            ..LpPacking::default()
        })];
        let results = compare_roster(settings, &algorithm, |rep| {
            generate_synthetic(&config, settings.base_seed + 1000 * k as u64 + rep as u64)
        });
        points.push(SweepPoint {
            factor_value: alpha,
            results,
        });
    }
    SweepReport {
        id: "ablation-alpha".to_string(),
        factor_name: "sampling parameter α".to_string(),
        points,
    }
}

/// β sweep: the full paper roster at β ∈ {0, ¼, ½, ¾, 1}.
pub fn run_beta_ablation(settings: &ExperimentSettings) -> SweepReport {
    let base = settings.scale_config(&SyntheticConfig::paper_default());
    let betas = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut points = Vec::with_capacity(betas.len());
    for (k, &beta) in betas.iter().enumerate() {
        let config = SyntheticConfig {
            beta,
            ..base.clone()
        };
        let results = settings.compare_on(|rep| {
            generate_synthetic(&config, settings.base_seed + 2000 * k as u64 + rep as u64)
        });
        points.push(SweepPoint {
            factor_value: beta,
            results,
        });
    }
    SweepReport {
        id: "ablation-beta".to_string(),
        factor_name: "balance parameter β".to_string(),
        points,
    }
}

/// LP backend ablation: identical workloads solved by LP-packing with the
/// exact simplex and with the dual-subgradient packing solver.
pub fn run_backend_ablation(settings: &ExperimentSettings) -> TableReport {
    let config = settings.scale_config(&SyntheticConfig::paper_default());
    let algorithms: Vec<Box<dyn ArrangementAlgorithm>> = vec![
        Box::new(LpPacking::with_backend(LpBackend::Simplex)),
        Box::new(LpPacking::with_backend(LpBackend::DualSubgradient {
            rounds: 1500,
        })),
        Box::new(GreedyArrangement),
    ];
    // `name()` is identical for both LP-packing variants, so relabel rows.
    let mut results = compare_roster(settings, &algorithms, |rep| {
        generate_synthetic(&config, settings.base_seed + rep as u64)
    });
    if results.len() >= 2 {
        results[0].algorithm = "LP-packing (simplex)".to_string();
        results[1].algorithm = "LP-packing (dual subgradient)".to_string();
    }
    TableReport {
        id: "ablation-backend".to_string(),
        description: format!(
            "LP backend ablation on the Table I default workload (|V|={}, |U|={})",
            config.num_events, config.num_users
        ),
        results,
    }
}

/// Guidance/rounding ablation: LP-packing vs deterministic LP rounding, the
/// Lagrangian price heuristic, local search and the metaheuristics.
pub fn run_extension_ablation(settings: &ExperimentSettings) -> TableReport {
    let config = settings.scale_config(&SyntheticConfig::paper_default());
    let algorithms: Vec<Box<dyn ArrangementAlgorithm>> = vec![
        Box::new(LpPacking {
            backend: settings.lp_backend,
            ..LpPacking::default()
        }),
        Box::new(LpDeterministic::default()),
        Box::new(Lagrangian::default()),
        Box::new(GreedyArrangement),
        Box::new(LocalSearch::default()),
        Box::new(TabuSearch::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(RandomU),
        Box::new(RandomV),
    ];
    let results = compare_roster(settings, &algorithms, |rep| {
        generate_synthetic(&config, settings.base_seed + rep as u64)
    });
    TableReport {
        id: "ablation-extensions".to_string(),
        description: format!(
            "LP guidance vs heuristic alternatives on the Table I default workload (|V|={}, |U|={})",
            config.num_events, config.num_users
        ),
        results,
    }
}

/// Interaction-measure ablation: the same clustered workload re-scored with
/// every [`InteractionMeasure`], compared across the paper roster. Returns
/// one table per measure.
pub fn run_interaction_ablation(settings: &ExperimentSettings) -> Vec<TableReport> {
    let config = scaled_clustered_config(settings);
    InteractionMeasure::all()
        .into_iter()
        .map(|measure| {
            let results = settings.compare_on(|rep| {
                let dataset =
                    generate_clustered_dataset(&config, settings.base_seed + rep as u64);
                rescore_interaction(&dataset.instance, measure.scores(&dataset.network))
            });
            TableReport {
                id: format!("ablation-interaction-{}", measure.id()),
                description: format!(
                    "paper roster with D(G,u) replaced by {measure} centrality (clustered workload, |V|={}, |U|={})",
                    config.num_events, config.num_users
                ),
                results,
            }
        })
        .collect()
}

/// Table-I-style comparison on the community-structured workload.
pub fn run_clustered_table(settings: &ExperimentSettings) -> TableReport {
    let config = scaled_clustered_config(settings);
    let results = settings.compare_on(|rep| {
        generate_clustered_dataset(&config, settings.base_seed + rep as u64).instance
    });
    TableReport {
        id: "clustered".to_string(),
        description: format!(
            "community-structured workload (|V|={}, |U|={}, {} communities, {} time slots)",
            config.num_events, config.num_users, config.num_communities, config.num_time_slots
        ),
        results,
    }
}

fn scaled_clustered_config(settings: &ExperimentSettings) -> ClusteredConfig {
    let base = ClusteredConfig::default();
    if (settings.scale - 1.0).abs() < 1e-12 {
        return base;
    }
    let scale = settings.scale.max(0.01);
    ClusteredConfig {
        num_events: ((base.num_events as f64 * scale).round() as usize).max(4),
        num_users: ((base.num_users as f64 * scale).round() as usize).max(10),
        num_communities: ((base.num_communities as f64 * scale.sqrt()).round() as usize).max(2),
        num_time_slots: ((base.num_time_slots as f64 * scale.sqrt()).round() as usize).max(2),
        ..base
    }
}

/// Replaces an instance's interaction scores (Definition 6) by the given
/// vector, keeping every other ingredient identical.
fn rescore_interaction(instance: &Instance, scores: Vec<f64>) -> Instance {
    let mut snapshot = InstanceSnapshot::capture(instance);
    assert_eq!(
        snapshot.interaction.len(),
        scores.len(),
        "one interaction score per user is required"
    );
    snapshot.interaction = scores;
    snapshot
        .restore()
        .expect("re-scored snapshot remains a valid instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_settings() -> ExperimentSettings {
        ExperimentSettings {
            repetitions: 1,
            scale: 0.05,
            ..ExperimentSettings::quick()
        }
    }

    #[test]
    fn alpha_ablation_produces_one_point_per_alpha() {
        let report = run_alpha_ablation(&quick_settings());
        assert_eq!(report.id, "ablation-alpha");
        assert_eq!(report.points.len(), 4);
        for point in &report.points {
            assert_eq!(point.results.len(), 1);
            assert_eq!(point.results[0].algorithm, "LP-packing");
            assert!(point.results[0].mean_utility >= 0.0);
        }
        // α = 1 keeps at least as much LP mass as α = ¼ in expectation; with
        // a single repetition we only check monotonicity loosely: the largest
        // α must not be the unique minimum.
        let first = report.points.first().unwrap().results[0].mean_utility;
        let last = report.points.last().unwrap().results[0].mean_utility;
        assert!(last >= 0.5 * first);
    }

    #[test]
    fn beta_ablation_covers_the_whole_range_and_keeps_the_roster() {
        let report = run_beta_ablation(&quick_settings());
        assert_eq!(report.points.len(), 5);
        assert_eq!(report.points[0].factor_value, 0.0);
        assert_eq!(report.points[4].factor_value, 1.0);
        for point in &report.points {
            assert_eq!(point.results.len(), 4);
        }
    }

    #[test]
    fn backend_ablation_relabels_the_two_lp_rows() {
        let report = run_backend_ablation(&quick_settings());
        let names: Vec<&str> = report
            .results
            .iter()
            .map(|r| r.algorithm.as_str())
            .collect();
        assert!(names.contains(&"LP-packing (simplex)"));
        assert!(names.contains(&"LP-packing (dual subgradient)"));
        assert!(names.contains(&"GG"));
    }

    #[test]
    fn extension_ablation_runs_the_full_heuristic_roster() {
        let report = run_extension_ablation(&quick_settings());
        assert_eq!(report.results.len(), 9);
        for result in &report.results {
            assert!(result.mean_utility >= 0.0);
        }
        // LP-packing should not be the worst algorithm in the table.
        let lp = report
            .results
            .iter()
            .find(|r| r.algorithm == "LP-packing")
            .unwrap()
            .mean_utility;
        let worst = report
            .results
            .iter()
            .map(|r| r.mean_utility)
            .fold(f64::INFINITY, f64::min);
        assert!(lp > worst - 1e-9);
    }

    #[test]
    fn interaction_ablation_produces_one_table_per_measure() {
        let reports = run_interaction_ablation(&quick_settings());
        assert_eq!(reports.len(), InteractionMeasure::all().len());
        for report in &reports {
            assert!(report.id.starts_with("ablation-interaction-"));
            assert_eq!(report.results.len(), 4);
        }
    }

    #[test]
    fn clustered_table_compares_the_paper_roster() {
        let report = run_clustered_table(&quick_settings());
        assert_eq!(report.id, "clustered");
        assert_eq!(report.results.len(), 4);
    }

    #[test]
    fn rescore_interaction_replaces_only_the_scores() {
        let dataset = generate_clustered_dataset(&ClusteredConfig::tiny(), 1);
        let scores = vec![0.5; dataset.instance.num_users()];
        let rescored = rescore_interaction(&dataset.instance, scores);
        assert_eq!(rescored.num_users(), dataset.instance.num_users());
        assert_eq!(rescored.num_events(), dataset.instance.num_events());
        for u in 0..rescored.num_users() {
            assert!((rescored.interaction(igepa_core::UserId::new(u)) - 0.5).abs() < 1e-12);
        }
    }
}
