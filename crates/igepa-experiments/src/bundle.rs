//! Machine-readable results bundle.
//!
//! The CLI prints markdown and writes per-artefact CSV files; this module
//! additionally collects a whole run — tables, sweeps and shape checks —
//! into one serde-serialisable value so downstream tooling (plot scripts,
//! regression dashboards, the EXPERIMENTS.md generator) can consume a single
//! JSON document instead of scraping the console output.

use crate::report::{SweepReport, TableReport};
use crate::shape::ShapeReport;
use serde::{Deserialize, Serialize};

/// A complete set of experiment outputs from one harness invocation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultsBundle {
    /// Free-form description of the settings behind the run (repetitions,
    /// scale, backend, seed).
    pub settings: String,
    /// Table-style comparisons (Table I, Table II, ablation tables, …).
    pub tables: Vec<TableReport>,
    /// Sweep-style series (Fig. 1 subfigures, α/β sweeps, scalability).
    pub sweeps: Vec<SweepReport>,
    /// Qualitative shape checks evaluated on the reports above.
    pub shape: ShapeReport,
}

impl ResultsBundle {
    /// Creates an empty bundle tagged with a settings description.
    pub fn new(settings: impl Into<String>) -> Self {
        ResultsBundle {
            settings: settings.into(),
            ..Self::default()
        }
    }

    /// Adds a table report.
    pub fn push_table(&mut self, table: TableReport) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Adds a sweep report.
    pub fn push_sweep(&mut self, sweep: SweepReport) -> &mut Self {
        self.sweeps.push(sweep);
        self
    }

    /// Looks up a table by its id.
    pub fn table(&self, id: &str) -> Option<&TableReport> {
        self.tables.iter().find(|t| t.id == id)
    }

    /// Looks up a sweep by its id.
    pub fn sweep(&self, id: &str) -> Option<&SweepReport> {
        self.sweeps.iter().find(|s| s.id == id)
    }

    /// Serialises the bundle to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("results bundle serialisation cannot fail")
    }

    /// Parses a bundle from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::AlgorithmResult;

    fn sample_table(id: &str) -> TableReport {
        TableReport {
            id: id.to_string(),
            description: "sample".to_string(),
            results: vec![AlgorithmResult::from_runs(
                "LP-packing",
                &[1.0, 2.0],
                &[0.1, 0.2],
            )],
        }
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let mut bundle = ResultsBundle::new("reps=2 scale=1.0");
        bundle.push_table(sample_table("table1"));
        bundle.push_sweep(SweepReport {
            id: "fig1a".to_string(),
            factor_name: "|V|".to_string(),
            points: vec![],
        });
        let restored = ResultsBundle::from_json(&bundle.to_json()).unwrap();
        assert_eq!(restored, bundle);
        assert!(restored.table("table1").is_some());
        assert!(restored.table("missing").is_none());
        assert!(restored.sweep("fig1a").is_some());
        assert!(restored.sweep("fig1b").is_none());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ResultsBundle::from_json("{not json").is_err());
    }

    #[test]
    fn new_records_the_settings_description() {
        let bundle = ResultsBundle::new("paper reps");
        assert_eq!(bundle.settings, "paper reps");
        assert!(bundle.tables.is_empty());
        assert!(bundle.shape.checks.is_empty());
    }
}
