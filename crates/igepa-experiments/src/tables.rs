//! Table I (default synthetic setting) and Table II (Meetup-SF) reproductions.

use crate::report::TableReport;
use crate::settings::ExperimentSettings;
use igepa_core::InstanceStats;
use igepa_datagen::{generate_meetup, generate_synthetic, MeetupConfig, SyntheticConfig};

/// Runs the four algorithms on the Table I default synthetic setting.
pub fn run_table1(settings: &ExperimentSettings) -> TableReport {
    let config = settings.scale_config(&SyntheticConfig::paper_default());
    let results = settings
        .compare_on(|rep| generate_synthetic(&config, settings.base_seed.wrapping_add(rep as u64)));
    TableReport {
        id: "table1".to_string(),
        description: format!(
            "synthetic default setting (|V|={}, |U|={}, max c_v={}, max c_u={}, pcf={}, pdeg={}, beta={})",
            config.num_events,
            config.num_users,
            config.max_event_capacity,
            config.max_user_capacity,
            config.p_conflict,
            config.p_friend,
            config.beta
        ),
        results,
    }
}

/// Runs the four algorithms on the Meetup-SF simulator (Table II).
///
/// The paper reports a single utility number per algorithm on its (fixed)
/// crawl; the simulator regenerates a dataset per repetition and reports the
/// mean, which plays the same role while averaging out simulator noise.
pub fn run_table2(settings: &ExperimentSettings) -> TableReport {
    let mut config = MeetupConfig::paper_default();
    if settings.scale < 1.0 {
        config.num_events = ((config.num_events as f64 * settings.scale).round() as usize).max(5);
        config.num_users = ((config.num_users as f64 * settings.scale).round() as usize).max(20);
    }
    let results = settings
        .compare_on(|rep| generate_meetup(&config, settings.base_seed.wrapping_add(rep as u64)));
    TableReport {
        id: "table2".to_string(),
        description: format!(
            "Meetup-SF simulator ({} events, {} users, time-overlap conflicts, group-overlap social network)",
            config.num_events, config.num_users
        ),
        results,
    }
}

/// Reports the workload statistics of the Table I default instance — a
/// sanity check that the generator matches the paper's description.
pub fn table1_workload_stats(settings: &ExperimentSettings) -> InstanceStats {
    let config = settings.scale_config(&SyntheticConfig::paper_default());
    let instance = generate_synthetic(&config, settings.base_seed);
    InstanceStats::of(&instance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentSettings {
        ExperimentSettings {
            repetitions: 1,
            scale: 0.05,
            ..ExperimentSettings::quick()
        }
    }

    #[test]
    fn table1_report_has_the_paper_roster() {
        let report = run_table1(&quick());
        assert_eq!(report.id, "table1");
        let names: Vec<&str> = report
            .results
            .iter()
            .map(|r| r.algorithm.as_str())
            .collect();
        assert_eq!(names, vec!["LP-packing", "GG", "Random-U", "Random-V"]);
        assert!(report.to_markdown().contains("LP-packing"));
    }

    #[test]
    fn table2_report_uses_the_meetup_simulator() {
        let report = run_table2(&quick());
        assert_eq!(report.id, "table2");
        assert!(report.description.contains("Meetup-SF"));
        assert_eq!(report.results.len(), 4);
        for r in &report.results {
            assert!(r.mean_utility > 0.0, "{} scored zero", r.algorithm);
        }
    }

    #[test]
    fn workload_stats_reflect_scaled_config() {
        let stats = table1_workload_stats(&quick());
        assert_eq!(stats.num_events, 10); // 200 × 0.05
        assert_eq!(stats.num_users, 100); // 2000 × 0.05
        assert!(stats.conflict_density > 0.0);
    }
}
