//! Serving study (extension): the incremental engine under an arrival
//! trace.
//!
//! The paper solves one frozen instance; a deployed arrangement service
//! faces a stream of mutations. This scenario generates a Meetup-style
//! delta trace against a Table I base instance, replays it through the
//! `igepa-engine` warm-start repair loop, and reports:
//!
//! * per-delta latency percentiles of the serving engine;
//! * the same trace served by *cold re-solving after every delta* (the
//!   naive baseline), to quantify the speedup;
//! * the utility ratio of the served arrangement against a cold solve of
//!   the final instance — the quality price of incremental serving.

use crate::settings::ExperimentSettings;
use igepa_algos::{ArrangementAlgorithm, GreedyArrangement};
use igepa_core::{ConstantInterest, Instance, LocalityPartitioner, NeverConflict};
use igepa_datagen::{
    generate_clustered_dataset, generate_community_trace, generate_synthetic, generate_trace,
    ClusteredConfig, CommunityTraceConfig, SyntheticConfig, TraceConfig,
};
use igepa_engine::{
    recover, replay, AdmissionPolicy, ClientError, DurabilityController, DurabilityPolicy, Engine,
    EngineClient, EngineConfig, EngineError, EngineQuery, EngineRequest, EngineResponse,
    EngineServer, FaultInjector, FaultPlan, Framing, LatencySummary, MigrationRecord, Recovered,
    RecoveryError, ShardedConfig, ShardedEngine,
};
use serde::{Deserialize, Serialize};
use std::net::TcpListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Result of the serving study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Deltas replayed.
    pub num_deltas: usize,
    /// Users / events of the base instance.
    pub base_users: usize,
    /// Events of the base instance.
    pub base_events: usize,
    /// Users / events after the full trace.
    pub final_users: usize,
    /// Events after the full trace.
    pub final_events: usize,
    /// Per-delta latency of the warm-start engine (µs).
    pub warm_latency: LatencySummary,
    /// Per-delta latency of the cold re-solve baseline (µs).
    pub cold_latency: LatencySummary,
    /// Mean cold latency over mean warm latency (the serving speedup).
    pub speedup: f64,
    /// Final served utility relative to a cold solve of the final
    /// instance.
    pub utility_ratio: f64,
    /// Greedy patches run by the engine.
    pub greedy_patches: u64,
    /// Full re-solves (escalations) run by the engine.
    pub full_resolves: u64,
    /// Staleness-triggered adoptions of a cold solution.
    pub staleness_resolves: u64,
}

impl ServeReport {
    /// Renders the report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("## Serving study: warm-start engine vs cold re-solve\n\n");
        out.push_str(&format!(
            "Base instance: {} events x {} users; after {} deltas: {} events x {} users.\n\n",
            self.base_events, self.base_users, self.num_deltas, self.final_events, self.final_users
        ));
        out.push_str("| Strategy | mean (µs) | p50 (µs) | p95 (µs) | p99 (µs) | max (µs) |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        let row = |name: &str, l: &LatencySummary| {
            format!(
                "| {name} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
                l.mean_us, l.p50_us, l.p95_us, l.p99_us, l.max_us
            )
        };
        out.push_str(&row("warm-start engine", &self.warm_latency));
        out.push_str(&row("cold re-solve", &self.cold_latency));
        out.push_str(&format!(
            "\nSpeedup (mean cold / mean warm): **{:.1}x**. Final utility: **{:.1}%** of a cold solve of the final instance.\n",
            self.speedup,
            self.utility_ratio * 100.0
        ));
        out.push_str(&format!(
            "Repairs: {} greedy patches, {} escalations, {} staleness adoptions.\n",
            self.greedy_patches, self.full_resolves, self.staleness_resolves
        ));
        out
    }
}

/// Builds the serving engine used by the study (and by the benches, so the
/// two measure the same configuration).
pub fn serving_engine(instance: Instance, seed: u64) -> Engine {
    Engine::new(
        instance,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        EngineConfig {
            seed,
            staleness_check_interval: 128,
            max_staleness: 0.05,
            ..EngineConfig::default()
        },
    )
}

/// Runs the serving study: replays `num_deltas` generated deltas through
/// the warm engine and through per-delta cold re-solving.
pub fn run_serve_study(settings: &ExperimentSettings, num_deltas: usize) -> ServeReport {
    let config = settings.scale_config(&SyntheticConfig::small());
    let base = generate_synthetic(&config, settings.base_seed);
    let trace = generate_trace(
        &base,
        &TraceConfig {
            num_deltas,
            ..TraceConfig::default()
        },
        settings.base_seed + 1,
    );
    let requests: Vec<EngineRequest> = trace
        .deltas
        .iter()
        .map(|t| EngineRequest::Apply {
            delta: t.delta.clone(),
        })
        .collect();

    // Warm-start serving path.
    let mut engine = serving_engine(base.clone(), settings.base_seed);
    let outcome = replay(&mut engine, &requests);
    assert_eq!(
        outcome.report.rejected, 0,
        "generated trace must replay cleanly"
    );
    assert!(engine.arrangement().is_feasible(engine.instance()));
    let utility_ratio = engine.cold_solve_ratio();

    // Cold baseline: apply the same deltas to a bare instance and re-solve
    // from scratch after every one.
    let mut cold_instance = base.clone();
    let solver = GreedyArrangement;
    let mut cold_latencies = Vec::with_capacity(trace.len());
    for (i, timed) in trace.deltas.iter().enumerate() {
        let start = Instant::now();
        cold_instance
            .apply_delta(&timed.delta, &NeverConflict, &ConstantInterest(0.5))
            .expect("trace deltas are valid");
        let arrangement = solver.run_seeded(&cold_instance, settings.base_seed + i as u64);
        std::hint::black_box(&arrangement);
        cold_latencies.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let cold_latency = LatencySummary::from_latencies(cold_latencies);

    let warm_latency = outcome.report.latency;
    let stats = *engine.stats();
    ServeReport {
        num_deltas,
        base_users: base.num_users(),
        base_events: base.num_events(),
        final_users: engine.instance().num_users(),
        final_events: engine.instance().num_events(),
        warm_latency,
        cold_latency,
        speedup: if warm_latency.mean_us > 0.0 {
            cold_latency.mean_us / warm_latency.mean_us
        } else {
            f64::INFINITY
        },
        utility_ratio,
        greedy_patches: stats.greedy_patches,
        full_resolves: stats.full_resolves,
        staleness_resolves: stats.staleness_resolves,
    }
}

/// Result of the sharded serving study: the same multi-community trace
/// replayed through a monolithic engine and through N shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedServeReport {
    /// Shards of the partitioned engine.
    pub shards: usize,
    /// Deltas replayed through both engines.
    pub num_deltas: usize,
    /// Events / users of the community-structured base instance.
    pub base_events: usize,
    /// Users of the base instance.
    pub base_users: usize,
    /// Users after the full trace.
    pub final_users: usize,
    /// Per-delta latency of the monolithic engine (µs).
    pub mono_latency: LatencySummary,
    /// Per-delta latency of the sharded engine (µs).
    pub sharded_latency: LatencySummary,
    /// Mean monolithic latency over mean sharded latency.
    pub speedup: f64,
    /// Final utility served by the monolithic engine.
    pub mono_utility: f64,
    /// Final merged utility served by the sharded engine.
    pub sharded_utility: f64,
    /// `sharded_utility / mono_utility` — the quality price of sharding.
    pub utility_ratio: f64,
    /// Whether the merged arrangement is feasible for the full instance.
    pub merged_feasible: bool,
    /// Events whose bidders span shards at the end of the run.
    pub boundary_events: usize,
    /// Reconciliation passes the coordinator ran.
    pub reconcile_passes: u64,
    /// Capacity units the reconciler moved between shards.
    pub quota_moved: u64,
    /// Pairs served per shard at the end of the run.
    pub pairs_per_shard: Vec<usize>,
}

impl ShardedServeReport {
    /// Renders the report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## Sharded serving study: {} shards vs monolithic\n\n",
            self.shards
        ));
        out.push_str(&format!(
            "Base instance: {} events x {} users; {} deltas of a multi-community trace; {} users at the end.\n\n",
            self.base_events, self.base_users, self.num_deltas, self.final_users
        ));
        out.push_str("| Engine | mean (µs) | p50 (µs) | p95 (µs) | p99 (µs) | max (µs) |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        let row = |name: &str, l: &LatencySummary| {
            format!(
                "| {name} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
                l.mean_us, l.p50_us, l.p95_us, l.p99_us, l.max_us
            )
        };
        out.push_str(&row("monolithic", &self.mono_latency));
        out.push_str(&row(
            &format!("{} shards", self.shards),
            &self.sharded_latency,
        ));
        out.push_str(&format!(
            "\nPer-delta speedup (mean mono / mean sharded): **{:.2}x**. \
             Merged utility: **{:.1}%** of the monolithic engine's ({}).\n",
            self.speedup,
            self.utility_ratio * 100.0,
            if self.merged_feasible {
                "feasible"
            } else {
                "INFEASIBLE"
            }
        ));
        out.push_str(&format!(
            "Boundary: {} events span shards; {} reconcile passes moved {} capacity units. Pairs per shard: {:?}.\n",
            self.boundary_events, self.reconcile_passes, self.quota_moved, self.pairs_per_shard
        ));
        out
    }
}

/// Scales the clustered base configuration like
/// [`ExperimentSettings::scale_config`] does for the synthetic one.
fn scaled_clustered(settings: &ExperimentSettings) -> ClusteredConfig {
    let scale = settings.scale.max(0.01);
    let base = ClusteredConfig::default();
    ClusteredConfig {
        num_events: ((base.num_events as f64 * scale).round() as usize).max(8),
        num_users: ((base.num_users as f64 * scale).round() as usize).max(24),
        ..base
    }
}

/// Builds the sharded engine used by the study and the benches: locality
/// partitioning over the conflict graph, periodic reconciliation, and the
/// same repair knobs as [`serving_engine`].
pub fn sharded_serving_engine(
    instance: Instance,
    seed: u64,
    shards: usize,
    repair_threads: usize,
) -> ShardedEngine {
    sharded_serving_engine_with_admission(
        instance,
        seed,
        shards,
        repair_threads,
        AdmissionPolicy::Unbounded,
    )
}

/// [`sharded_serving_engine`] with an explicit admission policy — the
/// overload-study and benchmark entry point for a server that sheds
/// instead of queueing without bound.
pub fn sharded_serving_engine_with_admission(
    instance: Instance,
    seed: u64,
    shards: usize,
    repair_threads: usize,
    admission: AdmissionPolicy,
) -> ShardedEngine {
    let partitioner = LocalityPartitioner::from_instance(&instance, shards);
    ShardedEngine::new(
        instance,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(partitioner),
        ShardedConfig {
            num_shards: shards,
            shard: EngineConfig {
                seed,
                staleness_check_interval: 128,
                max_staleness: 0.05,
                repair_threads: repair_threads.max(1),
                admission,
                ..EngineConfig::default()
            },
            reconcile_interval: 64,
            reconcile_rounds: 3,
        },
    )
}

/// Runs the sharded serving study: replays one multi-community trace
/// through a monolithic engine and an N-shard engine and compares
/// latency, utility and the merged arrangement's feasibility.
pub fn run_sharded_serve_study(
    settings: &ExperimentSettings,
    num_deltas: usize,
    shards: usize,
    repair_threads: usize,
    churn: bool,
) -> ShardedServeReport {
    let dataset = generate_clustered_dataset(&scaled_clustered(settings), settings.base_seed);
    let base = dataset.instance.clone();
    let trace = generate_community_trace(
        &base,
        &dataset.event_communities,
        &trace_mix(num_deltas, shards.max(1), churn),
        settings.base_seed + 1,
    );
    let requests: Vec<EngineRequest> = trace
        .deltas
        .iter()
        .map(|t| EngineRequest::Apply {
            delta: t.delta.clone(),
        })
        .collect();

    // Monolithic path.
    let mut mono = serving_engine(base.clone(), settings.base_seed);
    let mono_outcome = replay(&mut mono, &requests);
    assert_eq!(
        mono_outcome.report.rejected, 0,
        "community trace must replay cleanly"
    );
    let mono_utility = mono.utility();

    // Sharded path.
    let mut sharded = sharded_serving_engine(base, settings.base_seed, shards, repair_threads);
    let sharded_outcome = replay(&mut sharded, &requests);
    assert_eq!(sharded_outcome.report.rejected, 0);
    // One final reconciliation so stranded quota does not linger past the
    // end of the trace.
    let final_report = sharded.rebalance();
    let merged = sharded.merged_arrangement();
    let merged_feasible = merged.is_feasible(sharded.instance());
    let sharded_utility = merged.utility_value(sharded.instance());

    let mono_latency = mono_outcome.report.latency;
    let sharded_latency = sharded_outcome.report.latency;
    ShardedServeReport {
        shards: sharded.num_shards(),
        num_deltas,
        base_events: dataset.instance.num_events(),
        base_users: dataset.instance.num_users(),
        final_users: sharded.instance().num_users(),
        mono_latency,
        sharded_latency,
        speedup: if sharded_latency.mean_us > 0.0 {
            mono_latency.mean_us / sharded_latency.mean_us
        } else {
            f64::INFINITY
        },
        mono_utility,
        sharded_utility,
        utility_ratio: if mono_utility > 0.0 {
            sharded_utility / mono_utility
        } else {
            1.0
        },
        merged_feasible,
        boundary_events: final_report.boundary_events,
        reconcile_passes: sharded.coordinator_stats().reconcile_passes,
        quota_moved: sharded.coordinator_stats().quota_moved,
        pairs_per_shard: (0..sharded.num_shards())
            .map(|k| sharded.shard(k).arrangement().len())
            .collect(),
    }
}

/// Result of driving a delta trace through the TCP transport (loopback or
/// a remote server).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopbackReport {
    /// Shards the server ran (as requested; a remote server's actual
    /// count is whatever it was started with).
    pub shards: usize,
    /// Deltas driven through the client.
    pub num_deltas: usize,
    /// Deltas the server applied.
    pub applied: usize,
    /// Deltas the server rejected.
    pub rejected: usize,
    /// Client-observed round-trip latency per request (µs).
    pub rtt: LatencySummary,
    /// Utility after the final request (from the closing `Utility` query).
    pub final_utility: f64,
    /// Pairs served at the end (from the closing snapshot).
    pub final_pairs: usize,
    /// Whether the recovered server engine's merged arrangement is
    /// feasible — only checkable in loopback mode, where this process
    /// owns the server (`None` when driving a remote server).
    pub merged_feasible: Option<bool>,
}

impl LoopbackReport {
    /// Renders the report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## TCP serving smoke: {} deltas over loopback, {} shards\n\n",
            self.num_deltas, self.shards
        ));
        out.push_str(&format!(
            "Applied {} / rejected {}; final utility {:.3} over {} pairs; merged arrangement: {}.\n\n",
            self.applied,
            self.rejected,
            self.final_utility,
            self.final_pairs,
            match self.merged_feasible {
                Some(true) => "feasible",
                Some(false) => "INFEASIBLE",
                None => "not checked (remote server)",
            }
        ));
        out.push_str("| RTT | mean (µs) | p50 (µs) | p95 (µs) | p99 (µs) | max (µs) |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        out.push_str(&format!(
            "| per request | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
            self.rtt.mean_us, self.rtt.p50_us, self.rtt.p95_us, self.rtt.p99_us, self.rtt.max_us
        ));
        out
    }
}

/// The community trace both TCP entry points drive, derived from the same
/// settings on the server and client side so remote runs replay cleanly.
/// The delta mix driven through the serving studies: the
/// partition-friendly workload where sharding shines, or — with `churn`
/// — the announcement-heavy mix that historically diluted it (every
/// event-scoped delta broadcasts; the shared catalogue absorbs them with
/// one publish).
fn trace_mix(num_deltas: usize, num_communities: usize, churn: bool) -> CommunityTraceConfig {
    if churn {
        CommunityTraceConfig::announcement_heavy(num_deltas, num_communities)
    } else {
        CommunityTraceConfig::partition_friendly(num_deltas, num_communities)
    }
}

fn tcp_trace(
    settings: &ExperimentSettings,
    num_deltas: usize,
    shards: usize,
    churn: bool,
) -> Vec<EngineRequest> {
    let dataset = generate_clustered_dataset(&scaled_clustered(settings), settings.base_seed);
    let trace = generate_community_trace(
        &dataset.instance,
        &dataset.event_communities,
        &trace_mix(num_deltas, shards.max(1), churn),
        settings.base_seed + 1,
    );
    trace
        .deltas
        .iter()
        .map(|t| EngineRequest::Apply {
            delta: t.delta.clone(),
        })
        .collect()
}

/// Drives the trace and a closing `Rebalance` / `Utility` /
/// `MergedSnapshot` sequence through a connected client.
fn drive_client(
    client: &mut EngineClient,
    requests: &[EngineRequest],
) -> Result<(usize, usize, LatencySummary, f64, usize), ClientError> {
    let mut applied = 0usize;
    let mut rejected = 0usize;
    let mut rtts = Vec::with_capacity(requests.len());
    for request in requests {
        let start = Instant::now();
        match client.call(request.clone()) {
            Ok(EngineResponse::Applied { .. }) => applied += 1,
            Ok(_) => {}
            Err(ClientError::Engine(_)) => rejected += 1,
            Err(e) => return Err(e),
        }
        rtts.push(start.elapsed().as_secs_f64() * 1e6);
    }
    client.call(EngineRequest::Rebalance)?;
    let final_utility = match client.query(EngineQuery::Utility)? {
        EngineResponse::Utility { total, .. } => total,
        other => panic!("Utility query answered {other:?}"),
    };
    let final_pairs = match client.query(EngineQuery::MergedSnapshot)? {
        EngineResponse::Snapshot { pairs, .. } => pairs.len(),
        other => panic!("MergedSnapshot query answered {other:?}"),
    };
    Ok((
        applied,
        rejected,
        LatencySummary::from_latencies(rtts),
        final_utility,
        final_pairs,
    ))
}

/// Builds the sharded engine a TCP server fronts, from the same settings
/// the client derives its trace from.
pub fn tcp_server_engine(
    settings: &ExperimentSettings,
    shards: usize,
    repair_threads: usize,
) -> ShardedEngine {
    let dataset = generate_clustered_dataset(&scaled_clustered(settings), settings.base_seed);
    sharded_serving_engine(dataset.instance, settings.base_seed, shards, repair_threads)
}

/// Loopback smoke: start a per-shard-worker TCP server on `listen_addr`
/// (use `127.0.0.1:0` for an ephemeral port), drive `num_deltas` through
/// a blocking [`EngineClient`], shut the server down cleanly and verify
/// the recovered engine's merged arrangement is feasible.
pub fn run_loopback_study(
    settings: &ExperimentSettings,
    listen_addr: &str,
    num_deltas: usize,
    shards: usize,
    repair_threads: usize,
    churn: bool,
) -> LoopbackReport {
    let requests = tcp_trace(settings, num_deltas, shards, churn);
    let listener = TcpListener::bind(listen_addr).expect("listen address binds");
    let handle = EngineServer::serve_sharded(
        listener,
        tcp_server_engine(settings, shards, repair_threads),
        Framing::Lines,
    )
    .expect("server spawns");
    eprintln!("loopback server listening on {}", handle.local_addr());

    let mut client =
        EngineClient::connect(handle.local_addr(), Framing::Lines).expect("client connects");
    let (applied, rejected, rtt, final_utility, final_pairs) =
        drive_client(&mut client, &requests).expect("transport stays up");
    drop(client);

    let engine = handle.shutdown().expect("clean server shutdown");
    let merged_feasible = engine.merged_arrangement().is_feasible(engine.instance());
    LoopbackReport {
        shards,
        num_deltas,
        applied,
        rejected,
        rtt,
        final_utility,
        final_pairs,
        merged_feasible: Some(merged_feasible),
    }
}

/// Client-only variant of the smoke: drive the trace against a server
/// started elsewhere (`igepa-experiments serve --listen ADDR`).
pub fn run_connect_study(
    settings: &ExperimentSettings,
    connect_addr: &str,
    num_deltas: usize,
    shards: usize,
    churn: bool,
) -> LoopbackReport {
    let requests = tcp_trace(settings, num_deltas, shards, churn);
    let mut client = EngineClient::connect(connect_addr, Framing::Lines).expect("server reachable");
    let (applied, rejected, rtt, final_utility, final_pairs) =
        drive_client(&mut client, &requests).expect("transport stays up");
    LoopbackReport {
        shards,
        num_deltas,
        applied,
        rejected,
        rtt,
        final_utility,
        final_pairs,
        merged_feasible: None,
    }
}

/// Result of the elastic-serving smoke: the community trace driven over
/// loopback with a live `Reshard` issued mid-trace while the server
/// keeps answering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowReport {
    /// Shards the server started with.
    pub start_shards: usize,
    /// Shard count requested mid-trace.
    pub grow_to: usize,
    /// Delta index the reshard was issued at.
    pub grow_at: usize,
    /// Deltas driven through the client.
    pub num_deltas: usize,
    /// Deltas the server applied.
    pub applied: usize,
    /// Deltas the server rejected — the headline number; must be zero.
    pub rejected: usize,
    /// Client-observed round-trip latency per delta (µs).
    pub rtt: LatencySummary,
    /// What the migration did, from the server's `Resharded` answer.
    pub migration: MigrationRecord,
    /// Client-observed round trip of the `Reshard` request itself (µs)
    /// — the serving pause the migration cost.
    pub migration_pause_us: f64,
    /// Sum of per-shard `moved_in` counters after the grow.
    pub moved_in_total: u64,
    /// Sum of per-shard `moved_out` counters after the grow.
    pub moved_out_total: u64,
    /// Utility after the final request.
    pub final_utility: f64,
    /// Pairs served at the end.
    pub final_pairs: usize,
    /// Shards answering at the end (from the closing `ShardStats`).
    pub final_shards: usize,
    /// Whether the recovered server engine's merged arrangement is
    /// feasible (checked server-side after shutdown).
    pub merged_feasible: bool,
}

impl GrowReport {
    /// The elastic-serving contract, checked: zero rejections across
    /// the whole trace, the grow took effect, the per-shard migration
    /// counters balance the migration record, and the exit state is
    /// feasible.
    pub fn passed(&self) -> bool {
        self.rejected == 0
            && self.merged_feasible
            && self.final_shards == self.grow_to
            && self.migration.from_shards == self.start_shards
            && self.migration.to_shards == self.grow_to
            && self.moved_in_total == self.migration.moved_users
            && self.moved_in_total == self.moved_out_total
    }

    /// Renders the report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## Elastic serving smoke: {} -> {} shards at delta {} of {}\n\n",
            self.start_shards, self.grow_to, self.grow_at, self.num_deltas
        ));
        out.push_str(&format!(
            "Applied {} / rejected {}; migration moved {} user(s) and {} capacity unit(s) \
             in {:.1} µs (catalogue epoch {}); per-shard counters: {} in / {} out.\n\n",
            self.applied,
            self.rejected,
            self.migration.moved_users,
            self.migration.quota_moved,
            self.migration_pause_us,
            self.migration.catalog_epoch,
            self.moved_in_total,
            self.moved_out_total,
        ));
        out.push_str(&format!(
            "Final state: utility {:.3} over {} pairs on {} shards; merged arrangement: {}.\n\n",
            self.final_utility,
            self.final_pairs,
            self.final_shards,
            if self.merged_feasible {
                "feasible"
            } else {
                "INFEASIBLE"
            }
        ));
        out.push_str("| RTT | mean (µs) | p50 (µs) | p95 (µs) | p99 (µs) | max (µs) |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        out.push_str(&format!(
            "| per delta | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
            self.rtt.mean_us, self.rtt.p50_us, self.rtt.p95_us, self.rtt.p99_us, self.rtt.max_us
        ));
        out
    }
}

/// Sends one `Reshard` through a connected client and returns the
/// migration record plus the client-observed pause in microseconds.
fn reshard_over(
    client: &mut EngineClient,
    num_shards: usize,
) -> Result<(MigrationRecord, f64), ClientError> {
    let start = Instant::now();
    match client.call(EngineRequest::Reshard { num_shards })? {
        EngineResponse::Resharded { record, .. } => {
            Ok((record, start.elapsed().as_secs_f64() * 1e6))
        }
        other => panic!("Reshard answered {other:?}"),
    }
}

/// Elastic-serving smoke: start a loopback server on `shards` shards,
/// drive the community trace, and at delta `grow_at` issue a live
/// `Reshard { grow_to }` — the migration must not reject a single
/// request, the per-shard migration counters must balance, and the
/// server must exit feasible on the new shard count.
#[allow(clippy::too_many_arguments)]
pub fn run_grow_study(
    settings: &ExperimentSettings,
    listen_addr: &str,
    num_deltas: usize,
    shards: usize,
    grow_to: usize,
    grow_at: usize,
    repair_threads: usize,
    churn: bool,
) -> GrowReport {
    let requests = tcp_trace(settings, num_deltas, shards, churn);
    let grow_at = grow_at.min(requests.len().saturating_sub(1));
    let listener = TcpListener::bind(listen_addr).expect("listen address binds");
    let handle = EngineServer::serve_sharded(
        listener,
        tcp_server_engine(settings, shards, repair_threads),
        Framing::Lines,
    )
    .expect("server spawns");
    eprintln!("elastic smoke server listening on {}", handle.local_addr());
    let mut client =
        EngineClient::connect(handle.local_addr(), Framing::Lines).expect("client connects");

    let mut applied = 0usize;
    let mut rejected = 0usize;
    let mut rtts = Vec::with_capacity(requests.len());
    let mut migration = None;
    let mut migration_pause_us = 0.0;
    for (i, request) in requests.iter().enumerate() {
        if i == grow_at {
            let (record, pause) = reshard_over(&mut client, grow_to).expect("transport stays up");
            migration = Some(record);
            migration_pause_us = pause;
        }
        let start = Instant::now();
        match client.call(request.clone()) {
            Ok(EngineResponse::Applied { .. }) => applied += 1,
            Ok(_) => {}
            Err(ClientError::Engine(_)) => rejected += 1,
            Err(e) => panic!("transport failed mid-trace: {e}"),
        }
        rtts.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let migration = migration.expect("grow_at is clamped inside the trace");

    client
        .call(EngineRequest::Rebalance)
        .expect("transport stays up");
    let (moved_in_total, moved_out_total, final_shards) =
        match client.query(EngineQuery::ShardStats).expect("stats answer") {
            EngineResponse::ShardStats { shards } => (
                shards.iter().map(|s| s.moved_in).sum::<u64>(),
                shards.iter().map(|s| s.moved_out).sum::<u64>(),
                shards.len(),
            ),
            other => panic!("ShardStats query answered {other:?}"),
        };
    let final_utility = match client.query(EngineQuery::Utility).expect("utility answer") {
        EngineResponse::Utility { total, .. } => total,
        other => panic!("Utility query answered {other:?}"),
    };
    let final_pairs = match client
        .query(EngineQuery::MergedSnapshot)
        .expect("snapshot answer")
    {
        EngineResponse::Snapshot { pairs, .. } => pairs.len(),
        other => panic!("MergedSnapshot query answered {other:?}"),
    };
    drop(client);

    let engine = handle.shutdown().expect("clean server shutdown");
    let merged_feasible = engine.merged_arrangement().is_feasible(engine.instance());
    GrowReport {
        start_shards: shards,
        grow_to,
        grow_at,
        num_deltas: requests.len(),
        applied,
        rejected,
        rtt: LatencySummary::from_latencies(rtts),
        migration,
        migration_pause_us,
        moved_in_total,
        moved_out_total,
        final_utility,
        final_pairs,
        final_shards,
        merged_feasible,
    }
}

/// The `reshard` command: connect to a running `serve --listen` server
/// and issue one live `Reshard { num_shards }`, printing what moved.
pub fn run_reshard_command(connect_addr: &str, num_shards: usize) -> MigrationRecord {
    let mut client = EngineClient::connect(connect_addr, Framing::Lines).expect("server reachable");
    let (record, pause) = reshard_over(&mut client, num_shards).expect("transport stays up");
    println!(
        "resharded {} -> {} shards: {} user(s) and {} capacity unit(s) moved \
         in {:.1} µs at catalogue epoch {}",
        record.from_shards,
        record.to_shards,
        record.moved_users,
        record.quota_moved,
        pause,
        record.catalog_epoch
    );
    record
}

/// Result of the overload study: a multi-client loopback flood against
/// a bounded-admission, fault-injected server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadReport {
    /// Shards the server ran.
    pub shards: usize,
    /// Admission cap in force (`AdmissionPolicy::bounded(cap)`).
    pub admission_cap: usize,
    /// The fault plan driven during the flood.
    pub fault_plan: String,
    /// Mutations the flooders put on the wire.
    pub num_requests: usize,
    /// Mutations acknowledged as applied.
    pub applied: usize,
    /// Typed `Overloaded` refusals observed client-side.
    pub shed: usize,
    /// Other typed engine rejections (out-of-range probes etc.).
    pub rejected: usize,
    /// Cached reads a concurrent connection got answered mid-flood.
    pub reads_answered: usize,
    /// Reader failures — must stay zero: reads keep flowing under shed.
    pub reader_errors: usize,
    /// Applies the injector slowed down.
    pub slow_applies: u64,
    /// View shipments the injector dropped (recovered via barrier).
    pub dropped_views: u64,
    /// Whether the final merged arrangement is feasible.
    pub merged_feasible: bool,
}

impl OverloadReport {
    /// The degradation contract, checked: the server shed (the study is
    /// vacuous otherwise), every request got exactly one typed
    /// response, reads never failed, and the exit state is feasible.
    pub fn passed(&self) -> bool {
        self.merged_feasible
            && self.shed > 0
            && self.reader_errors == 0
            && self.applied + self.shed + self.rejected == self.num_requests
    }

    /// Renders the report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## Overload study: {} mutations vs cap {} on {} shards\n\n",
            self.num_requests, self.admission_cap, self.shards
        ));
        out.push_str(&format!("Fault plan: `{}`\n\n", self.fault_plan));
        out.push_str(&format!(
            "Applied {} / shed {} / rejected {}; reader answered {} cached reads \
             ({} errors); injector slowed {} applies, dropped {} views; \
             merged arrangement: {}.\n",
            self.applied,
            self.shed,
            self.rejected,
            self.reads_answered,
            self.reader_errors,
            self.slow_applies,
            self.dropped_views,
            if self.merged_feasible {
                "feasible"
            } else {
                "INFEASIBLE"
            }
        ));
        out
    }
}

/// Overload study: flood a `bounded(cap)` 4-flooder loopback server —
/// each flooder pipelining its slice of a community trace at a deep
/// window — while a dedicated connection reads `Utility` from the
/// barrier-free cache the whole time. The fault plan (typically slowed
/// applies) keeps the dispatch queue backed up so the admission gate
/// actually sheds; every refusal must be typed, the reader must never
/// starve, and the server must exit feasible.
pub fn run_overload_study(
    settings: &ExperimentSettings,
    num_requests: usize,
    shards: usize,
    admission_cap: usize,
    fault_plan: FaultPlan,
) -> OverloadReport {
    let dataset = generate_clustered_dataset(&scaled_clustered(settings), settings.base_seed);
    let engine = sharded_serving_engine_with_admission(
        dataset.instance,
        settings.base_seed,
        shards,
        1,
        AdmissionPolicy::bounded(admission_cap),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback listener binds");
    let faults = Arc::new(FaultInjector::new(fault_plan));
    let handle = EngineServer::serve_sharded_faulted(
        listener,
        engine,
        Framing::Lines,
        None,
        Arc::clone(&faults),
    )
    .expect("server spawns");
    let addr = handle.local_addr();

    let requests = tcp_trace(settings, num_requests, shards, false);
    let num_requests = requests.len();
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = EngineClient::connect(addr, Framing::Lines).expect("reader connects");
            let mut answered = 0usize;
            let mut errors = 0usize;
            while !stop.load(Ordering::Relaxed) {
                match client.query(EngineQuery::Utility) {
                    Ok(EngineResponse::Utility { .. }) => answered += 1,
                    _ => errors += 1,
                }
            }
            (answered, errors)
        })
    };

    const FLOODERS: usize = 4;
    let chunk = num_requests.div_ceil(FLOODERS).max(1);
    let flooders: Vec<_> = requests
        .chunks(chunk)
        .map(|slice| {
            let slice = slice.to_vec();
            std::thread::spawn(move || {
                let mut client =
                    EngineClient::connect(addr, Framing::Lines).expect("flooder connects");
                client.set_pipeline_window(64);
                let mut applied = 0usize;
                let mut shed = 0usize;
                let mut rejected = 0usize;
                for result in client.pipeline(slice).expect("transport stays up") {
                    match result {
                        Ok(_) => applied += 1,
                        Err(EngineError::Overloaded { .. }) => shed += 1,
                        Err(_) => rejected += 1,
                    }
                }
                (applied, shed, rejected)
            })
        })
        .collect();

    let (mut applied, mut shed, mut rejected) = (0usize, 0usize, 0usize);
    for flooder in flooders {
        let (a, s, r) = flooder.join().expect("flooder thread completes");
        applied += a;
        shed += s;
        rejected += r;
    }
    stop.store(true, Ordering::Relaxed);
    let (reads_answered, reader_errors) = reader.join().expect("reader thread completes");

    let counts = faults.counts();
    let engine = handle.shutdown().expect("clean server shutdown");
    let merged_feasible = engine.merged_arrangement().is_feasible(engine.instance());
    OverloadReport {
        shards,
        admission_cap,
        fault_plan: format!("{:?}", faults.plan()),
        num_requests,
        applied,
        shed,
        rejected,
        reads_answered,
        reader_errors,
        slow_applies: counts.slow_applies,
        dropped_views: counts.dropped_views,
        merged_feasible,
    }
}

/// Parses a `--fsync` CLI value: `off`, `always`, `every=N`, or
/// `interval=MS`.
pub fn parse_fsync_policy(value: &str) -> Option<DurabilityPolicy> {
    match value {
        "off" => Some(DurabilityPolicy::Off),
        "always" => Some(DurabilityPolicy::Always),
        _ => {
            if let Some(n) = value.strip_prefix("every=") {
                n.parse().ok().map(|n| DurabilityPolicy::EveryN { n })
            } else if let Some(ms) = value.strip_prefix("interval=") {
                ms.parse()
                    .ok()
                    .map(|millis| DurabilityPolicy::Interval { millis })
            } else {
                None
            }
        }
    }
}

/// Recovers the TCP server's engine from a durability directory: newest
/// valid snapshot plus WAL-tail replay. The engine is rebuilt through
/// exactly the [`tcp_server_engine`] construction, so `settings` (seed,
/// scale) and `shards` must match the original `serve --wal` run — the
/// restored engine then continues bit-for-bit where the crashed one
/// stopped.
pub fn recover_served_engine(
    settings: &ExperimentSettings,
    dir: &Path,
    shards: usize,
) -> Result<Recovered, RecoveryError> {
    recover(
        dir,
        // The no-snapshot fallback replays from a fresh engine; the
        // snapshot path restores `repair_threads` from the checkpointed
        // ShardedConfig (and thread count never changes results anyway).
        || tcp_server_engine(settings, shards, 1),
        |state| {
            // The partitioner only places users registered after the
            // restore; rebuild it from the same deterministic dataset the
            // original server derived it from.
            let dataset =
                generate_clustered_dataset(&scaled_clustered(settings), settings.base_seed);
            let partitioner = LocalityPartitioner::from_instance(&dataset.instance, shards);
            ShardedEngine::restore_state(
                state,
                Box::new(NeverConflict),
                Box::new(ConstantInterest(0.5)),
                Box::new(GreedyArrangement),
                Box::new(partitioner),
            )
        },
    )
}

/// Result of the `recover <dir>` command: what the durability directory
/// contained and whether the rebuilt state passes its integrity checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverReport {
    /// Shards the engine was rebuilt with.
    pub shards: usize,
    /// WAL sequence covered by the snapshot restored from (`None`: no
    /// usable snapshot, full-log replay).
    pub snapshot_seq: Option<u64>,
    /// Invalid / partial snapshots skipped for an older valid one.
    pub skipped_snapshots: usize,
    /// WAL records found on disk.
    pub wal_records: usize,
    /// WAL records replayed past the snapshot.
    pub replayed: usize,
    /// Bytes of torn WAL tail truncated.
    pub truncated_bytes: u64,
    /// Torn trailing records dropped with them.
    pub truncated_records: u64,
    /// Sequence the next logged request would take on resume.
    pub next_seq: u64,
    /// Merged utility of the recovered arrangement.
    pub final_utility: f64,
    /// Pairs served by the recovered arrangement.
    pub final_pairs: usize,
    /// Whether the recovered merged arrangement is feasible.
    pub feasible: bool,
    /// Whether the recovered utility trackers match a from-scratch
    /// recompute bit for bit.
    pub utility_exact: bool,
}

impl RecoverReport {
    /// Renders the report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("## Recovery: snapshot restore + WAL-tail replay\n\n");
        out.push_str(&format!(
            "Snapshot: {}; {} WAL record(s) on disk, {} replayed, {} byte(s) of torn tail truncated ({} record(s)); next seq {}.\n\n",
            match self.snapshot_seq {
                Some(seq) => format!("restored at WAL seq {seq}"),
                None => "none (full-log replay)".to_string(),
            },
            self.wal_records,
            self.replayed,
            self.truncated_bytes,
            self.truncated_records,
            self.next_seq,
        ));
        out.push_str(&format!(
            "Recovered state: utility {:.6} over {} pairs, {} shards; feasibility {}; utility recompute {}.\n",
            self.final_utility,
            self.final_pairs,
            self.shards,
            if self.feasible { "OK" } else { "FAILED" },
            if self.utility_exact {
                "bit-exact"
            } else {
                "MISMATCH"
            }
        ));
        out
    }

    /// Whether every integrity check passed.
    pub fn passed(&self) -> bool {
        self.feasible && self.utility_exact
    }
}

/// Runs the `recover <dir>` command: rebuild the engine from the
/// durability directory and verify feasibility plus exact utility.
pub fn run_recover_study(
    settings: &ExperimentSettings,
    dir: &Path,
    shards: usize,
) -> Result<RecoverReport, RecoveryError> {
    let recovered = recover_served_engine(settings, dir, shards)?;
    let engine = recovered.engine;
    let report = recovered.report;
    let merged = engine.merged_arrangement();
    let feasible = merged.is_feasible(engine.instance());
    let recomputed = merged.utility_value(engine.instance());
    let tracked = engine.merged_utility().total;
    Ok(RecoverReport {
        shards: engine.num_shards(),
        snapshot_seq: report.snapshot_seq,
        skipped_snapshots: report.skipped_snapshots,
        wal_records: report.wal_records,
        replayed: report.replayed,
        truncated_bytes: report.truncated_bytes,
        truncated_records: report.truncated_records,
        next_seq: recovered.next_seq,
        final_utility: tracked,
        final_pairs: merged.len(),
        feasible,
        utility_exact: tracked.to_bits() == recomputed.to_bits(),
    })
}

/// Serves forever on `listen_addr` (for an external `--connect` client).
/// Prints the bound address, then parks the main thread.
///
/// With `wal`, the server runs durably: any state already in the
/// directory is recovered first (so a restart resumes where the crash
/// left off), and every mutating request is write-ahead-logged under the
/// given fsync policy before it is acknowledged.
pub fn run_listen(
    settings: &ExperimentSettings,
    listen_addr: &str,
    shards: usize,
    repair_threads: usize,
    wal: Option<(&Path, DurabilityPolicy)>,
) -> ! {
    let listener = TcpListener::bind(listen_addr).expect("listen address binds");
    println!(
        "igepa-engine: {} shards serving on {}{}",
        shards,
        listener.local_addr().expect("bound address"),
        match wal {
            Some((dir, policy)) => format!(" (durable: {} / fsync {policy:?})", dir.display()),
            None => String::new(),
        }
    );
    let _handle = match wal {
        None => EngineServer::serve_sharded(
            listener,
            tcp_server_engine(settings, shards, repair_threads),
            Framing::Lines,
        ),
        Some((dir, policy)) => {
            std::fs::create_dir_all(dir).expect("durability directory creatable");
            let recovered = recover_served_engine(settings, dir, shards)
                .unwrap_or_else(|e| panic!("cannot recover from {}: {e}", dir.display()));
            if recovered.report.wal_records > 0 || recovered.report.snapshot_seq.is_some() {
                eprintln!(
                    "igepa-engine: resumed from {} (snapshot seq {:?}, {} replayed)",
                    dir.display(),
                    recovered.report.snapshot_seq,
                    recovered.report.replayed
                );
            }
            let controller = DurabilityController::resume(
                dir,
                policy,
                recovered.next_seq,
                recovered.last_checkpoint_seq,
            )
            .expect("durability controller opens");
            EngineServer::serve_sharded_durable(
                listener,
                recovered.engine,
                Framing::Lines,
                controller,
            )
        }
    }
    .expect("server spawns");
    loop {
        std::thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_study_reports_speedup_and_quality() {
        let settings = ExperimentSettings {
            scale: 0.5,
            ..ExperimentSettings::quick()
        };
        let report = run_serve_study(&settings, 300);
        assert_eq!(report.num_deltas, 300);
        assert!(report.final_users >= report.base_users);
        assert!(
            report.utility_ratio >= 0.95,
            "utility ratio {} below the acceptance bar",
            report.utility_ratio
        );
        assert!(
            report.speedup > 1.0,
            "warm serving ({} µs) not faster than cold re-solve ({} µs)",
            report.warm_latency.mean_us,
            report.cold_latency.mean_us
        );
        let md = report.to_markdown();
        assert!(md.contains("Serving study"));
        assert!(md.contains("Speedup"));
    }

    #[test]
    fn serve_report_serializes() {
        let settings = ExperimentSettings::quick();
        let report = run_serve_study(&settings, 50);
        let json = serde_json::to_string(&report).unwrap();
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn sharded_study_is_feasible_and_close_to_monolithic() {
        let settings = ExperimentSettings {
            scale: 0.25,
            ..ExperimentSettings::quick()
        };
        let report = run_sharded_serve_study(&settings, 400, 4, 2, false);
        assert_eq!(report.shards, 4);
        assert!(report.merged_feasible, "merged arrangement infeasible");
        assert!(
            report.utility_ratio >= 0.95,
            "sharded utility only {:.3} of monolithic",
            report.utility_ratio
        );
        let md = report.to_markdown();
        assert!(md.contains("Sharded serving study"));
        let json = serde_json::to_string(&report).unwrap();
        let back: ShardedServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn loopback_study_is_feasible_end_to_end() {
        let settings = ExperimentSettings {
            scale: 0.2,
            ..ExperimentSettings::quick()
        };
        let report = run_loopback_study(&settings, "127.0.0.1:0", 120, 2, 2, false);
        assert_eq!(report.num_deltas, 120);
        assert_eq!(report.rejected, 0, "community trace must replay cleanly");
        assert_eq!(report.applied, 120);
        assert_eq!(report.merged_feasible, Some(true));
        assert!(report.final_utility > 0.0);
        let md = report.to_markdown();
        assert!(md.contains("TCP serving smoke"));
        let json = serde_json::to_string(&report).unwrap();
        assert_eq!(
            serde_json::from_str::<LoopbackReport>(&json).unwrap(),
            report
        );
    }

    #[test]
    fn grow_study_reshards_live_with_zero_rejections() {
        let settings = ExperimentSettings {
            scale: 0.2,
            ..ExperimentSettings::quick()
        };
        let report = run_grow_study(&settings, "127.0.0.1:0", 120, 2, 3, 60, 1, false);
        assert!(report.passed(), "elastic contract violated: {report:?}");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.migration.from_shards, 2);
        assert_eq!(report.migration.to_shards, 3);
        assert_eq!(report.final_shards, 3);
        assert!(
            report.migration.moved_users > 0,
            "a 2 -> 3 grow moves users"
        );
        let md = report.to_markdown();
        assert!(md.contains("Elastic serving smoke"));
        let json = serde_json::to_string(&report).unwrap();
        assert_eq!(serde_json::from_str::<GrowReport>(&json).unwrap(), report);
    }

    #[test]
    fn fsync_policies_parse() {
        assert_eq!(parse_fsync_policy("off"), Some(DurabilityPolicy::Off));
        assert_eq!(parse_fsync_policy("always"), Some(DurabilityPolicy::Always));
        assert_eq!(
            parse_fsync_policy("every=32"),
            Some(DurabilityPolicy::EveryN { n: 32 })
        );
        assert_eq!(
            parse_fsync_policy("interval=5"),
            Some(DurabilityPolicy::Interval { millis: 5 })
        );
        assert_eq!(parse_fsync_policy("sometimes"), None);
        assert_eq!(parse_fsync_policy("every=x"), None);
    }

    #[test]
    fn durable_serve_recovers_the_exact_served_state() {
        // The CLI path end to end, minus the TCP listen loop: serve the
        // community trace durably, shut down, then run the `recover`
        // study against the directory and compare with the live engine.
        let settings = ExperimentSettings {
            scale: 0.2,
            ..ExperimentSettings::quick()
        };
        let shards = 2;
        let dir = std::env::temp_dir().join(format!(
            "igepa-serve-recover-{}-{}",
            std::process::id(),
            settings.base_seed
        ));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::create_dir_all(&dir).unwrap();

        let requests = tcp_trace(&settings, 120, shards, false);
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
        let controller =
            DurabilityController::create(&dir, DurabilityPolicy::Off).expect("controller opens");
        let handle = EngineServer::serve_sharded_durable(
            listener,
            tcp_server_engine(&settings, shards, 1),
            Framing::Lines,
            controller,
        )
        .expect("server spawns");
        let mut client =
            EngineClient::connect(handle.local_addr(), Framing::Lines).expect("client connects");
        drive_client(&mut client, &requests).expect("transport stays up");
        drop(client);
        let engine = handle.shutdown().expect("clean shutdown");

        let report = run_recover_study(&settings, &dir, shards).expect("recovery succeeds");
        assert!(report.passed(), "recovered state failed integrity checks");
        // `drive_client` appends a Rebalance after the 120 deltas.
        assert_eq!(report.wal_records, 121);
        assert_eq!(report.replayed, 121);
        assert_eq!(
            report.final_utility.to_bits(),
            engine.merged_utility().total.to_bits(),
            "recovered utility must match the served engine bit for bit"
        );
        assert_eq!(report.final_pairs, engine.merged_arrangement().len());

        let recovered = recover_served_engine(&settings, &dir, shards).expect("recovery succeeds");
        assert_eq!(
            recovered
                .engine
                .merged_arrangement()
                .pairs()
                .collect::<Vec<_>>(),
            engine.merged_arrangement().pairs().collect::<Vec<_>>(),
            "recovered arrangement must match pair for pair"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_shard_study_matches_monolithic_exactly() {
        let settings = ExperimentSettings {
            scale: 0.2,
            ..ExperimentSettings::quick()
        };
        let report = run_sharded_serve_study(&settings, 200, 1, 1, false);
        assert_eq!(report.shards, 1);
        assert!(report.merged_feasible);
        assert_eq!(
            report.sharded_utility.to_bits(),
            report.mono_utility.to_bits(),
            "one shard must reproduce the monolithic utility bit for bit"
        );
    }
}
