//! Shared experiment settings: repetitions, seeds, workload scale and the
//! algorithm roster.

use igepa_algos::{
    ArrangementAlgorithm, GreedyArrangement, LocalSearch, LpBackend, LpPacking, OnlineGreedy,
    RandomU, RandomV,
};
use igepa_core::Instance;
use igepa_datagen::SyntheticConfig;
use serde::{Deserialize, Serialize};

/// Settings shared by every experiment of the harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSettings {
    /// Number of repetitions per configuration (the paper averages 50; the
    /// harness defaults to 10 to keep a full reproduction run tractable on a
    /// laptop — pass `--paper-reps` to the CLI for 50).
    pub repetitions: usize,
    /// Base random seed; repetition `i` of configuration `k` uses
    /// `base_seed + 1000·k + i`.
    pub base_seed: u64,
    /// Workload scale factor applied to `|V|` and `|U|` of the synthetic
    /// sweeps (1.0 = paper scale). Used by quick runs, tests and benches.
    pub scale: f64,
    /// LP backend used by LP-packing.
    pub lp_backend: LpBackend,
    /// Also run the extension algorithms (local search, online greedy).
    pub include_extensions: bool,
}

impl Default for ExperimentSettings {
    fn default() -> Self {
        ExperimentSettings {
            repetitions: 10,
            base_seed: 20190411, // ICDE 2019 dates, for flavour
            scale: 1.0,
            lp_backend: LpBackend::default(),
            include_extensions: false,
        }
    }
}

impl ExperimentSettings {
    /// Paper-faithful settings: 50 repetitions at full scale.
    pub fn paper() -> Self {
        ExperimentSettings {
            repetitions: 50,
            ..Self::default()
        }
    }

    /// Quick settings for tests and benches: scaled-down workloads and few
    /// repetitions.
    pub fn quick() -> Self {
        ExperimentSettings {
            repetitions: 2,
            scale: 0.1,
            ..Self::default()
        }
    }

    /// Applies the scale factor to a synthetic configuration.
    pub fn scale_config(&self, config: &SyntheticConfig) -> SyntheticConfig {
        if (self.scale - 1.0).abs() < 1e-12 {
            return config.clone();
        }
        let scale = self.scale.max(0.01);
        SyntheticConfig {
            num_events: ((config.num_events as f64 * scale).round() as usize).max(4),
            num_users: ((config.num_users as f64 * scale).round() as usize).max(10),
            ..config.clone()
        }
    }

    /// The algorithm roster compared by the paper (plus extensions when
    /// enabled). LP-packing uses the configured backend and `α = 1`, the
    /// value the paper uses empirically.
    pub fn algorithms(&self) -> Vec<Box<dyn ArrangementAlgorithm>> {
        let mut algorithms: Vec<Box<dyn ArrangementAlgorithm>> = vec![
            Box::new(LpPacking {
                backend: self.lp_backend,
                ..LpPacking::default()
            }),
            Box::new(GreedyArrangement),
            Box::new(RandomU),
            Box::new(RandomV),
        ];
        if self.include_extensions {
            algorithms.push(Box::new(LocalSearch::default()));
            algorithms.push(Box::new(OnlineGreedy::default()));
        }
        algorithms
    }

    /// Runs every algorithm of the roster `repetitions` times on instances
    /// produced by `make_instance(repetition)` and aggregates the results.
    ///
    /// A fresh instance per repetition matches the paper's methodology of
    /// averaging over 50 randomly generated datasets per configuration.
    pub fn compare_on<F>(&self, mut make_instance: F) -> Vec<crate::report::AlgorithmResult>
    where
        F: FnMut(usize) -> Instance,
    {
        let algorithms = self.algorithms();
        let mut utilities: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
        let mut runtimes: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
        for rep in 0..self.repetitions.max(1) {
            let instance = make_instance(rep);
            for (i, algorithm) in algorithms.iter().enumerate() {
                let record = igepa_algos::run_and_record(
                    algorithm.as_ref(),
                    &instance,
                    self.base_seed + rep as u64,
                );
                assert!(
                    record.feasible,
                    "{} produced an infeasible arrangement",
                    record.algorithm
                );
                utilities[i].push(record.utility);
                runtimes[i].push(record.runtime_seconds);
            }
        }
        algorithms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                crate::report::AlgorithmResult::from_runs(a.name(), &utilities[i], &runtimes[i])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_datagen::generate_synthetic;

    #[test]
    fn default_settings_match_documentation() {
        let s = ExperimentSettings::default();
        assert_eq!(s.repetitions, 10);
        assert_eq!(s.scale, 1.0);
        assert!(!s.include_extensions);
        assert_eq!(ExperimentSettings::paper().repetitions, 50);
    }

    #[test]
    fn scaling_shrinks_the_workload() {
        let s = ExperimentSettings::quick();
        let scaled = s.scale_config(&SyntheticConfig::default());
        assert_eq!(scaled.num_events, 20);
        assert_eq!(scaled.num_users, 200);
        // Other knobs are untouched.
        assert_eq!(scaled.p_conflict, 0.3);
        let unscaled = ExperimentSettings::default().scale_config(&SyntheticConfig::default());
        assert_eq!(unscaled.num_events, 200);
    }

    #[test]
    fn roster_matches_the_paper() {
        let names: Vec<&str> = ExperimentSettings::default()
            .algorithms()
            .iter()
            .map(|a| a.name())
            .collect();
        assert_eq!(names, vec!["LP-packing", "GG", "Random-U", "Random-V"]);
        let extended = ExperimentSettings {
            include_extensions: true,
            ..Default::default()
        };
        assert_eq!(extended.algorithms().len(), 6);
    }

    #[test]
    fn compare_on_produces_one_row_per_algorithm() {
        let settings = ExperimentSettings {
            repetitions: 2,
            ..ExperimentSettings::quick()
        };
        let config = SyntheticConfig::tiny();
        let results = settings.compare_on(|rep| generate_synthetic(&config, rep as u64));
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.repetitions, 2);
            assert!(r.mean_utility >= 0.0);
        }
    }
}
