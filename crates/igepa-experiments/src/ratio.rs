//! Empirical approximation-ratio study (extension of the paper's analysis).
//!
//! Theorem 2 guarantees that LP-packing with `α = ½` achieves at least ¼ of
//! the optimum in expectation. This experiment measures the *empirical*
//! ratio on small random instances whose exact optimum the branch-and-bound
//! baseline can still compute, for both `α = ½` (the analysed variant) and
//! `α = 1` (the variant the paper actually evaluates).

use crate::settings::ExperimentSettings;
use igepa_algos::{ArrangementAlgorithm, ExactIlp, LpPacking};
use igepa_datagen::{generate_synthetic, SyntheticConfig};
use serde::{Deserialize, Serialize};

/// The measured ratio for one α value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioResult {
    /// The α the rounding used.
    pub alpha: f64,
    /// Mean utility ratio LP-packing / OPT across instances (each instance's
    /// LP-packing utility is itself averaged over the repetitions).
    pub mean_ratio: f64,
    /// The worst per-instance ratio observed.
    pub min_ratio: f64,
    /// Number of instances evaluated.
    pub instances: usize,
}

/// Full report of the ratio study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioReport {
    /// Results per α (½ and 1).
    pub results: Vec<RatioResult>,
    /// The theoretical guarantee from Theorem 2, for reference.
    pub theoretical_bound: f64,
}

impl RatioReport {
    /// Renders the study as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "### Empirical approximation ratio of LP-packing (vs exact ILP optimum)\n\n\
             | alpha | mean ratio | worst ratio | instances | Theorem 2 bound |\n|---|---|---|---|---|\n",
        );
        for r in &self.results {
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} | {} | {} |\n",
                r.alpha, r.mean_ratio, r.min_ratio, r.instances, self.theoretical_bound
            ));
        }
        out
    }
}

/// Runs the ratio study on `num_instances` tiny synthetic instances.
pub fn run_ratio_study(settings: &ExperimentSettings, num_instances: usize) -> RatioReport {
    let config = SyntheticConfig::tiny();
    let exact = ExactIlp::default();
    let alphas = [0.5, 1.0];
    let mut results = Vec::new();
    for &alpha in &alphas {
        let algorithm = LpPacking {
            alpha,
            ..LpPacking::default()
        };
        let mut ratios = Vec::new();
        for k in 0..num_instances.max(1) {
            let instance = generate_synthetic(&config, settings.base_seed + 7 * k as u64);
            let (_, opt) = exact.solve_with_value(&instance);
            if opt <= 1e-9 {
                continue;
            }
            // LP-packing is randomised: average its utility over the seeds,
            // matching the "in expectation" statement of Theorem 2.
            let mut total = 0.0;
            for rep in 0..settings.repetitions.max(1) {
                let m = algorithm.run_seeded(&instance, settings.base_seed + rep as u64);
                total += m.utility(&instance).total;
            }
            let mean_utility = total / settings.repetitions.max(1) as f64;
            ratios.push(mean_utility / opt);
        }
        let n = ratios.len().max(1) as f64;
        results.push(RatioResult {
            alpha,
            mean_ratio: ratios.iter().sum::<f64>() / n,
            min_ratio: ratios.iter().cloned().fold(f64::INFINITY, f64::min),
            instances: ratios.len(),
        });
    }
    RatioReport {
        results,
        theoretical_bound: 0.25,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_study_exceeds_the_theoretical_bound() {
        let settings = ExperimentSettings {
            repetitions: 4,
            ..ExperimentSettings::quick()
        };
        let report = run_ratio_study(&settings, 3);
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.theoretical_bound, 0.25);
        for r in &report.results {
            assert!(r.instances > 0);
            assert!(
                r.mean_ratio >= 0.25,
                "alpha {} mean ratio {} below the guarantee",
                r.alpha,
                r.mean_ratio
            );
            assert!(r.mean_ratio <= 1.0 + 1e-9);
        }
        assert!(report.to_markdown().contains("0.25"));
    }

    #[test]
    fn alpha_one_dominates_alpha_half_on_average() {
        let settings = ExperimentSettings {
            repetitions: 6,
            ..ExperimentSettings::quick()
        };
        let report = run_ratio_study(&settings, 4);
        let half = report.results.iter().find(|r| r.alpha == 0.5).unwrap();
        let one = report.results.iter().find(|r| r.alpha == 1.0).unwrap();
        // α = 1 samples more aggressively and relies on the repair step, which
        // is exactly why the paper uses it empirically.
        assert!(one.mean_ratio + 0.05 >= half.mean_ratio);
    }
}
