//! # igepa-experiments — reproduction harness for every table and figure
//!
//! One module per artefact of the paper's evaluation section:
//!
//! | Paper artefact | Module / entry point | CLI |
//! |---|---|---|
//! | Table I default synthetic setting | [`tables::run_table1`] | `igepa-experiments table1` |
//! | Fig. 1(a)–(f) parameter sweeps | [`figure1::run_figure1`] | `igepa-experiments figure1 --factor <a..f>` |
//! | Table II (Meetup-SF) | [`tables::run_table2`] | `igepa-experiments table2` |
//! | Theorem 2 empirical check (extension) | [`ratio::run_ratio_study`] | `igepa-experiments ratio` |
//!
//! Reports are produced as markdown (for EXPERIMENTS.md) and CSV (for
//! plotting), and the whole suite can be run with `igepa-experiments all`.
//!
//! ```
//! use igepa_experiments::{ExperimentSettings, run_table2};
//!
//! // A scaled-down Table II run (full scale takes a few minutes).
//! let settings = ExperimentSettings { repetitions: 1, scale: 0.05, ..ExperimentSettings::quick() };
//! let report = run_table2(&settings);
//! assert_eq!(report.results.len(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod bundle;
pub mod figure1;
pub mod online;
pub mod ratio;
pub mod report;
pub mod scalability;
pub mod serve;
pub mod settings;
pub mod shape;
pub mod tables;

pub use ablation::{
    run_alpha_ablation, run_backend_ablation, run_beta_ablation, run_clustered_table,
    run_extension_ablation, run_interaction_ablation,
};
pub use bundle::ResultsBundle;
pub use figure1::{run_all_figure1, run_figure1, Figure1Factor};
pub use online::run_online_study;
pub use ratio::{run_ratio_study, RatioReport, RatioResult};
pub use report::{AlgorithmResult, SweepPoint, SweepReport, TableReport};
pub use scalability::{run_scalability, DEFAULT_USER_COUNTS};
pub use serve::{
    parse_fsync_policy, recover_served_engine, run_connect_study, run_grow_study, run_listen,
    run_loopback_study, run_overload_study, run_recover_study, run_reshard_command,
    run_serve_study, run_sharded_serve_study, serving_engine, sharded_serving_engine,
    sharded_serving_engine_with_admission, tcp_server_engine, GrowReport, LoopbackReport,
    OverloadReport, RecoverReport, ServeReport, ShardedServeReport,
};
pub use settings::ExperimentSettings;
pub use shape::{
    check_sweep, check_table_ordering, check_users_sweep_convergence, ShapeCheck, ShapeReport,
};
pub use tables::{run_table1, run_table2, table1_workload_stats};
