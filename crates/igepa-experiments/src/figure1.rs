//! Figure 1 reproduction: utility of the four algorithms while varying one
//! factor of the synthetic workload at a time.
//!
//! The paper sweeps six factors around the Table I defaults:
//!
//! | Subfigure | Factor | Sweep values used here |
//! |---|---|---|
//! | 1(a) | number of events `\|V\|` | 100, 150, 200, 250, 300 |
//! | 1(b) | number of users `\|U\|` | 1000, 2000, 5000, 8000, 10000 |
//! | 1(c) | conflict probability `pcf` | 0.1, 0.2, 0.3, 0.4, 0.5 |
//! | 1(d) | friendship probability `pdeg` | 0.1, 0.3, 0.5, 0.7, 0.9 |
//! | 1(e) | max event capacity `max c_v` | 10, 30, 50, 70, 90 |
//! | 1(f) | max user capacity `max c_u` | 2, 3, 4, 5, 6 |
//!
//! (The paper's figure does not list its exact tick values; these ranges are
//! centred on the Table I defaults in the same way.)

use crate::report::{SweepPoint, SweepReport};
use crate::settings::ExperimentSettings;
use igepa_datagen::{generate_synthetic, SyntheticConfig};
use serde::{Deserialize, Serialize};

/// The factor varied in one subfigure of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Figure1Factor {
    /// Fig. 1(a): number of events `|V|`.
    NumEvents,
    /// Fig. 1(b): number of users `|U|`.
    NumUsers,
    /// Fig. 1(c): probability of event conflict `pcf`.
    ConflictProbability,
    /// Fig. 1(d): probability that two users are friends `pdeg`.
    FriendProbability,
    /// Fig. 1(e): maximum event capacity `max c_v`.
    MaxEventCapacity,
    /// Fig. 1(f): maximum user capacity `max c_u`.
    MaxUserCapacity,
}

impl Figure1Factor {
    /// All six factors in subfigure order.
    pub fn all() -> [Figure1Factor; 6] {
        [
            Figure1Factor::NumEvents,
            Figure1Factor::NumUsers,
            Figure1Factor::ConflictProbability,
            Figure1Factor::FriendProbability,
            Figure1Factor::MaxEventCapacity,
            Figure1Factor::MaxUserCapacity,
        ]
    }

    /// Experiment identifier (`fig1a` … `fig1f`).
    pub fn id(&self) -> &'static str {
        match self {
            Figure1Factor::NumEvents => "fig1a",
            Figure1Factor::NumUsers => "fig1b",
            Figure1Factor::ConflictProbability => "fig1c",
            Figure1Factor::FriendProbability => "fig1d",
            Figure1Factor::MaxEventCapacity => "fig1e",
            Figure1Factor::MaxUserCapacity => "fig1f",
        }
    }

    /// Human-readable factor name.
    pub fn name(&self) -> &'static str {
        match self {
            Figure1Factor::NumEvents => "|V|",
            Figure1Factor::NumUsers => "|U|",
            Figure1Factor::ConflictProbability => "pcf",
            Figure1Factor::FriendProbability => "pdeg",
            Figure1Factor::MaxEventCapacity => "max c_v",
            Figure1Factor::MaxUserCapacity => "max c_u",
        }
    }

    /// Parses a CLI spelling of the factor.
    pub fn parse(text: &str) -> Option<Figure1Factor> {
        match text.to_ascii_lowercase().as_str() {
            "events" | "num-events" | "v" | "fig1a" | "a" => Some(Figure1Factor::NumEvents),
            "users" | "num-users" | "u" | "fig1b" | "b" => Some(Figure1Factor::NumUsers),
            "pcf" | "conflict" | "fig1c" | "c" => Some(Figure1Factor::ConflictProbability),
            "pdeg" | "friends" | "fig1d" | "d" => Some(Figure1Factor::FriendProbability),
            "event-capacity" | "max-cv" | "cv" | "fig1e" | "e" => {
                Some(Figure1Factor::MaxEventCapacity)
            }
            "user-capacity" | "max-cu" | "cu" | "fig1f" | "f" => {
                Some(Figure1Factor::MaxUserCapacity)
            }
            _ => None,
        }
    }

    /// The sweep values used by the reproduction.
    pub fn sweep_values(&self) -> Vec<f64> {
        match self {
            Figure1Factor::NumEvents => vec![100.0, 150.0, 200.0, 250.0, 300.0],
            Figure1Factor::NumUsers => vec![1000.0, 2000.0, 5000.0, 8000.0, 10000.0],
            Figure1Factor::ConflictProbability => vec![0.1, 0.2, 0.3, 0.4, 0.5],
            Figure1Factor::FriendProbability => vec![0.1, 0.3, 0.5, 0.7, 0.9],
            Figure1Factor::MaxEventCapacity => vec![10.0, 30.0, 50.0, 70.0, 90.0],
            Figure1Factor::MaxUserCapacity => vec![2.0, 3.0, 4.0, 5.0, 6.0],
        }
    }

    /// Returns the Table I default configuration with this factor set to
    /// `value`.
    pub fn apply(&self, base: &SyntheticConfig, value: f64) -> SyntheticConfig {
        let mut config = base.clone();
        match self {
            Figure1Factor::NumEvents => config.num_events = value.round() as usize,
            Figure1Factor::NumUsers => config.num_users = value.round() as usize,
            Figure1Factor::ConflictProbability => config.p_conflict = value,
            Figure1Factor::FriendProbability => config.p_friend = value,
            Figure1Factor::MaxEventCapacity => config.max_event_capacity = value.round() as usize,
            Figure1Factor::MaxUserCapacity => config.max_user_capacity = value.round() as usize,
        }
        config
    }
}

/// Runs the sweep for one subfigure of Fig. 1.
pub fn run_figure1(factor: Figure1Factor, settings: &ExperimentSettings) -> SweepReport {
    let base = SyntheticConfig::paper_default();
    let mut points = Vec::new();
    for (k, value) in factor.sweep_values().into_iter().enumerate() {
        let config = settings.scale_config(&factor.apply(&base, value));
        let seed_offset = settings.base_seed + 1000 * k as u64;
        let results = settings
            .compare_on(|rep| generate_synthetic(&config, seed_offset.wrapping_add(rep as u64)));
        points.push(SweepPoint {
            factor_value: value,
            results,
        });
    }
    SweepReport {
        id: factor.id().to_string(),
        factor_name: factor.name().to_string(),
        points,
    }
}

/// Runs all six subfigures of Fig. 1.
pub fn run_all_figure1(settings: &ExperimentSettings) -> Vec<SweepReport> {
    Figure1Factor::all()
        .into_iter()
        .map(|f| run_figure1(f, settings))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_metadata_is_consistent() {
        for f in Figure1Factor::all() {
            assert!(!f.sweep_values().is_empty());
            assert!(Figure1Factor::parse(f.id()).is_some());
            assert_eq!(Figure1Factor::parse(f.id()).unwrap(), f);
        }
        assert_eq!(Figure1Factor::parse("users"), Some(Figure1Factor::NumUsers));
        assert_eq!(
            Figure1Factor::parse("pcf"),
            Some(Figure1Factor::ConflictProbability)
        );
        assert_eq!(Figure1Factor::parse("nonsense"), None);
    }

    #[test]
    fn sweep_centres_include_the_table_one_default() {
        let base = SyntheticConfig::paper_default();
        assert!(Figure1Factor::NumEvents
            .sweep_values()
            .contains(&(base.num_events as f64)));
        assert!(Figure1Factor::NumUsers
            .sweep_values()
            .contains(&(base.num_users as f64)));
        assert!(Figure1Factor::ConflictProbability
            .sweep_values()
            .contains(&base.p_conflict));
        assert!(Figure1Factor::FriendProbability
            .sweep_values()
            .contains(&base.p_friend));
        assert!(Figure1Factor::MaxEventCapacity
            .sweep_values()
            .contains(&(base.max_event_capacity as f64)));
        assert!(Figure1Factor::MaxUserCapacity
            .sweep_values()
            .contains(&(base.max_user_capacity as f64)));
    }

    #[test]
    fn apply_changes_only_the_swept_factor() {
        let base = SyntheticConfig::paper_default();
        let c = Figure1Factor::ConflictProbability.apply(&base, 0.45);
        assert_eq!(c.p_conflict, 0.45);
        assert_eq!(c.num_events, base.num_events);
        assert_eq!(c.num_users, base.num_users);
        let e = Figure1Factor::NumEvents.apply(&base, 150.0);
        assert_eq!(e.num_events, 150);
        assert_eq!(e.p_conflict, base.p_conflict);
    }

    #[test]
    fn quick_sweep_produces_a_complete_report() {
        // Shrunk sweep: only exercise the plumbing, not paper scale.
        let settings = ExperimentSettings {
            repetitions: 1,
            scale: 0.05,
            ..ExperimentSettings::quick()
        };
        let report = run_figure1(Figure1Factor::MaxUserCapacity, &settings);
        assert_eq!(report.id, "fig1f");
        assert_eq!(report.points.len(), 5);
        for p in &report.points {
            assert_eq!(p.results.len(), 4);
        }
        // The markdown renderer works on real output.
        assert!(report.to_markdown().contains("fig1f"));
    }
}
