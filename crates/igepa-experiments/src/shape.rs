//! Automated "shape" verification of the reproduced results.
//!
//! The reproduction cannot match the paper's absolute utilities (different
//! random workloads, a simulator instead of the proprietary Meetup crawl),
//! but the *qualitative claims* of the evaluation must hold. This module
//! encodes those claims as machine-checkable predicates over the report
//! structures, so EXPERIMENTS.md can cite a pass/fail verdict instead of a
//! visual comparison:
//!
//! * **C1** — LP-packing achieves the highest mean utility in every table
//!   and at every sweep point (up to a small tolerance);
//! * **C2** — both randomized baselines trail GG;
//! * **C3** — utility grows (weakly) along the |V|, |U| and capacity sweeps
//!   for LP-packing;
//! * **C4** — GG approaches LP-packing when users vastly outnumber event
//!   capacity (the Fig. 1(b) tail).

use crate::report::{SweepReport, TableReport};
use serde::{Deserialize, Serialize};

/// Outcome of one shape check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeCheck {
    /// Claim identifier, e.g. `"C1: LP-packing leads"`.
    pub claim: String,
    /// Where the claim was evaluated (report id).
    pub report: String,
    /// Whether the claim holds.
    pub passed: bool,
    /// Human-readable evidence (the numbers behind the verdict).
    pub evidence: String,
}

/// A bundle of shape checks with a markdown renderer for EXPERIMENTS.md.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShapeReport {
    /// The individual checks, in evaluation order.
    pub checks: Vec<ShapeCheck>,
}

impl ShapeReport {
    /// Whether every check passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.passed).count()
    }

    /// Renders the checks as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| claim | report | verdict | evidence |\n|---|---|---|---|\n");
        for check in &self.checks {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                check.claim,
                check.report,
                if check.passed { "✔" } else { "✘" },
                check.evidence
            ));
        }
        out
    }
}

fn mean_of(results: &[crate::report::AlgorithmResult], algorithm: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.algorithm == algorithm)
        .map(|r| r.mean_utility)
}

/// C1/C2 on a single table: LP-packing leads, the randomized baselines trail
/// GG. `tolerance` is the relative slack allowed (e.g. 0.02 = 2%).
pub fn check_table_ordering(report: &TableReport, tolerance: f64) -> Vec<ShapeCheck> {
    let mut checks = Vec::new();
    let lp = mean_of(&report.results, "LP-packing");
    let gg = mean_of(&report.results, "GG");
    let ru = mean_of(&report.results, "Random-U");
    let rv = mean_of(&report.results, "Random-V");

    if let (Some(lp), Some(gg)) = (lp, gg) {
        let passed = lp >= gg * (1.0 - tolerance);
        checks.push(ShapeCheck {
            claim: "C1: LP-packing ≥ GG".to_string(),
            report: report.id.clone(),
            passed,
            evidence: format!("LP-packing {lp:.2} vs GG {gg:.2}"),
        });
    }
    if let (Some(gg), Some(ru), Some(rv)) = (gg, ru, rv) {
        let passed = gg >= ru * (1.0 - tolerance) && gg >= rv * (1.0 - tolerance);
        checks.push(ShapeCheck {
            claim: "C2: GG ≥ Random-U/V".to_string(),
            report: report.id.clone(),
            passed,
            evidence: format!("GG {gg:.2} vs Random-U {ru:.2} / Random-V {rv:.2}"),
        });
    }
    checks
}

/// C1 at every point of a sweep, plus C3 monotonicity when requested.
pub fn check_sweep(
    report: &SweepReport,
    expect_monotone_lp: bool,
    tolerance: f64,
) -> Vec<ShapeCheck> {
    let mut checks = Vec::new();
    let mut lp_series: Vec<(f64, f64)> = Vec::new();
    let mut leads_everywhere = true;
    let mut worst_gap = f64::INFINITY;

    for point in &report.points {
        let lp = mean_of(&point.results, "LP-packing");
        let gg = mean_of(&point.results, "GG");
        if let (Some(lp), Some(gg)) = (lp, gg) {
            lp_series.push((point.factor_value, lp));
            let ratio = if gg > 0.0 { lp / gg } else { f64::INFINITY };
            worst_gap = worst_gap.min(ratio);
            if lp < gg * (1.0 - tolerance) {
                leads_everywhere = false;
            }
        }
    }
    if !lp_series.is_empty() {
        checks.push(ShapeCheck {
            claim: "C1: LP-packing leads at every sweep point".to_string(),
            report: report.id.clone(),
            passed: leads_everywhere,
            evidence: format!(
                "worst LP/GG ratio {worst_gap:.3} over {} points",
                lp_series.len()
            ),
        });
    }
    if expect_monotone_lp && lp_series.len() >= 2 {
        // Weak monotonicity with a small slack for sampling noise.
        let slack = 0.05;
        let monotone = lp_series
            .windows(2)
            .all(|w| w[1].1 >= w[0].1 * (1.0 - slack));
        checks.push(ShapeCheck {
            claim: "C3: LP-packing utility grows along the sweep".to_string(),
            report: report.id.clone(),
            passed: monotone,
            evidence: format!(
                "first {:.2} → last {:.2}",
                lp_series.first().unwrap().1,
                lp_series.last().unwrap().1
            ),
        });
    }
    checks
}

/// C4 on the |U| sweep: the GG/LP-packing gap shrinks from the first to the
/// last sweep point (GG catches up when users are abundant).
pub fn check_users_sweep_convergence(report: &SweepReport) -> Option<ShapeCheck> {
    let gap_at = |point: &crate::report::SweepPoint| -> Option<f64> {
        let lp = mean_of(&point.results, "LP-packing")?;
        let gg = mean_of(&point.results, "GG")?;
        if lp > 0.0 {
            Some((lp - gg) / lp)
        } else {
            None
        }
    };
    let first = report.points.first().and_then(gap_at)?;
    let last = report.points.last().and_then(gap_at)?;
    Some(ShapeCheck {
        claim: "C4: GG catches up as |U| grows".to_string(),
        report: report.id.clone(),
        passed: last <= first + 0.02,
        evidence: format!("relative gap {first:.3} → {last:.3}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{AlgorithmResult, SweepPoint};

    fn result(algorithm: &str, utility: f64) -> AlgorithmResult {
        AlgorithmResult {
            algorithm: algorithm.to_string(),
            mean_utility: utility,
            min_utility: utility,
            max_utility: utility,
            mean_runtime_seconds: 0.0,
            repetitions: 1,
        }
    }

    fn table(lp: f64, gg: f64, ru: f64, rv: f64) -> TableReport {
        TableReport {
            id: "test".to_string(),
            description: "synthetic".to_string(),
            results: vec![
                result("LP-packing", lp),
                result("GG", gg),
                result("Random-U", ru),
                result("Random-V", rv),
            ],
        }
    }

    #[test]
    fn table_ordering_passes_on_paper_shaped_results() {
        let checks = check_table_ordering(&table(2129.9, 2099.9, 2019.6, 2000.9), 0.02);
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| c.passed));
    }

    #[test]
    fn table_ordering_fails_when_a_baseline_wins() {
        let checks = check_table_ordering(&table(1800.0, 2099.9, 2019.6, 2000.9), 0.02);
        assert!(checks.iter().any(|c| !c.passed));
        let report = ShapeReport { checks };
        assert!(!report.all_passed());
        assert!(report.failures() >= 1);
        assert!(report.to_markdown().contains("✘"));
    }

    #[test]
    fn sweep_checks_cover_leading_and_monotonicity() {
        let sweep = SweepReport {
            id: "fig1a".to_string(),
            factor_name: "|V|".to_string(),
            points: vec![
                SweepPoint {
                    factor_value: 100.0,
                    results: vec![result("LP-packing", 1000.0), result("GG", 950.0)],
                },
                SweepPoint {
                    factor_value: 200.0,
                    results: vec![result("LP-packing", 1500.0), result("GG", 1300.0)],
                },
            ],
        };
        let checks = check_sweep(&sweep, true, 0.02);
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| c.passed));
    }

    #[test]
    fn users_sweep_convergence_detects_the_shrinking_gap() {
        let sweep = SweepReport {
            id: "fig1b".to_string(),
            factor_name: "|U|".to_string(),
            points: vec![
                SweepPoint {
                    factor_value: 1000.0,
                    results: vec![result("LP-packing", 1000.0), result("GG", 850.0)],
                },
                SweepPoint {
                    factor_value: 10000.0,
                    results: vec![result("LP-packing", 3000.0), result("GG", 2980.0)],
                },
            ],
        };
        let check = check_users_sweep_convergence(&sweep).unwrap();
        assert!(check.passed);

        let widening = SweepReport {
            points: vec![sweep.points[1].clone(), sweep.points[0].clone()],
            ..sweep
        };
        let check = check_users_sweep_convergence(&widening).unwrap();
        assert!(!check.passed);
    }

    #[test]
    fn missing_algorithms_produce_no_spurious_checks() {
        let report = TableReport {
            id: "partial".to_string(),
            description: String::new(),
            results: vec![result("LP-packing", 1.0)],
        };
        assert!(check_table_ordering(&report, 0.02).is_empty());
        let sweep = SweepReport {
            id: "empty".to_string(),
            factor_name: String::new(),
            points: vec![],
        };
        assert!(check_sweep(&sweep, true, 0.02).is_empty());
        assert!(check_users_sweep_convergence(&sweep).is_none());
    }
}
