//! Online-arrival study (extension).
//!
//! The paper solves the offline problem; its related work points at online
//! variants where users arrive one by one. This study quantifies the price
//! of online arrival on the Table I workload: the offline algorithms
//! (LP-packing, GG) see the whole instance, the online rules (online
//! greedy, online ranking) commit per arrival, and the table also reports
//! how sensitive the online rules are to the arrival order (random vs
//! most-active-first vs least-active-first).

use crate::report::{AlgorithmResult, TableReport};
use crate::settings::ExperimentSettings;
use igepa_algos::{
    run_and_record, ArrangementAlgorithm, GreedyArrangement, LpPacking, OnlineGreedy, OnlineRanking,
};
use igepa_core::Instance;
use igepa_datagen::{activity_order, generate_synthetic, SyntheticConfig};

/// Runs the online-vs-offline comparison and returns one table.
pub fn run_online_study(settings: &ExperimentSettings) -> TableReport {
    let config = settings.scale_config(&SyntheticConfig::paper_default());

    // Roster rows 1–4: offline references and the RNG-driven online rules.
    let roster: Vec<Box<dyn ArrangementAlgorithm>> = vec![
        Box::new(LpPacking {
            backend: settings.lp_backend,
            ..LpPacking::default()
        }),
        Box::new(GreedyArrangement),
        Box::new(OnlineGreedy::default()),
        Box::new(OnlineRanking::default()),
    ];
    let mut utilities: Vec<Vec<f64>> = vec![Vec::new(); roster.len() + 2];
    let mut runtimes: Vec<Vec<f64>> = vec![Vec::new(); roster.len() + 2];

    for rep in 0..settings.repetitions.max(1) {
        let seed = settings.base_seed + rep as u64;
        let instance = generate_synthetic(&config, seed);
        for (i, algorithm) in roster.iter().enumerate() {
            let record = run_and_record(algorithm.as_ref(), &instance, seed);
            assert!(record.feasible);
            utilities[i].push(record.utility);
            runtimes[i].push(record.runtime_seconds);
        }
        // Rows 5–6: ranking under deterministic activity-ordered arrivals.
        for (offset, descending) in [(roster.len(), true), (roster.len() + 1, false)] {
            let start = std::time::Instant::now();
            let utility = ranking_with_activity_order(&instance, descending);
            utilities[offset].push(utility);
            runtimes[offset].push(start.elapsed().as_secs_f64());
        }
    }

    let mut results: Vec<AlgorithmResult> = roster
        .iter()
        .enumerate()
        .map(|(i, a)| AlgorithmResult::from_runs(a.name(), &utilities[i], &runtimes[i]))
        .collect();
    results.push(AlgorithmResult::from_runs(
        "Online-Ranking (most active first)",
        &utilities[roster.len()],
        &runtimes[roster.len()],
    ));
    results.push(AlgorithmResult::from_runs(
        "Online-Ranking (least active first)",
        &utilities[roster.len() + 1],
        &runtimes[roster.len() + 1],
    ));

    TableReport {
        id: "online".to_string(),
        description: format!(
            "online arrival study on the Table I default workload (|V|={}, |U|={})",
            config.num_events, config.num_users
        ),
        results,
    }
}

fn ranking_with_activity_order(instance: &Instance, descending: bool) -> f64 {
    let sequence = activity_order(instance, descending);
    // Deterministic ranks: every event gets rank 0.5, so only the arrival
    // order differs between the two activity-ordered rows.
    let ranks = vec![0.5; instance.num_events()];
    let algorithm = OnlineRanking {
        rank_weight: 0.0,
        shuffle_arrivals: false,
    };
    let arrangement = algorithm.arrange_in_order(instance, sequence.order(), &ranks);
    assert!(arrangement.is_feasible(instance));
    arrangement.utility(instance).total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_study_produces_six_rows() {
        let settings = ExperimentSettings {
            repetitions: 1,
            scale: 0.05,
            ..ExperimentSettings::quick()
        };
        let report = run_online_study(&settings);
        assert_eq!(report.id, "online");
        assert_eq!(report.results.len(), 6);
        let names: Vec<&str> = report
            .results
            .iter()
            .map(|r| r.algorithm.as_str())
            .collect();
        assert!(names.contains(&"LP-packing"));
        assert!(names.contains(&"Online-Ranking"));
        assert!(names.contains(&"Online-Ranking (most active first)"));
        for result in &report.results {
            assert!(result.mean_utility > 0.0);
        }
    }

    #[test]
    fn offline_lp_is_not_dominated_by_the_online_rules() {
        let settings = ExperimentSettings {
            repetitions: 2,
            scale: 0.1,
            ..ExperimentSettings::quick()
        };
        let report = run_online_study(&settings);
        let lp = report
            .results
            .iter()
            .find(|r| r.algorithm == "LP-packing")
            .unwrap()
            .mean_utility;
        for online in report
            .results
            .iter()
            .filter(|r| r.algorithm.starts_with("Online"))
        {
            assert!(
                online.mean_utility <= lp * 1.1,
                "{} ({}) implausibly beats offline LP-packing ({lp}) by more than 10%",
                online.algorithm,
                online.mean_utility
            );
        }
    }
}
