//! Scalability study: wall-clock runtime as the workload grows.
//!
//! The paper reports only utility; its scalability claim is implicit in the
//! Fig. 1(b) sweep reaching 10 000 users. This study makes the claim
//! explicit by measuring the mean runtime of LP-packing (both LP backends)
//! and the GG greedy baseline while the number of users grows with the
//! Table I default ratios, which is the axis along which the benchmark LP
//! grows fastest (one convexity row and up to `2^{c_u}` columns per user).

use crate::report::{AlgorithmResult, SweepPoint, SweepReport};
use crate::settings::ExperimentSettings;
use igepa_algos::{run_and_record, ArrangementAlgorithm, GreedyArrangement, LpBackend, LpPacking};
use igepa_datagen::{generate_synthetic, SyntheticConfig};

/// User counts swept by [`run_scalability`] at scale 1.0.
pub const DEFAULT_USER_COUNTS: [usize; 4] = [500, 1000, 2000, 4000];

/// Largest benchmark-LP row count (`|U| + |V|`) at which the exact simplex
/// backend is still included in the study. Beyond this the exact backend
/// takes minutes per repetition — which is exactly the finding the study
/// documents — so only the dual-subgradient backend and GG are measured.
/// The value matches the `LpBackend::Auto` default threshold.
pub const SIMPLEX_ROW_LIMIT: usize = 1200;

/// Runs the scalability study. The sweep points are the user counts of
/// [`DEFAULT_USER_COUNTS`] multiplied by the settings' scale factor.
pub fn run_scalability(settings: &ExperimentSettings) -> SweepReport {
    let base = SyntheticConfig::paper_default();
    let algorithms: Vec<(&str, Box<dyn ArrangementAlgorithm>)> = vec![
        (
            "LP-packing (simplex)",
            Box::new(LpPacking::with_backend(LpBackend::Simplex)),
        ),
        (
            "LP-packing (dual subgradient)",
            Box::new(LpPacking::with_backend(LpBackend::DualSubgradient {
                rounds: 1500,
            })),
        ),
        ("GG", Box::new(GreedyArrangement)),
    ];

    let mut points = Vec::new();
    for (k, &users) in DEFAULT_USER_COUNTS.iter().enumerate() {
        let num_users = ((users as f64 * settings.scale.max(0.01)).round() as usize).max(10);
        let config = SyntheticConfig {
            num_users,
            num_events: ((base.num_events as f64 * settings.scale.max(0.01)).round() as usize)
                .max(4),
            ..base.clone()
        };
        let include_simplex = num_users + config.num_events <= SIMPLEX_ROW_LIMIT;
        let mut utilities: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
        let mut runtimes: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
        for rep in 0..settings.repetitions.max(1) {
            let seed = settings.base_seed + 3000 * k as u64 + rep as u64;
            let instance = generate_synthetic(&config, seed);
            for (i, (label, algorithm)) in algorithms.iter().enumerate() {
                if *label == "LP-packing (simplex)" && !include_simplex {
                    continue;
                }
                let record = run_and_record(algorithm.as_ref(), &instance, seed);
                assert!(record.feasible);
                utilities[i].push(record.utility);
                runtimes[i].push(record.runtime_seconds);
            }
        }
        let results = algorithms
            .iter()
            .enumerate()
            .filter(|(i, _)| !utilities[*i].is_empty())
            .map(|(i, (label, _))| AlgorithmResult::from_runs(label, &utilities[i], &runtimes[i]))
            .collect();
        points.push(SweepPoint {
            factor_value: num_users as f64,
            results,
        });
    }
    SweepReport {
        id: "scalability".to_string(),
        factor_name: "number of users |U| (runtime study)".to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_report_has_one_point_per_user_count() {
        let settings = ExperimentSettings {
            repetitions: 1,
            scale: 0.02,
            ..ExperimentSettings::quick()
        };
        let report = run_scalability(&settings);
        assert_eq!(report.id, "scalability");
        assert_eq!(report.points.len(), DEFAULT_USER_COUNTS.len());
        for point in &report.points {
            assert_eq!(point.results.len(), 3);
            for result in &point.results {
                assert!(result.mean_runtime_seconds >= 0.0);
                assert!(result.mean_utility > 0.0);
            }
        }
        // The user counts are increasing.
        for w in report.points.windows(2) {
            assert!(w[0].factor_value <= w[1].factor_value);
        }
    }

    #[test]
    fn greedy_is_never_slower_than_the_simplex_backed_lp() {
        let settings = ExperimentSettings {
            repetitions: 1,
            scale: 0.05,
            ..ExperimentSettings::quick()
        };
        let report = run_scalability(&settings);
        let last = report.points.last().unwrap();
        let lp = last
            .results
            .iter()
            .find(|r| r.algorithm == "LP-packing (simplex)")
            .unwrap();
        let gg = last.results.iter().find(|r| r.algorithm == "GG").unwrap();
        assert!(gg.mean_runtime_seconds <= lp.mean_runtime_seconds + 1e-3);
    }
}
