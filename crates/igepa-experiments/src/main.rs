//! Command-line entry point of the experiment harness.
//!
//! ```text
//! igepa-experiments <command> [options]
//!
//! Commands:
//!   table1                 Table I default synthetic setting
//!   table2                 Table II (Meetup-SF simulator)
//!   figure1 --factor <f>   One subfigure of Fig. 1 (a..f, or names like "users")
//!   figure1-all            All six subfigures
//!   ratio                  Empirical approximation-ratio study
//!   ablations              α, β, LP backend, rounding and interaction ablations
//!   clustered              Paper roster on the community-structured workload
//!   scalability            Runtime vs |U| for LP-packing (both backends) and GG
//!   online                 Online-arrival study (online greedy / ranking vs offline)
//!   serve                  Serving study: warm-start engine vs cold re-solve on a delta trace
//!   overload               Loopback flood vs a bounded-admission, fault-injected server
//!   reshard                Live-reshard a running `serve --listen` server (--connect, --shards)
//!   recover <dir>          Rebuild a `serve --wal <dir>` server's state after a crash
//!   all                    Everything above, plus the qualitative shape checks
//!
//! Options:
//!   --reps <n>        repetitions per configuration (default 10)
//!   --paper-reps      use the paper's 50 repetitions
//!   --scale <x>       scale |V| and |U| by x (default 1.0; use e.g. 0.1 for a quick run)
//!   --seed <n>        base random seed
//!   --extensions      also run LocalSearch and Online-Greedy
//!   --exact-lp        force the exact simplex LP backend
//!   --csv-dir <dir>   also write CSV files into <dir>
//! ```

use igepa_algos::LpBackend;
use igepa_engine::FaultPlan;
use igepa_experiments::{
    check_sweep, check_table_ordering, check_users_sweep_convergence, parse_fsync_policy,
    run_all_figure1, run_alpha_ablation, run_backend_ablation, run_beta_ablation,
    run_clustered_table, run_connect_study, run_extension_ablation, run_figure1, run_grow_study,
    run_interaction_ablation, run_listen, run_loopback_study, run_online_study, run_overload_study,
    run_ratio_study, run_recover_study, run_reshard_command, run_scalability, run_serve_study,
    run_sharded_serve_study, run_table1, run_table2, ExperimentSettings, Figure1Factor,
    ShapeReport, SweepReport, TableReport,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return;
    }
    let command = args[0].clone();
    let options = parse_options(&args[1..]);

    let mut settings = ExperimentSettings::default();
    settings.repetitions = options.reps.unwrap_or(settings.repetitions);
    if options.paper_reps {
        settings.repetitions = 50;
    }
    settings.scale = options.scale.unwrap_or(settings.scale);
    settings.base_seed = options.seed.unwrap_or(settings.base_seed);
    settings.include_extensions = options.extensions;
    if options.exact_lp {
        settings.lp_backend = LpBackend::Simplex;
    }

    match command.as_str() {
        "table1" => emit_table(run_table1(&settings), &options),
        "table2" => emit_table(run_table2(&settings), &options),
        "figure1" => {
            let factor = options
                .factor
                .as_deref()
                .and_then(Figure1Factor::parse)
                .unwrap_or_else(|| {
                    eprintln!("--factor must be one of a..f, events, users, pcf, pdeg, event-capacity, user-capacity");
                    std::process::exit(2);
                });
            emit_sweep(run_figure1(factor, &settings), &options);
        }
        "figure1-all" => {
            for report in run_all_figure1(&settings) {
                emit_sweep(report, &options);
            }
        }
        "ratio" => {
            let report = run_ratio_study(&settings, 10);
            println!("{}", report.to_markdown());
        }
        "ablations" => {
            emit_sweep(run_alpha_ablation(&settings), &options);
            emit_sweep(run_beta_ablation(&settings), &options);
            emit_table(run_backend_ablation(&settings), &options);
            emit_table(run_extension_ablation(&settings), &options);
            for report in run_interaction_ablation(&settings) {
                emit_table(report, &options);
            }
        }
        "clustered" => emit_table(run_clustered_table(&settings), &options),
        "scalability" => emit_sweep(run_scalability(&settings), &options),
        "online" => emit_table(run_online_study(&settings), &options),
        "serve" => {
            let shards = options.shards.unwrap_or(1);
            let repair_threads = options.repair_threads.unwrap_or(1).max(1);
            if let Some(addr) = &options.connect {
                // Drive a server started elsewhere with `--listen`.
                let deltas = options.deltas.unwrap_or(500);
                let report = run_connect_study(&settings, addr, deltas, shards, options.churn);
                println!("{}", report.to_markdown());
            } else if let Some(addr) = &options.listen {
                if let Some(grow_to) = options.grow_to {
                    // Elastic smoke: loopback server + client with a live
                    // Reshard issued mid-trace; the server must not reject
                    // a single request and must exit feasible.
                    let deltas = options.deltas.unwrap_or(400);
                    let report = run_grow_study(
                        &settings,
                        addr,
                        deltas,
                        shards.max(1),
                        grow_to,
                        options.grow_at.unwrap_or(deltas / 2),
                        repair_threads,
                        options.churn,
                    );
                    println!("{}", report.to_markdown());
                    if !report.passed() {
                        eprintln!(
                            "elastic smoke FAILED: expected zero rejections, a {} -> {} \
                             migration with balanced counters and a feasible exit",
                            shards.max(1),
                            grow_to
                        );
                        std::process::exit(1);
                    }
                } else if let Some(deltas) = options.deltas {
                    // Loopback smoke: server + client in this process,
                    // with a server-side feasibility check on shutdown.
                    let report = run_loopback_study(
                        &settings,
                        addr,
                        deltas,
                        shards.max(1),
                        repair_threads,
                        options.churn,
                    );
                    println!("{}", report.to_markdown());
                    if report.merged_feasible != Some(true) {
                        eprintln!("merged arrangement is INFEASIBLE after the TCP smoke");
                        std::process::exit(1);
                    }
                    if report.rejected > 0 {
                        eprintln!(
                            "{} deltas rejected (trace must replay cleanly)",
                            report.rejected
                        );
                        std::process::exit(1);
                    }
                } else {
                    let policy = match options.fsync.as_deref() {
                        None => igepa_engine::DurabilityPolicy::Always,
                        Some(value) => parse_fsync_policy(value).unwrap_or_else(|| {
                            eprintln!("--fsync must be off, always, every=N or interval=MS");
                            std::process::exit(2);
                        }),
                    };
                    let wal = options
                        .wal
                        .as_deref()
                        .map(|dir| (std::path::Path::new(dir), policy));
                    run_listen(&settings, addr, shards.max(1), repair_threads, wal);
                }
            } else {
                let deltas = options.deltas.unwrap_or(10_000);
                if shards > 1 {
                    let report = run_sharded_serve_study(
                        &settings,
                        deltas,
                        shards,
                        repair_threads,
                        options.churn,
                    );
                    println!("{}", report.to_markdown());
                    if !report.merged_feasible {
                        eprintln!("merged arrangement is INFEASIBLE");
                        std::process::exit(1);
                    }
                } else {
                    let report = run_serve_study(&settings, deltas);
                    println!("{}", report.to_markdown());
                }
            }
        }
        "overload" => {
            let shards = options.shards.unwrap_or(4).max(1);
            let deltas = options.deltas.unwrap_or(2_000);
            // Cap 2 stays far below the flood's burst rate on any
            // machine; a generous cap makes shedding a timing accident
            // (slow applies throttle the pipelined flooders, so the
            // dispatch queue only backs up during bursts).
            let cap = options.admission_cap.unwrap_or(2);
            let plan = match options.fault_plan.as_deref() {
                // Default: slow every apply by 1ms so a tiny cap
                // actually backs up — sheds are the point of the
                // study, not a lucky race.
                None => FaultPlan::parse("slow=1000,slow_ms=1").expect("default plan parses"),
                Some(spec) => FaultPlan::parse(spec).unwrap_or_else(|e| {
                    eprintln!("--fault-plan: {e}");
                    std::process::exit(2);
                }),
            };
            let report = run_overload_study(&settings, deltas, shards, cap, plan);
            println!("{}", report.to_markdown());
            if !report.passed() {
                eprintln!(
                    "overload study FAILED: expected typed sheds, zero reader errors, \
                     one response per request and a feasible exit"
                );
                std::process::exit(1);
            }
        }
        "reshard" => {
            let Some(addr) = options.connect.as_deref() else {
                eprintln!("usage: igepa-experiments reshard --connect <addr> --shards <n>");
                std::process::exit(2);
            };
            let Some(shards) = options.shards.filter(|&n| n > 0) else {
                eprintln!("reshard needs --shards <n> (the target shard count, > 0)");
                std::process::exit(2);
            };
            run_reshard_command(addr, shards);
        }
        "recover" => {
            let dir = options.positional.clone().or(options.wal.clone());
            let Some(dir) = dir else {
                eprintln!(
                    "usage: igepa-experiments recover <dir> [--shards n] [--seed n] [--scale x]"
                );
                std::process::exit(2);
            };
            let shards = options.shards.unwrap_or(1).max(1);
            match run_recover_study(&settings, std::path::Path::new(&dir), shards) {
                Ok(report) => {
                    println!("{}", report.to_markdown());
                    if !report.passed() {
                        eprintln!("recovered state FAILED its integrity checks");
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("recovery from {dir} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "all" => {
            let mut shape = ShapeReport::default();

            let table1 = run_table1(&settings);
            shape.checks.extend(check_table_ordering(&table1, 0.02));
            emit_table(table1, &options);

            for report in run_all_figure1(&settings) {
                let monotone = matches!(report.id.as_str(), "fig1a" | "fig1b" | "fig1e" | "fig1f");
                shape.checks.extend(check_sweep(&report, monotone, 0.02));
                if report.id == "fig1b" {
                    shape.checks.extend(check_users_sweep_convergence(&report));
                }
                emit_sweep(report, &options);
            }

            let table2 = run_table2(&settings);
            shape.checks.extend(check_table_ordering(&table2, 0.02));
            emit_table(table2, &options);

            println!("{}", run_ratio_study(&settings, 10).to_markdown());
            emit_sweep(run_alpha_ablation(&settings), &options);
            emit_sweep(run_beta_ablation(&settings), &options);
            emit_table(run_backend_ablation(&settings), &options);
            emit_table(run_extension_ablation(&settings), &options);
            for report in run_interaction_ablation(&settings) {
                emit_table(report, &options);
            }
            emit_table(run_clustered_table(&settings), &options);
            emit_sweep(run_scalability(&settings), &options);
            emit_table(run_online_study(&settings), &options);
            println!(
                "{}",
                run_serve_study(&settings, options.deltas.unwrap_or(2_000)).to_markdown()
            );

            println!("### Shape checks (qualitative claims of the paper)\n");
            println!("{}", shape.to_markdown());
            if shape.all_passed() {
                println!("\nall shape checks passed");
            } else {
                println!("\n{} shape check(s) FAILED", shape.failures());
            }
        }
        other => {
            eprintln!("unknown command: {other}");
            print_usage();
            std::process::exit(2);
        }
    }
}

#[derive(Default)]
struct Options {
    reps: Option<usize>,
    paper_reps: bool,
    scale: Option<f64>,
    seed: Option<u64>,
    extensions: bool,
    exact_lp: bool,
    factor: Option<String>,
    csv_dir: Option<PathBuf>,
    deltas: Option<usize>,
    shards: Option<usize>,
    repair_threads: Option<usize>,
    listen: Option<String>,
    connect: Option<String>,
    churn: bool,
    wal: Option<String>,
    fsync: Option<String>,
    admission_cap: Option<usize>,
    fault_plan: Option<String>,
    grow_to: Option<usize>,
    grow_at: Option<usize>,
    /// First bare (non-`--`) argument after the command, e.g. the
    /// durability directory of `recover <dir>`.
    positional: Option<String>,
}

fn parse_options(args: &[String]) -> Options {
    let mut options = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                options.reps = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            "--paper-reps" => options.paper_reps = true,
            "--scale" => {
                options.scale = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            "--seed" => {
                options.seed = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            "--extensions" => options.extensions = true,
            "--exact-lp" => options.exact_lp = true,
            "--factor" => {
                options.factor = args.get(i + 1).cloned();
                i += 1;
            }
            "--csv-dir" => {
                options.csv_dir = args.get(i + 1).map(PathBuf::from);
                i += 1;
            }
            "--deltas" => {
                options.deltas = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            "--shards" => {
                options.shards = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            "--repair-threads" => {
                options.repair_threads = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            "--listen" => {
                options.listen = args.get(i + 1).cloned();
                i += 1;
            }
            "--churn" => options.churn = true,
            "--connect" => {
                options.connect = args.get(i + 1).cloned();
                i += 1;
            }
            "--wal" => {
                options.wal = args.get(i + 1).cloned();
                i += 1;
            }
            "--fsync" => {
                options.fsync = args.get(i + 1).cloned();
                i += 1;
            }
            "--admission-cap" => {
                options.admission_cap = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            "--fault-plan" => {
                options.fault_plan = args.get(i + 1).cloned();
                i += 1;
            }
            "--grow-to" => {
                options.grow_to = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            "--grow-at" => {
                options.grow_at = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            other => {
                if !other.starts_with("--") && options.positional.is_none() {
                    options.positional = Some(other.to_string());
                } else {
                    eprintln!("ignoring unknown option: {other}");
                }
            }
        }
        i += 1;
    }
    options
}

fn emit_table(report: TableReport, options: &Options) {
    println!("{}", report.to_markdown());
    write_csv(&report.id, &report.to_csv(), options);
}

fn emit_sweep(report: SweepReport, options: &Options) {
    println!("{}", report.to_markdown());
    write_csv(&report.id, &report.to_csv(), options);
}

fn write_csv(id: &str, csv: &str, options: &Options) {
    if let Some(dir) = &options.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{id}.csv"));
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("cannot write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

fn print_usage() {
    println!(
        "igepa-experiments — reproduce the tables and figures of the IGEPA paper\n\n\
         Usage: igepa-experiments <table1|table2|figure1|figure1-all|ratio|ablations|clustered|scalability|online|serve|overload|reshard|recover|all> [options]\n\n\
         Options:\n\
           --reps <n>       repetitions per configuration (default 10)\n\
           --paper-reps     use the paper's 50 repetitions\n\
           --scale <x>      scale |V| and |U| by x (default 1.0)\n\
           --seed <n>       base random seed\n\
           --factor <f>     subfigure for `figure1`: a..f, events, users, pcf, pdeg,\n\
                            event-capacity, user-capacity\n\
           --extensions     also run LocalSearch and Online-Greedy\n\
           --exact-lp       force the exact simplex LP backend\n\
           --csv-dir <dir>  also write CSV files into <dir>\n\
           --deltas <n>     trace length for `serve` (default 10000)\n\
           --shards <n>     shard count for `serve` (default 1 = monolithic)\n\
           --repair-threads <n>  intra-shard repair threads for `serve`\n\
                            (default 1; any count yields bit-identical state)\n\
           --churn          announcement-heavy trace for `serve` (event churn)\n\
           --listen <addr>  serve over TCP (with --deltas: in-process loopback\n\
                            smoke incl. feasibility check; without: serve forever)\n\
           --connect <addr> drive a --listen server from this process\n\
           --wal <dir>      with `serve --listen`: durable serving — write-ahead\n\
                            log + checkpoints in <dir>, auto-recovery on restart;\n\
                            `recover <dir>` rebuilds and verifies after a crash\n\
           --fsync <p>      WAL fsync policy: off, always (default), every=N,\n\
                            interval=MS\n\
           --admission-cap <n>  for `overload`: dispatch-queue cap; mutations\n\
                            beyond it are refused with a typed Overloaded error\n\
                            (default 2)\n\
           --fault-plan <s> for `overload`: deterministic fault spec, e.g.\n\
                            seed=7,slow=250,slow_ms=2,drop=50,walfail=40\n\
                            (default slow=1000,slow_ms=1)\n\
           --grow-to <n>    with `serve --listen`: elastic smoke — issue a live\n\
                            Reshard to <n> shards mid-trace; fails on any\n\
                            rejection or an infeasible exit\n\
           --grow-at <i>    delta index the mid-trace Reshard is issued at\n\
                            (default half the trace); `reshard --connect <addr>\n\
                            --shards <n>` live-reshards a running server"
    );
}
