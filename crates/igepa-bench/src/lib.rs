//! # igepa-bench — shared helpers for the Criterion benchmark harness
//!
//! The benches regenerate every table and figure of the paper on scaled-down
//! workloads (Criterion measures wall-clock; the utility *numbers* for the
//! full-scale reproduction come from the `igepa-experiments` binary, see
//! EXPERIMENTS.md). This crate only hosts small helpers shared by the bench
//! targets so that each bench file stays focused on its paper artefact.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use igepa_algos::{ArrangementAlgorithm, GreedyArrangement, LpPacking, RandomU, RandomV};
use igepa_core::Instance;
use igepa_datagen::SyntheticConfig;

/// The four algorithms compared throughout the paper's evaluation.
pub fn paper_roster() -> Vec<(&'static str, Box<dyn ArrangementAlgorithm>)> {
    vec![
        (
            "LP-packing",
            Box::new(LpPacking::default()) as Box<dyn ArrangementAlgorithm>,
        ),
        ("GG", Box::new(GreedyArrangement)),
        ("Random-U", Box::new(RandomU)),
        ("Random-V", Box::new(RandomV)),
    ]
}

/// Scaled-down Table I default used by the benches (10% of paper scale keeps
/// a full `cargo bench` run in the minutes range).
pub fn bench_default_config() -> SyntheticConfig {
    SyntheticConfig {
        num_events: 20,
        num_users: 200,
        max_event_capacity: 10,
        max_user_capacity: 4,
        bids_per_user: 6,
        ..SyntheticConfig::default()
    }
}

/// Runs one algorithm on one instance and returns the achieved utility
/// (used as the benched unit of work).
pub fn run_once(algorithm: &dyn ArrangementAlgorithm, instance: &Instance, seed: u64) -> f64 {
    algorithm.run_seeded(instance, seed).utility(instance).total
}

/// Machine-readable benchmark reporting: scenario → latency summary,
/// written as one JSON file (`BENCH_engine.json` for the engine bench) so
/// the perf trajectory is tracked across PRs — CI uploads the file as an
/// artifact next to the human-readable bench output.
pub mod bench_json {
    use igepa_engine::LatencySummary;
    use serde::Serialize;

    /// One recorded scenario.
    #[derive(Debug, Clone, Serialize)]
    pub struct Scenario {
        /// Scenario name, `group/case/param` style.
        pub name: String,
        /// Per-unit latency distribution (µs): mean, p50, p95, p99, max.
        pub latency: LatencySummary,
        /// Number of latency samples behind the summary.
        pub samples: usize,
    }

    /// Collects scenarios and writes them out at the end of a bench run.
    #[derive(Debug, Default)]
    pub struct BenchReport {
        scenarios: Vec<Scenario>,
    }

    impl BenchReport {
        /// An empty report.
        pub fn new() -> Self {
            Self::default()
        }

        /// Records one scenario from raw per-unit latencies (µs).
        pub fn record(&mut self, name: impl Into<String>, latencies_us: Vec<f64>) {
            self.scenarios.push(Scenario {
                name: name.into(),
                samples: latencies_us.len(),
                latency: LatencySummary::from_latencies(latencies_us),
            });
        }

        /// Mean latency (µs) of a recorded scenario, for cross-scenario
        /// ratios inside the bench itself.
        pub fn mean_of(&self, name: &str) -> Option<f64> {
            self.scenarios
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.latency.mean_us)
        }

        /// Serializes the report as pretty JSON.
        pub fn to_json(&self) -> String {
            // The vendored serde derive does not support generics, so the
            // document wrapper owns its scenarios.
            #[derive(Serialize)]
            struct Document {
                scenarios: Vec<Scenario>,
            }
            serde_json::to_string_pretty(&Document {
                scenarios: self.scenarios.clone(),
            })
            .expect("bench report serializes")
        }

        /// Writes the report to `path` (or the `BENCH_JSON_PATH` env
        /// override) and prints where it went.
        pub fn write(&self, default_path: &str) {
            let path =
                std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| default_path.to_string());
            std::fs::write(&path, self.to_json()).expect("bench report writes");
            println!("bench report: {} scenarios -> {path}", self.scenarios.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_datagen::generate_synthetic;

    #[test]
    fn roster_has_the_four_paper_algorithms() {
        let names: Vec<&str> = paper_roster().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["LP-packing", "GG", "Random-U", "Random-V"]);
    }

    #[test]
    fn run_once_produces_positive_utility_on_the_bench_config() {
        let instance = generate_synthetic(&bench_default_config(), 1);
        for (name, algorithm) in paper_roster() {
            let utility = run_once(algorithm.as_ref(), &instance, 1);
            assert!(utility > 0.0, "{name} scored zero");
        }
    }
}
