//! # igepa-bench — shared helpers for the Criterion benchmark harness
//!
//! The benches regenerate every table and figure of the paper on scaled-down
//! workloads (Criterion measures wall-clock; the utility *numbers* for the
//! full-scale reproduction come from the `igepa-experiments` binary, see
//! EXPERIMENTS.md). This crate only hosts small helpers shared by the bench
//! targets so that each bench file stays focused on its paper artefact.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use igepa_algos::{ArrangementAlgorithm, GreedyArrangement, LpPacking, RandomU, RandomV};
use igepa_core::Instance;
use igepa_datagen::SyntheticConfig;

/// The four algorithms compared throughout the paper's evaluation.
pub fn paper_roster() -> Vec<(&'static str, Box<dyn ArrangementAlgorithm>)> {
    vec![
        (
            "LP-packing",
            Box::new(LpPacking::default()) as Box<dyn ArrangementAlgorithm>,
        ),
        ("GG", Box::new(GreedyArrangement)),
        ("Random-U", Box::new(RandomU)),
        ("Random-V", Box::new(RandomV)),
    ]
}

/// Scaled-down Table I default used by the benches (10% of paper scale keeps
/// a full `cargo bench` run in the minutes range).
pub fn bench_default_config() -> SyntheticConfig {
    SyntheticConfig {
        num_events: 20,
        num_users: 200,
        max_event_capacity: 10,
        max_user_capacity: 4,
        bids_per_user: 6,
        ..SyntheticConfig::default()
    }
}

/// Runs one algorithm on one instance and returns the achieved utility
/// (used as the benched unit of work).
pub fn run_once(algorithm: &dyn ArrangementAlgorithm, instance: &Instance, seed: u64) -> f64 {
    algorithm.run_seeded(instance, seed).utility(instance).total
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_datagen::generate_synthetic;

    #[test]
    fn roster_has_the_four_paper_algorithms() {
        let names: Vec<&str> = paper_roster().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["LP-packing", "GG", "Random-U", "Random-V"]);
    }

    #[test]
    fn run_once_produces_positive_utility_on_the_bench_config() {
        let instance = generate_synthetic(&bench_default_config(), 1);
        for (name, algorithm) in paper_roster() {
            let utility = run_once(algorithm.as_ref(), &instance, 1);
            assert!(utility > 0.0, "{name} scored zero");
        }
    }
}
