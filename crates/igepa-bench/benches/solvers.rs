//! Solver micro-benchmarks: the exact simplex vs the approximate packing
//! solver on benchmark LPs of growing size, and admissible-set enumeration.
//!
//! These support the DESIGN.md claim that the dual-subgradient backend is
//! what makes the paper's larger sweeps (Fig. 1b) tractable without Gurobi.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use igepa_algos::{LpBackend, LpPacking};
use igepa_core::AdmissibleSetIndex;
use igepa_datagen::{generate_synthetic, SyntheticConfig};
use std::hint::black_box;

fn benchmark_lp_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("benchmark_lp_solvers");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &num_users in &[50usize, 150, 300] {
        let config = SyntheticConfig {
            num_events: 15,
            num_users,
            max_event_capacity: 8,
            max_user_capacity: 3,
            bids_per_user: 5,
            ..SyntheticConfig::default()
        };
        let instance = generate_synthetic(&config, 5);
        let admissible = AdmissibleSetIndex::build(&instance).unwrap();

        let simplex = LpPacking::with_backend(LpBackend::Simplex);
        group.bench_with_input(
            BenchmarkId::new("simplex", num_users),
            &instance,
            |b, instance| b.iter(|| black_box(simplex.solve_benchmark_lp(instance, &admissible))),
        );
        let subgradient = LpPacking::with_backend(LpBackend::DualSubgradient { rounds: 800 });
        group.bench_with_input(
            BenchmarkId::new("dual_subgradient", num_users),
            &instance,
            |b, instance| {
                b.iter(|| black_box(subgradient.solve_benchmark_lp(instance, &admissible)))
            },
        );
    }
    group.finish();
}

fn admissible_set_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("admissible_set_enumeration");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &bids in &[4usize, 8, 12] {
        let config = SyntheticConfig {
            num_events: 40,
            num_users: 300,
            max_user_capacity: 4,
            bids_per_user: bids,
            ..SyntheticConfig::default()
        };
        let instance = generate_synthetic(&config, 9);
        group.bench_with_input(
            BenchmarkId::new("bids_per_user", bids),
            &instance,
            |b, instance| {
                b.iter(|| black_box(AdmissibleSetIndex::build(instance).unwrap().total_sets()))
            },
        );
    }
    group.finish();
}

criterion_group!(solvers, benchmark_lp_solvers, admissible_set_enumeration);
criterion_main!(solvers);
