//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! the sampling parameter α, the LP backend, and the extension algorithms
//! (local search, online greedy) against the paper roster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use igepa_algos::{
    ArrangementAlgorithm, GreedyArrangement, LocalSearch, LpBackend, LpPacking, OnlineGreedy,
};
use igepa_bench::bench_default_config;
use igepa_datagen::generate_synthetic;
use std::hint::black_box;

fn alpha_ablation(c: &mut Criterion) {
    let instance = generate_synthetic(&bench_default_config(), 21);
    let mut group = c.benchmark_group("lp_packing_alpha");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &alpha in &[0.25f64, 0.5, 0.75, 1.0] {
        let algorithm = LpPacking {
            alpha,
            ..LpPacking::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(alpha),
            &instance,
            |b, instance| {
                b.iter(|| black_box(algorithm.run_seeded(instance, 3).utility(instance).total))
            },
        );
    }
    group.finish();
}

fn backend_ablation(c: &mut Criterion) {
    let instance = generate_synthetic(&bench_default_config(), 22);
    let mut group = c.benchmark_group("lp_packing_backend");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let backends: Vec<(&str, LpBackend)> = vec![
        ("simplex", LpBackend::Simplex),
        (
            "dual_subgradient_400",
            LpBackend::DualSubgradient { rounds: 400 },
        ),
        (
            "dual_subgradient_1600",
            LpBackend::DualSubgradient { rounds: 1600 },
        ),
    ];
    for (name, backend) in backends {
        let algorithm = LpPacking::with_backend(backend);
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &instance,
            |b, instance| {
                b.iter(|| black_box(algorithm.run_seeded(instance, 3).utility(instance).total))
            },
        );
    }
    group.finish();
}

fn extension_ablation(c: &mut Criterion) {
    let instance = generate_synthetic(&bench_default_config(), 23);
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let algorithms: Vec<(&str, Box<dyn ArrangementAlgorithm>)> = vec![
        ("GG", Box::new(GreedyArrangement)),
        ("GG+LocalSearch", Box::new(LocalSearch::default())),
        ("Online-Greedy", Box::new(OnlineGreedy::default())),
        ("LP-packing", Box::new(LpPacking::default())),
    ];
    for (name, algorithm) in algorithms {
        group.bench_function(name, |b| {
            b.iter(|| black_box(algorithm.run_seeded(&instance, 3).utility(&instance).total))
        });
    }
    group.finish();
}

criterion_group!(
    ablation,
    alpha_ablation,
    backend_ablation,
    extension_ablation
);
criterion_main!(ablation);
