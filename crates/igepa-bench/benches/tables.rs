//! Table I (default synthetic setting) and Table II (Meetup-SF) benchmark
//! groups: wall-clock of each algorithm on the corresponding workload.

use criterion::{criterion_group, criterion_main, Criterion};
use igepa_bench::{bench_default_config, paper_roster, run_once};
use igepa_datagen::{generate_meetup, generate_synthetic, MeetupConfig};
use std::hint::black_box;

fn table1_default(c: &mut Criterion) {
    let instance = generate_synthetic(&bench_default_config(), 11);
    let mut group = c.benchmark_group("table1_default");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for (name, algorithm) in paper_roster() {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_once(algorithm.as_ref(), &instance, 3)))
        });
    }
    group.finish();
}

fn table2_meetup(c: &mut Criterion) {
    // A quarter-scale Meetup-SF dataset keeps the LP small enough for a
    // timing benchmark while exercising the same code path as Table II.
    let config = MeetupConfig {
        num_events: 48,
        num_users: 700,
        ..MeetupConfig::paper_default()
    };
    let instance = generate_meetup(&config, 11);
    let mut group = c.benchmark_group("table2_meetup");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for (name, algorithm) in paper_roster() {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_once(algorithm.as_ref(), &instance, 3)))
        });
    }
    group.finish();
}

criterion_group!(tables, table1_default, table2_meetup);
criterion_main!(tables);
