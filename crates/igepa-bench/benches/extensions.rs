//! Benchmarks for the extensions beyond the paper: the heuristic roster,
//! the clustered workload generator, the social-network analysis substrate
//! and the LP presolve. These back the ablation rows of EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use igepa_algos::{
    ArrangementAlgorithm, BottleneckGreedy, GreedyArrangement, Lagrangian, LpDeterministic,
    LpPacking, SimulatedAnnealing, TabuSearch,
};
use igepa_bench::bench_default_config;
use igepa_core::{AdmissibleSetIndex, EventId};
use igepa_datagen::{generate_clustered_dataset, generate_synthetic, ClusteredConfig};
use igepa_graph::{
    betweenness_centrality, closeness_centrality, core_numbers, greedy_modularity,
    label_propagation, pagerank, PageRankConfig,
};
use igepa_lp::{presolve_and_solve, LinearProgram, SimplexSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
}

/// Heuristic roster on the scaled Table I workload (ablation-extensions).
fn heuristic_roster(c: &mut Criterion) {
    let instance = generate_synthetic(&bench_default_config(), 31);
    let algorithms: Vec<(&str, Box<dyn ArrangementAlgorithm>)> = vec![
        ("LP-packing", Box::new(LpPacking::default())),
        ("LP-deterministic", Box::new(LpDeterministic::default())),
        ("Lagrangian", Box::new(Lagrangian::default())),
        ("GG", Box::new(GreedyArrangement)),
        (
            "TabuSearch",
            Box::new(TabuSearch {
                iterations: 100,
                tenure: 20,
            }),
        ),
        (
            "SimulatedAnnealing",
            Box::new(SimulatedAnnealing {
                iterations: 5_000,
                ..SimulatedAnnealing::default()
            }),
        ),
        ("Bottleneck-greedy", Box::new(BottleneckGreedy)),
    ];
    let mut group = c.benchmark_group("extensions_heuristics");
    configure(&mut group);
    for (name, algorithm) in &algorithms {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &instance,
            |b, instance| {
                b.iter(|| black_box(algorithm.run_seeded(instance, 5).utility(instance).total))
            },
        );
    }
    group.finish();
}

/// Paper roster on the community-structured workload (clustered table).
fn clustered_workload(c: &mut Criterion) {
    let config = ClusteredConfig {
        num_events: 20,
        num_users: 200,
        ..ClusteredConfig::small()
    };
    let dataset = generate_clustered_dataset(&config, 17);
    let mut group = c.benchmark_group("clustered_workload");
    configure(&mut group);
    group.bench_function("generate", |b| {
        b.iter(|| black_box(generate_clustered_dataset(&config, 17).instance.num_bids()))
    });
    for (name, algorithm) in igepa_bench::paper_roster() {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &dataset.instance,
            |b, instance| {
                b.iter(|| black_box(algorithm.run_seeded(instance, 3).utility(instance).total))
            },
        );
    }
    group.finish();
}

/// Social-network analysis substrate on a clustered friendship graph.
fn graph_analysis(c: &mut Criterion) {
    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_users: 400,
            ..ClusteredConfig::small()
        },
        23,
    );
    let g = dataset.network;
    let mut group = c.benchmark_group("graph_analysis");
    configure(&mut group);
    group.bench_function("closeness", |b| {
        b.iter(|| black_box(closeness_centrality(&g).len()))
    });
    group.bench_function("betweenness", |b| {
        b.iter(|| black_box(betweenness_centrality(&g).len()))
    });
    group.bench_function("pagerank", |b| {
        b.iter(|| black_box(pagerank(&g, &PageRankConfig::default()).len()))
    });
    group.bench_function("core_numbers", |b| {
        b.iter(|| black_box(core_numbers(&g).len()))
    });
    group.bench_function("label_propagation", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(label_propagation(&g, 20, &mut rng).num_communities())
        })
    });
    group.bench_function("greedy_modularity", |b| {
        b.iter(|| black_box(greedy_modularity(&g).num_communities()))
    });
    group.finish();
}

/// Direct simplex vs presolve + simplex on the benchmark LP.
fn presolve_speedup(c: &mut Criterion) {
    let instance = generate_synthetic(&bench_default_config(), 41);
    let admissible = AdmissibleSetIndex::build(&instance).expect("enumerable");
    let mut lp = LinearProgram::new();
    let mut event_terms: Vec<Vec<(usize, f64)>> = vec![Vec::new(); instance.num_events()];
    for user_sets in admissible.iter() {
        let mut vars = Vec::new();
        for set in &user_sets.sets {
            let var = lp.add_var(instance.set_weight(user_sets.user, set), 1.0);
            vars.push(var);
            for &v in set {
                event_terms[v.index()].push((var, 1.0));
            }
        }
        if !vars.is_empty() {
            lp.add_le_constraint(vars.into_iter().map(|v| (v, 1.0)), 1.0)
                .unwrap();
        }
    }
    for (event_index, terms) in event_terms.into_iter().enumerate() {
        if !terms.is_empty() {
            let capacity = instance.event(EventId::new(event_index)).capacity as f64;
            lp.add_le_constraint(terms, capacity).unwrap();
        }
    }

    let mut group = c.benchmark_group("lp_presolve");
    configure(&mut group);
    group.bench_function("simplex_direct", |b| {
        b.iter(|| black_box(SimplexSolver::default().solve(&lp).unwrap().objective))
    });
    group.bench_function("presolve_then_simplex", |b| {
        b.iter(|| {
            black_box(
                presolve_and_solve(&lp, &SimplexSolver::default())
                    .unwrap()
                    .objective,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    heuristic_roster,
    clustered_workload,
    graph_analysis,
    presolve_speedup
);
criterion_main!(benches);
