//! Serving-engine benchmarks: warm-start repair vs cold re-solve across
//! delta-batch sizes.
//!
//! The claim under test: absorbing a delta through the engine's greedy
//! patch is much cheaper than re-running a solver from scratch, and the
//! advantage persists (though shrinks per delta) when deltas arrive in
//! bursts handled by one repair pass.

use criterion::{criterion_group, BenchmarkId, Criterion};
use igepa_algos::{ArrangementAlgorithm, GreedyArrangement};
use igepa_bench::bench_json::BenchReport;
use igepa_core::{
    AttributeVector, CapacityTarget, ConstantInterest, EventId, Instance, InstanceDelta,
    NeverConflict, UserId,
};
use igepa_datagen::{
    generate_clustered_dataset, generate_community_trace, generate_synthetic, generate_trace,
    ClusteredConfig, CommunityTraceConfig, DeltaTrace, SyntheticConfig, TraceConfig,
};
use igepa_engine::{
    BatchPolicy, Engine, EngineClient, EngineConfig, EngineQuery, EngineRequest, EngineServer,
    EngineService, Framing, Shard,
};
use igepa_experiments::sharded_serving_engine;
use std::hint::black_box;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn base_instance() -> Instance {
    generate_synthetic(
        &SyntheticConfig {
            num_events: 20,
            num_users: 200,
            bids_per_user: 5,
            ..SyntheticConfig::default()
        },
        3,
    )
}

fn trace_for(instance: &Instance, num_deltas: usize) -> DeltaTrace {
    generate_trace(
        instance,
        &TraceConfig {
            num_deltas,
            ..TraceConfig::default()
        },
        11,
    )
}

fn fresh_engine(instance: Instance) -> Engine {
    Engine::new(
        instance,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        EngineConfig {
            seed: 5,
            // Measure pure repair cost: no periodic cold solves mixed in.
            staleness_check_interval: 0,
            ..EngineConfig::default()
        },
    )
}

/// Warm path vs cold re-solve: one engine absorbs the whole trace in
/// `batch`-sized bursts, against re-solving from scratch per burst.
fn warm_engine_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_warm_vs_cold");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(900));

    let base = base_instance();
    let trace = trace_for(&base, 256);

    for &batch in &[1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("warm_repair", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut engine = fresh_engine(base.clone());
                    for chunk in trace.deltas.chunks(batch) {
                        let deltas: Vec<_> = chunk.iter().map(|t| t.delta.clone()).collect();
                        engine.apply_batch(&deltas).expect("trace deltas are valid");
                    }
                    black_box(engine.utility())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cold_resolve", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut instance = base.clone();
                    let solver = GreedyArrangement;
                    let mut utility = 0.0;
                    for (i, chunk) in trace.deltas.chunks(batch).enumerate() {
                        for timed in chunk {
                            instance
                                .apply_delta(&timed.delta, &NeverConflict, &ConstantInterest(0.5))
                                .expect("trace deltas are valid");
                        }
                        let arrangement = solver.run_seeded(&instance, i as u64);
                        utility = arrangement.utility_value(&instance);
                    }
                    black_box(utility)
                })
            },
        );
    }
    group.finish();
}

/// Single-delta absorption cost on growing instances (the serving hot path).
fn single_delta_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_single_delta");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));

    for &num_users in &[200usize, 800] {
        let base = generate_synthetic(
            &SyntheticConfig {
                num_events: 20,
                num_users,
                bids_per_user: 5,
                ..SyntheticConfig::default()
            },
            4,
        );
        let trace = trace_for(&base, 64);
        group.bench_with_input(BenchmarkId::new("apply", num_users), &num_users, |b, _| {
            b.iter(|| {
                let mut engine = fresh_engine(base.clone());
                for timed in &trace.deltas {
                    engine.apply(&timed.delta).expect("trace deltas are valid");
                }
                black_box(engine.arrangement().len())
            })
        });
    }
    group.finish();
}

/// Sharded vs monolithic per-delta latency on a partition-friendly
/// multi-community trace: the claim under test is that per-delta latency
/// *improves* as the shard count grows (each delta touches one smaller
/// repair loop, and staleness/escalation solves run over sub-instances).
fn sharded_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_sharded_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));

    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_events: 40,
            num_users: 600,
            num_communities: 8,
            ..ClusteredConfig::default()
        },
        17,
    );
    let base = dataset.instance.clone();
    let trace = generate_community_trace(
        &base,
        &dataset.event_communities,
        &CommunityTraceConfig::partition_friendly(512, 4),
        23,
    );
    let deltas: Vec<_> = trace.deltas.iter().map(|t| t.delta.clone()).collect();

    for &shards in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("replay", shards), &shards, |b, &shards| {
            b.iter(|| {
                // Same construction as the `serve --shards N` study, so the
                // bench measures exactly the configuration the study reports.
                let mut engine = sharded_serving_engine(base.clone(), 5, shards, 1);
                for delta in &deltas {
                    engine.apply(delta).expect("trace deltas are valid");
                }
                black_box(engine.utility())
            })
        });
    }
    group.finish();
}

/// Service-dispatch overhead: the same read query answered by an
/// in-process `EngineService` vs over the TCP loopback transport with 1
/// and 4 per-shard worker threads. Queries barrier the worker pool, so
/// the TCP numbers put the whole decode → barrier → answer → encode →
/// socket round-trip on the perf trajectory next to raw dispatch.
fn service_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_service_dispatch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(900));

    const QUERIES_PER_ITER: usize = 64;
    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_events: 40,
            num_users: 600,
            num_communities: 8,
            ..ClusteredConfig::default()
        },
        17,
    );
    let base = dataset.instance.clone();

    group.bench_function("in_process", |b| {
        let mut service = EngineService::new(sharded_serving_engine(base.clone(), 5, 4, 1));
        b.iter(|| {
            let mut total = 0.0;
            for _ in 0..QUERIES_PER_ITER {
                if let Ok(igepa_engine::EngineResponse::Utility { total: t, .. }) = service
                    .try_handle(&igepa_engine::EngineRequest::Query {
                        query: EngineQuery::Utility,
                    })
                {
                    total += t;
                }
            }
            black_box(total)
        })
    });

    for &workers in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("tcp_loopback", workers),
            &workers,
            |b, &workers| {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let handle = EngineServer::serve_sharded(
                    listener,
                    sharded_serving_engine(base.clone(), 5, workers, 1),
                    Framing::Lines,
                )
                .unwrap();
                let mut client =
                    EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
                b.iter(|| {
                    let mut total = 0.0;
                    for _ in 0..QUERIES_PER_ITER {
                        if let Ok(igepa_engine::EngineResponse::Utility { total: t, .. }) =
                            client.query(EngineQuery::Utility)
                        {
                            total += t;
                        }
                    }
                    black_box(total)
                });
                drop(client);
                handle.shutdown().unwrap();
            },
        );
    }
    group.finish();
}

// ------------------------------------------------------------------------
// Machine-readable scenarios: everything below is measured with fixed
// iteration counts and written to `BENCH_engine.json` (mean/p50/p99 per
// scenario) so the perf trajectory is tracked across PRs. CI uploads the
// file as an artifact.

/// Whether a delta is event-scoped, i.e. broadcasts to every shard.
fn is_broadcast(delta: &InstanceDelta) -> bool {
    matches!(
        delta,
        InstanceDelta::AddEvent { .. }
            | InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(_),
                ..
            }
    )
}

/// The announcement-heavy workload: a large-catalogue clustered base
/// instance plus a catalogue-churn trace (high `AddEvent` /
/// event-capacity mix) — the historical sharding anti-pattern. The event
/// catalogue dominates the state (|V| ≈ |U|), as on a platform whose
/// event inventory churns faster than its user base.
fn churn_setup() -> (Instance, Vec<InstanceDelta>) {
    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_events: 2400,
            num_users: 400,
            num_communities: 8,
            ..ClusteredConfig::default()
        },
        17,
    );
    let trace = generate_community_trace(
        &dataset.instance,
        &dataset.event_communities,
        &CommunityTraceConfig::announcement_heavy(800, 4),
        29,
    );
    (
        dataset.instance,
        trace.deltas.into_iter().map(|t| t.delta).collect(),
    )
}

/// The catalogue-backed engine under test in the churn scenarios:
/// identical repair knobs to the replicated baseline, with periodic
/// reconciliation disabled on **both** sides — reconciliation is
/// orthogonal to event-state propagation (its code is unchanged by the
/// catalogue) and would otherwise land its periodic cost on arbitrary
/// deltas of whichever side triggers it.
fn churn_engine(base: Instance, shards: usize) -> igepa_engine::ShardedEngine {
    igepa_engine::ShardedEngine::new(
        base,
        Box::new(igepa_core::TimeOverlapConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(igepa_core::HashPartitioner),
        igepa_engine::ShardedConfig {
            num_shards: shards,
            shard: EngineConfig {
                seed: 5,
                // Staleness checks are symmetric machinery (identical code
                // both sides); which delta their cold solve lands on is
                // chance that swamps the propagation signal at this sample
                // count, so the comparison disables them on both sides.
                staleness_check_interval: 0,
                ..EngineConfig::default()
            },
            reconcile_interval: 0,
            reconcile_rounds: 3,
        },
    )
}

/// The pre-catalogue architecture, reconstructed for an apples-to-apples
/// baseline: a full-capacity mirror instance plus `k` engines, each
/// owning a **private full event view** (its own conflict matrix and
/// interest table) over its slice of the users — so every event broadcast
/// is applied k+1 times, exactly as the sharded engine worked before the
/// shared catalogue. User deltas route to one engine; only broadcasts are
/// timed.
struct ReplicatedBaseline {
    mirror: Instance,
    engines: Vec<Engine>,
    /// Global user id → (engine, engine-local user id).
    owners: Vec<(usize, UserId)>,
}

/// Largest-remainder split of `capacity` proportional to `weights` (even
/// when all weights are zero) — the same quota arithmetic the sharded
/// coordinator uses, reproduced here so the baseline's engines see the
/// per-shard quotas the real pre-catalogue shards saw, not k× the true
/// capacity.
fn quota_split(capacity: usize, weights: &[usize]) -> Vec<usize> {
    let n = weights.len().max(1);
    let total: usize = weights.iter().sum();
    if total == 0 {
        let base = capacity / n;
        let rem = capacity % n;
        return (0..n).map(|k| base + usize::from(k < rem)).collect();
    }
    let mut parts: Vec<usize> = weights.iter().map(|&w| capacity * w / total).collect();
    let mut remainder = capacity - parts.iter().sum::<usize>();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&k| (std::cmp::Reverse(capacity * weights[k] % total), k));
    for &k in &order {
        if remainder == 0 {
            break;
        }
        parts[k] += 1;
        remainder -= 1;
    }
    parts
}

impl ReplicatedBaseline {
    fn new(base: &Instance, shards: usize) -> Self {
        let mut locals: Vec<Vec<UserId>> = vec![Vec::new(); shards];
        let mut owners = Vec::with_capacity(base.num_users());
        for u in 0..base.num_users() {
            let k = u % shards;
            owners.push((k, UserId::new(locals[k].len())));
            locals[k].push(UserId::new(u));
        }
        // Initial quotas proportional to each shard's bidder count, as
        // the pre-catalogue coordinator dealt them.
        let quotas: Vec<Vec<usize>> = base
            .events()
            .iter()
            .map(|event| {
                let mut bidders = vec![0usize; shards];
                for &u in &event.bidders {
                    bidders[u.index() % shards] += 1;
                }
                quota_split(event.capacity, &bidders)
            })
            .collect();
        let engines = (0..shards)
            .map(|k| {
                let mut b = Instance::builder();
                for event in base.events() {
                    b.add_event(quotas[event.id.index()][k], event.attrs.clone());
                }
                for &g in &locals[k] {
                    let user = base.user(g);
                    b.add_user(user.capacity, user.attrs.clone(), user.bids.clone());
                }
                b.interaction_scores(locals[k].iter().map(|&g| base.interaction(g)).collect());
                let sub = b
                    .build(&igepa_core::TimeOverlapConflict, &ConstantInterest(0.5))
                    .expect("baseline sub-instance is valid");
                Engine::new(
                    sub,
                    Box::new(igepa_core::TimeOverlapConflict),
                    Box::new(ConstantInterest(0.5)),
                    Box::new(GreedyArrangement),
                    EngineConfig {
                        seed: 5 + k as u64,
                        staleness_check_interval: 0,
                        ..EngineConfig::default()
                    },
                )
            })
            .collect();
        ReplicatedBaseline {
            mirror: base.clone(),
            engines,
            owners,
        }
    }

    /// Applies one broadcast delta to the mirror and every engine — with
    /// the same per-shard quota splits the pre-catalogue coordinator
    /// computed (even deal for announcements, load-preserving re-split
    /// for capacity edits) — returning the wall time of the k+1
    /// applications. User deltas route to their owner untimed.
    fn apply(&mut self, delta: &InstanceDelta) -> Option<f64> {
        if is_broadcast(delta) {
            let shards = self.engines.len();
            let start = Instant::now();
            self.mirror
                .apply_delta(
                    delta,
                    &igepa_core::TimeOverlapConflict,
                    &ConstantInterest(0.5),
                )
                .expect("trace deltas are valid");
            match delta {
                InstanceDelta::AddEvent { capacity, attrs } => {
                    let split = quota_split(*capacity, &vec![0usize; shards]);
                    for (k, engine) in self.engines.iter_mut().enumerate() {
                        engine
                            .apply(&InstanceDelta::AddEvent {
                                capacity: split[k],
                                attrs: attrs.clone(),
                            })
                            .expect("broadcasts are valid everywhere");
                    }
                }
                InstanceDelta::UpdateCapacity {
                    target: CapacityTarget::Event(event),
                    capacity,
                } => {
                    // Load-preserving re-split, as the old coordinator's
                    // resplit_event: keep each shard's current seating
                    // where the total allows, deal slack by bidders,
                    // shrink proportional to loads otherwise.
                    let loads: Vec<usize> = self
                        .engines
                        .iter()
                        .map(|e| e.arrangement().load_of(*event))
                        .collect();
                    let total_load: usize = loads.iter().sum();
                    let quotas = if *capacity >= total_load {
                        let bidders: Vec<usize> = self
                            .engines
                            .iter()
                            .map(|e| e.instance().event(*event).num_bidders())
                            .collect();
                        let slack = quota_split(*capacity - total_load, &bidders);
                        loads.iter().zip(slack).map(|(&l, s)| l + s).collect()
                    } else {
                        quota_split(*capacity, &loads)
                    };
                    for (k, engine) in self.engines.iter_mut().enumerate() {
                        engine
                            .apply(&InstanceDelta::UpdateCapacity {
                                target: CapacityTarget::Event(*event),
                                capacity: quotas[k],
                            })
                            .expect("broadcasts are valid everywhere");
                    }
                }
                _ => unreachable!("is_broadcast covers exactly these kinds"),
            }
            return Some(start.elapsed().as_nanos() as f64 / 1_000.0);
        }
        self.mirror
            .apply_delta(
                delta,
                &igepa_core::TimeOverlapConflict,
                &ConstantInterest(0.5),
            )
            .expect("trace deltas are valid");
        let (k, local) = match delta {
            InstanceDelta::AddUser { .. } => {
                let global = self.mirror.num_users() - 1;
                let k = global % self.engines.len();
                let local = UserId::new(self.engines[k].instance().num_users());
                self.owners.push((k, local));
                (k, local)
            }
            InstanceDelta::RemoveUser { user }
            | InstanceDelta::UpdateBids { user, .. }
            | InstanceDelta::UpdateInteractionScore { user, .. }
            | InstanceDelta::UpdateCapacity {
                target: CapacityTarget::User(user),
                ..
            } => self.owners[user.index()],
            _ => unreachable!("broadcasts handled above"),
        };
        let rewritten = match delta {
            InstanceDelta::AddUser { .. } => delta.clone(),
            InstanceDelta::RemoveUser { .. } => InstanceDelta::RemoveUser { user: local },
            InstanceDelta::UpdateBids { bids, .. } => InstanceDelta::UpdateBids {
                user: local,
                bids: bids.clone(),
            },
            InstanceDelta::UpdateInteractionScore { score, .. } => {
                InstanceDelta::UpdateInteractionScore {
                    user: local,
                    score: *score,
                }
            }
            InstanceDelta::UpdateCapacity { capacity, .. } => InstanceDelta::UpdateCapacity {
                target: CapacityTarget::User(local),
                capacity: *capacity,
            },
            _ => unreachable!(),
        };
        self.engines[k]
            .apply(&rewritten)
            .expect("user deltas are valid on the owner");
        None
    }
}

/// Event-churn scenarios: catalogue-backed sharded engine vs the
/// replicated pre-catalogue baseline, per-broadcast latency at 1/2/4
/// shards, plus the end-to-end all-delta latency of the catalogue path.
fn churn_scenarios(report: &mut BenchReport) {
    let (base, deltas) = churn_setup();
    // The first few announcements trigger the one-time doubling of the
    // conflict/interest tables (and, catalogue-side, the first CoW buffer
    // split) — one-off costs that would swamp a 288-sample mean. Both
    // sides absorb a warm-in prefix untimed and are measured at steady
    // state.
    const WARM_IN: usize = 64;
    // One untimed warm-up replay per side, so neither pays the process's
    // cold caches and page faults.
    {
        let mut engine = churn_engine(base.clone(), 2);
        for delta in &deltas {
            engine.apply(delta).expect("trace deltas are valid");
        }
        black_box(engine.utility());
        let mut baseline = ReplicatedBaseline::new(&base, 2);
        for delta in &deltas {
            baseline.apply(delta);
        }
    }
    for &shards in &[1usize, 2, 4] {
        let mut engine = churn_engine(base.clone(), shards);
        let mut announce_us = Vec::new();
        let mut capacity_us = Vec::new();
        let mut all_us = Vec::new();
        for (i, delta) in deltas.iter().enumerate() {
            let start = Instant::now();
            engine.apply(delta).expect("trace deltas are valid");
            let us = start.elapsed().as_nanos() as f64 / 1_000.0;
            if i < WARM_IN {
                continue;
            }
            all_us.push(us);
            match delta {
                InstanceDelta::AddEvent { .. } => announce_us.push(us),
                InstanceDelta::UpdateCapacity {
                    target: CapacityTarget::Event(_),
                    ..
                } => capacity_us.push(us),
                _ => {}
            }
        }
        black_box(engine.utility());
        report.record(
            format!("event_churn/announce_catalog/{shards}"),
            announce_us,
        );
        report.record(
            format!("event_churn/capacity_catalog/{shards}"),
            capacity_us,
        );
        report.record(format!("event_churn/all_catalog/{shards}"), all_us);
    }
    for &shards in &[1usize, 2, 4] {
        let mut baseline = ReplicatedBaseline::new(&base, shards);
        let mut announce_us = Vec::new();
        let mut capacity_us = Vec::new();
        for (i, delta) in deltas.iter().enumerate() {
            if let Some(us) = baseline.apply(delta) {
                if i < WARM_IN {
                    continue;
                }
                match delta {
                    InstanceDelta::AddEvent { .. } => announce_us.push(us),
                    _ => capacity_us.push(us),
                }
            }
        }
        report.record(
            format!("event_churn/announce_replicated/{shards}"),
            announce_us,
        );
        report.record(
            format!("event_churn/capacity_replicated/{shards}"),
            capacity_us,
        );
    }
    for &shards in &[1usize, 2, 4] {
        let speedup = report
            .mean_of(&format!("event_churn/announce_replicated/{shards}"))
            .zip(report.mean_of(&format!("event_churn/announce_catalog/{shards}")))
            .map(|(replicated, catalog)| replicated / catalog);
        println!(
            "event_churn: {shards}-shard announcement speedup (replicated/catalog): {:.2}x",
            speedup.unwrap_or(f64::NAN)
        );
    }
}

/// O(1)-utility-tracking scenarios (PR 5): what the tracker removed from
/// the apply hot path, at serving scale.
///
/// * `apply_tracked/{users}` — per-delta apply latency of the current
///   engine: scoring is the tracker's O(changed pairs) updates and the
///   outcome utility is an O(1) read.
/// * `apply_recompute_baseline/{users}` — the same applies plus one
///   from-scratch `Arrangement::utility` fold per apply, reconstructing
///   what every apply paid before the tracker (the engine recomputed the
///   full O(|M|) breakdown for each outcome and shard view).
/// * `users_of_index/{users}` vs `users_of_scan/{users}` — listing an
///   event's attendees via the reverse attendee index (O(1) slice
///   borrow) vs the reconstructed pre-index full-user membership scan
///   that `greedy_patch` used to pay per dirty event.
fn utility_tracking_scenarios(report: &mut BenchReport) {
    for &num_users in &[10_000usize, 100_000] {
        let base = generate_synthetic(
            &SyntheticConfig {
                num_events: 50,
                num_users,
                bids_per_user: 4,
                ..SyntheticConfig::default()
            },
            7,
        );
        let trace = trace_for(&base, 256);

        let mut engine = fresh_engine(base.clone());
        let mut tracked_us = Vec::with_capacity(trace.deltas.len());
        for timed in &trace.deltas {
            let start = Instant::now();
            engine.apply(&timed.delta).expect("trace deltas are valid");
            tracked_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
        }
        black_box(engine.utility());
        report.record(
            format!("utility_tracking/apply_tracked/{num_users}"),
            tracked_us,
        );

        let mut engine = fresh_engine(base.clone());
        let mut recompute_us = Vec::with_capacity(trace.deltas.len());
        for timed in &trace.deltas {
            let start = Instant::now();
            engine.apply(&timed.delta).expect("trace deltas are valid");
            // The pre-tracker engine folded the full breakdown inside
            // every apply; reconstruct that cost explicitly.
            black_box(engine.arrangement().utility(engine.instance()));
            recompute_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
        }
        report.record(
            format!("utility_tracking/apply_recompute_baseline/{num_users}"),
            recompute_us,
        );

        // Attendee listing: reverse index vs reconstructed full scan. A
        // single indexed call is a ~ns slice borrow — far below
        // `Instant::now()` overhead — so each recorded sample times a
        // batch of `REPS` calls and divides, keeping the published
        // numbers an honest per-call cost rather than a timer floor.
        const REPS: usize = 1_000;
        let arrangement = engine.arrangement();
        let mut index_us = Vec::new();
        let mut scan_us = Vec::new();
        for v in 0..base.num_events() {
            let v = igepa_core::EventId::new(v);
            let start = Instant::now();
            let mut indexed = 0usize;
            for _ in 0..REPS {
                indexed = black_box(black_box(&arrangement).users_of(v).len());
            }
            index_us.push(start.elapsed().as_nanos() as f64 / 1_000.0 / REPS as f64);

            let start = Instant::now();
            let mut scanned = 0usize;
            for u in 0..arrangement.num_users() {
                if arrangement.contains(v, UserId::new(u)) {
                    scanned += 1;
                }
            }
            scan_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
            assert_eq!(indexed, scanned, "index diverged from scan");
        }
        report.record(
            format!("utility_tracking/users_of_index/{num_users}"),
            index_us,
        );
        report.record(
            format!("utility_tracking/users_of_scan/{num_users}"),
            scan_us,
        );
    }
}

/// O(changed) view-shipping scenarios (this PR): what diff-shipped cache
/// views remove from the per-apply install path, at serving scale.
///
/// * `view_diff/diff_apply/{users}` — patching the installed assignment
///   snapshot with the `ArrangementDiff` the shard recorded during the
///   apply (the worker → query-cache hot path). O(changed pairs).
/// * `view_diff/clone_from/{users}` — the pre-diff protocol: a full
///   `clone_from` of the shard's arrangement per apply. O(shard pairs)
///   even when the apply changed two rows.
///
/// Wholesale rebuilds (full re-solves, batch solves) return no diff; the
/// real protocol ships a full snapshot there on both sides, so those
/// applies resync the diff-side view untimed rather than polluting the
/// diff samples.
fn view_diff_scenarios(report: &mut BenchReport) {
    for &num_users in &[10_000usize, 100_000] {
        let base = generate_synthetic(
            &SyntheticConfig {
                num_events: 50,
                num_users,
                bids_per_user: 4,
                ..SyntheticConfig::default()
            },
            7,
        );
        let trace = trace_for(&base, 256);
        let mut shard = Shard::new(
            base.clone(),
            Arc::new(NeverConflict),
            Arc::new(ConstantInterest(0.5)),
            Arc::new(GreedyArrangement),
            EngineConfig {
                seed: 5,
                staleness_check_interval: 0,
                ..EngineConfig::default()
            },
        );
        let mut diff_view = shard.arrangement().clone();
        let mut full_view = shard.arrangement().clone();
        let _ = shard.take_view_diff();
        let mut diff_us = Vec::new();
        let mut clone_us = Vec::new();
        let mut resyncs = 0usize;
        for timed in &trace.deltas {
            shard.apply(&timed.delta).expect("trace deltas are valid");
            match shard.take_view_diff() {
                Some(diff) => {
                    let start = Instant::now();
                    diff_view.apply_diff(&diff);
                    diff_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
                }
                None => {
                    diff_view.clone_from(shard.arrangement());
                    resyncs += 1;
                }
            }
            let start = Instant::now();
            full_view.clone_from(shard.arrangement());
            clone_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
        }
        assert_eq!(diff_view, full_view, "diff-patched view diverged");
        println!(
            "view_diff/{num_users}: {} diff installs, {resyncs} full resyncs",
            diff_us.len()
        );
        report.record(format!("view_diff/diff_apply/{num_users}"), diff_us);
        report.record(format!("view_diff/clone_from/{num_users}"), clone_us);
    }
    for &num_users in &[10_000usize, 100_000] {
        let speedup = report
            .mean_of(&format!("view_diff/clone_from/{num_users}"))
            .zip(report.mean_of(&format!("view_diff/diff_apply/{num_users}")))
            .map(|(clone, diff)| clone / diff);
        println!(
            "view_diff: {num_users}-user install speedup (clone_from/diff_apply): {:.1}x",
            speedup.unwrap_or(f64::NAN)
        );
    }
}

/// Component-parallel repair scenarios (this PR): per-batch apply latency
/// of capacity-edit bursts whose dirty sets split into independent
/// repair-interference components, at 1/2/4 repair threads.
///
/// The instance is built from `GROUPS` disjoint bid groups — every user
/// bids only inside their group — so a burst that edits one event per
/// group dirties exactly `GROUPS` components with no interference edges
/// between them. Threads change where the component repairs run, never
/// what they produce: the final utilities are asserted bit-identical
/// across the three configurations.
fn parallel_repair_scenarios(report: &mut BenchReport) {
    const GROUPS: usize = 8;
    const EVENTS_PER_GROUP: usize = 8;
    const USERS_PER_GROUP: usize = 4_000;
    const ROUNDS: usize = 48;

    let mut b = Instance::builder();
    let events: Vec<Vec<EventId>> = (0..GROUPS)
        .map(|_| {
            (0..EVENTS_PER_GROUP)
                .map(|_| b.add_event(USERS_PER_GROUP / 4, AttributeVector::empty()))
                .collect()
        })
        .collect();
    for (g, group) in events.iter().enumerate() {
        for u in 0..USERS_PER_GROUP {
            let mut bids: Vec<EventId> = (0..3)
                .map(|i| group[(u + g + i * 3) % EVENTS_PER_GROUP])
                .collect();
            bids.sort_unstable();
            bids.dedup();
            b.add_user(2, AttributeVector::empty(), bids);
        }
    }
    b.interaction_scores(
        (0..GROUPS * USERS_PER_GROUP)
            .map(|u| (u as f64 * 0.13) % 1.0)
            .collect(),
    );
    let base = b
        .build(&NeverConflict, &ConstantInterest(0.5))
        .expect("grouped instance is valid");

    let mut utilities = Vec::new();
    for &threads in &[1usize, 2, 4] {
        let mut engine = Engine::new(
            base.clone(),
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            EngineConfig {
                seed: 5,
                staleness_check_interval: 0,
                repair_threads: threads,
                ..EngineConfig::default()
            },
        );
        let mut batch_us = Vec::with_capacity(ROUNDS);
        for round in 0..ROUNDS {
            let shrink = round % 2 == 0;
            let deltas: Vec<InstanceDelta> = (0..GROUPS)
                .map(|g| InstanceDelta::UpdateCapacity {
                    target: CapacityTarget::Event(events[g][(round / 2) % EVENTS_PER_GROUP]),
                    capacity: if shrink {
                        USERS_PER_GROUP / 8
                    } else {
                        USERS_PER_GROUP / 4
                    },
                })
                .collect();
            let start = Instant::now();
            engine
                .apply_batch(&deltas)
                .expect("capacity edits are valid");
            batch_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
        }
        utilities.push(engine.utility());
        report.record(format!("parallel_repair/apply_batch/{threads}"), batch_us);
    }
    assert!(
        utilities
            .iter()
            .all(|u| u.to_bits() == utilities[0].to_bits()),
        "repair thread counts diverged: {utilities:?}"
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for &threads in &[2usize, 4] {
        let speedup = report
            .mean_of("parallel_repair/apply_batch/1")
            .zip(report.mean_of(&format!("parallel_repair/apply_batch/{threads}")))
            .map(|(serial, parallel)| serial / parallel);
        println!(
            "parallel_repair: {threads}-thread batch speedup over serial: {:.2}x \
             ({cores} core(s) available)",
            speedup.unwrap_or(f64::NAN)
        );
    }
    if cores < 2 {
        println!(
            "parallel_repair: single-core host — thread scaling is not measurable here; \
             the rows above capture the component-split overhead only (spawns are \
             clamped to available parallelism, results stay bit-identical)"
        );
    }
}

/// Measures the cost-model unit constants with the engine's own online
/// calibration: drive a churny trace through a calibrating engine and
/// report the converged EWMA estimates. NOTE: for these two scenarios the
/// recorded value is **ns per unit** (per candidate pair / per bid pair),
/// not µs of latency — the name carries the unit.
fn cost_model_scenarios(report: &mut BenchReport) {
    let base = base_instance();
    let trace = trace_for(&base, 512);
    let mut engine = Engine::new(
        base,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        EngineConfig {
            seed: 5,
            staleness_check_interval: 64,
            batch_policy: BatchPolicy::cost_model(),
            online_cost_calibration: true,
            ..EngineConfig::default()
        },
    );
    for chunk in trace.deltas.chunks(4) {
        let deltas: Vec<_> = chunk.iter().map(|t| t.delta.clone()).collect();
        engine.apply_batch(&deltas).expect("trace deltas are valid");
    }
    let (patch, solve) = engine.online_cost_estimates();
    report.record(
        "cost_model/patch_ns_per_candidate",
        vec![patch.expect("the driven trace exercises the greedy patch")],
    );
    report.record(
        "cost_model/solve_ns_per_bid",
        vec![solve.expect("the driven trace exercises a cold solve")],
    );
}

/// Serial vs pipelined client: the same query burst, once call-by-call
/// (one RTT per request) and once sent ahead with correlation-id
/// matching. Recorded per request.
fn pipeline_scenarios(report: &mut BenchReport) {
    const BURST: usize = 64;
    const ROUNDS: usize = 8;
    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_events: 40,
            num_users: 600,
            num_communities: 8,
            ..ClusteredConfig::default()
        },
        17,
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = EngineServer::serve_sharded(
        listener,
        sharded_serving_engine(dataset.instance, 5, 4, 1),
        Framing::Lines,
    )
    .unwrap();
    let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();

    let mut serial_us = Vec::new();
    for _ in 0..ROUNDS {
        for _ in 0..BURST {
            let start = Instant::now();
            client.query(EngineQuery::Utility).unwrap();
            serial_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
        }
    }
    report.record("service_dispatch/serial_query_rtt", serial_us);

    // One sample per burst (its per-request mean): pipelining only has
    // burst-granular timing, so fabricating per-request samples would
    // make the percentiles meaningless next to the serial scenario's.
    let mut pipelined_us = Vec::new();
    for _ in 0..ROUNDS {
        let burst: Vec<EngineRequest> = (0..BURST)
            .map(|_| EngineRequest::Query {
                query: EngineQuery::Utility,
            })
            .collect();
        let start = Instant::now();
        let results = client.pipeline(burst).unwrap();
        let per_request = start.elapsed().as_nanos() as f64 / 1_000.0 / BURST as f64;
        assert!(results.iter().all(|r| r.is_ok()));
        pipelined_us.push(per_request);
    }
    report.record("service_dispatch/pipelined_query_rtt", pipelined_us);

    drop(client);
    handle.shutdown().unwrap();
}

/// Repair throughput under concurrent query load: one writer applies
/// user-scoped deltas over TCP while a reader hammers either `Utility`
/// (served from the connection-thread query cache — never touches the
/// dispatch queue or the workers) or `MergedSnapshot` (still barriers
/// the worker pool per read). The comparison isolates what the read
/// *path* does to the repair path at a fixed concurrency budget: on any
/// core count, cached reads must disturb the writer far less than
/// barriering reads, and on multi-core hardware they leave apply RTT
/// essentially at its idle level (remaining single-core slowdown is CPU
/// time-sharing, not architecture).
fn concurrent_reader_scenarios(report: &mut BenchReport) {
    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_events: 40,
            num_users: 600,
            num_communities: 8,
            ..ClusteredConfig::default()
        },
        17,
    );
    let base = dataset.instance.clone();
    // A purely user-scoped trace (no announcements, no event-capacity
    // edits): every delta takes the worker fast path, so the writer's
    // RTT isolates exactly what reader load does to the repair path.
    let mut config = CommunityTraceConfig::partition_friendly(600, 4);
    config.base.weight_add_event = 0.0;
    config.base.weight_update_capacity = 0.0;
    let trace = generate_community_trace(&base, &dataset.event_communities, &config, 31);
    let user_deltas: Vec<InstanceDelta> = trace
        .deltas
        .into_iter()
        .map(|t| t.delta)
        .filter(|d| !is_broadcast(d))
        .collect();
    let cases: [(&str, usize, Option<EngineQuery>); 3] = [
        ("idle", 0, None),
        ("cached_reader", 1, Some(EngineQuery::Utility)),
        ("barrier_reader", 1, Some(EngineQuery::MergedSnapshot)),
    ];
    for (label, readers, query) in cases {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = EngineServer::serve_sharded(
            listener,
            sharded_serving_engine(base.clone(), 5, 4, 1),
            Framing::Lines,
        )
        .unwrap();
        let addr = handle.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let reader_handles: Vec<_> = (0..readers)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let query = query.expect("reader cases carry a query");
                std::thread::spawn(move || {
                    let mut client = EngineClient::connect(addr, Framing::Lines).unwrap();
                    let mut queries = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        client.query(query).unwrap();
                        queries += 1;
                    }
                    queries
                })
            })
            .collect();

        let mut writer = EngineClient::connect(addr, Framing::Lines).unwrap();
        let mut rtts = Vec::with_capacity(user_deltas.len());
        for delta in &user_deltas {
            let start = Instant::now();
            writer.apply(delta.clone()).unwrap();
            rtts.push(start.elapsed().as_nanos() as f64 / 1_000.0);
        }
        stop.store(true, Ordering::Relaxed);
        let read_queries: u64 = reader_handles.into_iter().map(|h| h.join().unwrap()).sum();
        drop(writer);
        handle.shutdown().unwrap();
        println!(
            "concurrent_readers/{label}: {readers} readers answered {read_queries} queries during the write run"
        );
        report.record(format!("concurrent_readers/writer_apply_rtt/{label}"), rtts);
    }
}

/// Durability scenarios (PR 6): what write-ahead logging adds to the
/// apply hot path under each fsync policy, and how recovery time scales
/// with the length of the WAL tail that must replay.
///
/// * `durability/apply/no_wal` — the in-process apply baseline.
/// * `durability/apply/fsync_{off,interval,always}` — the same applies
///   with every request logged through a [`DurabilityController`] first
///   (frame encode + append, plus whatever the fsync policy adds).
/// * `durability/recover_tail/{n}` — wall time of `recover()` over a log
///   of `n` records and no snapshot (the worst case: the whole tail
///   replays through the standard handle path).
fn durability_scenarios(report: &mut BenchReport) {
    use igepa_engine::{recover, DurabilityController, DurabilityPolicy};

    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_events: 40,
            num_users: 600,
            num_communities: 8,
            ..ClusteredConfig::default()
        },
        17,
    );
    let base = dataset.instance.clone();
    let trace = generate_community_trace(
        &base,
        &dataset.event_communities,
        &CommunityTraceConfig::partition_friendly(1024, 4),
        23,
    );
    let requests: Vec<igepa_engine::EngineRequest> = trace
        .deltas
        .iter()
        .map(|t| igepa_engine::EngineRequest::Apply {
            delta: t.delta.clone(),
        })
        .collect();
    let scratch =
        std::env::temp_dir().join(format!("igepa-bench-durability-{}", std::process::id()));

    let policies: [(&str, Option<DurabilityPolicy>); 4] = [
        ("no_wal", None),
        ("fsync_off", Some(DurabilityPolicy::Off)),
        (
            "fsync_interval",
            Some(DurabilityPolicy::Interval { millis: 5 }),
        ),
        ("fsync_always", Some(DurabilityPolicy::Always)),
    ];
    for (label, policy) in policies {
        let dir = scratch.join(label);
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = sharded_serving_engine(base.clone(), 5, 4, 1);
        let mut controller =
            policy.map(|p| DurabilityController::create(&dir, p).expect("scratch dir is writable"));
        let mut apply_us = Vec::with_capacity(requests.len());
        for (i, request) in requests.iter().enumerate() {
            let igepa_engine::EngineRequest::Apply { delta } = request else {
                unreachable!("the trace maps onto single applies");
            };
            let start = Instant::now();
            if let Some(controller) = &mut controller {
                controller
                    .log(i as u64 + 1, engine.catalog().epoch(), request)
                    .expect("wal append succeeds");
            }
            engine.apply(delta).expect("trace deltas are valid");
            apply_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
        }
        black_box(engine.utility());
        report.record(format!("durability/apply/{label}"), apply_us);
    }

    // Recovery time vs WAL-tail length: log the first `n` requests with
    // no checkpoint, then time full recoveries (fresh engine + replay).
    for &n in &[64usize, 256, 1024] {
        let dir = scratch.join(format!("tail-{n}"));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = sharded_serving_engine(base.clone(), 5, 4, 1);
        let mut controller = DurabilityController::create(&dir, DurabilityPolicy::Off)
            .expect("scratch dir is writable");
        for (i, request) in requests.iter().take(n).enumerate() {
            let igepa_engine::EngineRequest::Apply { delta } = request else {
                unreachable!("the trace maps onto single applies");
            };
            controller
                .log(i as u64 + 1, engine.catalog().epoch(), request)
                .expect("wal append succeeds");
            engine.apply(delta).expect("trace deltas are valid");
        }
        let expected = engine.utility();
        let mut recover_us = Vec::new();
        for _ in 0..3 {
            let start = Instant::now();
            let recovered = recover(
                &dir,
                || sharded_serving_engine(base.clone(), 5, 4, 1),
                |_| Err("no snapshot in this scenario".to_string()),
            )
            .expect("the log recovers");
            recover_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
            assert_eq!(
                recovered.engine.utility().to_bits(),
                expected.to_bits(),
                "recovery diverged from the logged run"
            );
        }
        report.record(format!("durability/recover_tail/{n}"), recover_us);
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

criterion_group!(
    engine,
    warm_engine_replay,
    single_delta_latency,
    sharded_scaling,
    service_dispatch
);

/// Overload scenarios (PR 9): what degradation costs.
///
/// * `overload/shed_latency/cap0` — RTT of a typed `Overloaded` refusal
///   at a saturated admission gate. A shed never reaches the
///   dispatcher, the WAL or a repair worker: it is decided and answered
///   on the connection thread, so this is the floor of the engine's
///   pushback latency.
/// * `overload/degraded_reads/cap0` — RTT of cached `Utility` reads on
///   a separate connection while a flooder hammers mutations into the
///   shedding gate: the "reads keep flowing" half of the degradation
///   contract, priced.
fn overload_scenarios(report: &mut BenchReport) {
    use igepa_engine::{AdmissionPolicy, ClientError, EngineError};
    use igepa_experiments::sharded_serving_engine_with_admission;

    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_events: 40,
            num_users: 600,
            num_communities: 8,
            ..ClusteredConfig::default()
        },
        17,
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    // Cap 0: the gate is saturated by construction, every mutation
    // sheds, and the measurements are deterministic in what they hit.
    let handle = EngineServer::serve_sharded(
        listener,
        sharded_serving_engine_with_admission(
            dataset.instance,
            5,
            4,
            1,
            AdmissionPolicy::bounded(0),
        ),
        Framing::Lines,
    )
    .unwrap();
    let addr = handle.local_addr();

    let shed_delta = InstanceDelta::UpdateInteractionScore {
        user: UserId::new(0),
        score: 0.5,
    };
    let mut client = EngineClient::connect(addr, Framing::Lines).unwrap();
    let mut rtts = Vec::with_capacity(512);
    for _ in 0..512 {
        let start = Instant::now();
        let refusal = client.apply(shed_delta.clone());
        rtts.push(start.elapsed().as_nanos() as f64 / 1_000.0);
        assert!(
            matches!(
                refusal,
                Err(ClientError::Engine(EngineError::Overloaded { .. }))
            ),
            "cap-0 server must shed every mutation"
        );
    }
    report.record("overload/shed_latency/cap0".to_string(), rtts);

    // Degraded reads: a flooder sheds continuously on one connection
    // while the measured connection reads from the barrier-free cache.
    let stop = Arc::new(AtomicBool::new(false));
    let flooder = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = EngineClient::connect(addr, Framing::Lines).unwrap();
            let mut sheds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if client
                    .apply(InstanceDelta::UpdateInteractionScore {
                        user: UserId::new(0),
                        score: 0.5,
                    })
                    .is_err()
                {
                    sheds += 1;
                }
            }
            sheds
        })
    };
    let mut reader = EngineClient::connect(addr, Framing::Lines).unwrap();
    let mut rtts = Vec::with_capacity(512);
    for _ in 0..512 {
        let start = Instant::now();
        reader.query(EngineQuery::Utility).unwrap();
        rtts.push(start.elapsed().as_nanos() as f64 / 1_000.0);
    }
    stop.store(true, Ordering::Relaxed);
    let sheds = flooder.join().unwrap();
    println!("overload/degraded_reads: flooder shed {sheds} mutations during the read run");
    report.record("overload/degraded_reads/cap0".to_string(), rtts);

    drop(client);
    drop(reader);
    handle.shutdown().unwrap();
}

/// Elastic resharding scenarios (this PR): what a live migration costs.
///
/// * `reshard/migration_pause/4to6` — latency of one full 4 -> 6 grow
///   on a loaded sharded engine: the pause mutations see while users,
///   quota shares and tracker contributions move to their new owners.
/// * `reshard/per_user_move/4to6` — the same pause divided by users
///   moved: the marginal cost of migrating one user's sub-state.
///
/// Each iteration grows 4 -> 6 (measured) and shrinks back 6 -> 4
/// (unmeasured), so every sample migrates the same deterministic user
/// set from the same starting shape.
fn reshard_scenarios(report: &mut BenchReport) {
    use igepa_engine::{EngineRequest, EngineResponse};
    use igepa_experiments::sharded_serving_engine;

    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_events: 40,
            num_users: 600,
            num_communities: 8,
            ..ClusteredConfig::default()
        },
        17,
    );
    let trace = generate_community_trace(
        &dataset.instance,
        &dataset.event_communities,
        &CommunityTraceConfig::partition_friendly(400, 4),
        29,
    );
    let mut engine = sharded_serving_engine(dataset.instance, 5, 4, 1);
    for timed in &trace.deltas {
        let response = engine.handle(&EngineRequest::Apply {
            delta: timed.delta.clone(),
        });
        assert!(
            matches!(response, EngineResponse::Applied { .. }),
            "generated trace applies cleanly"
        );
    }

    let mut pauses = Vec::with_capacity(64);
    let mut per_user = Vec::with_capacity(64);
    for _ in 0..64 {
        let start = Instant::now();
        let response = engine.handle(&EngineRequest::Reshard { num_shards: 6 });
        let pause = start.elapsed().as_nanos() as f64 / 1_000.0;
        let moved = match response {
            EngineResponse::Resharded { record, .. } => record.moved_users,
            other => panic!("Reshard answered {other:?}"),
        };
        assert!(moved > 0, "a loaded 4 -> 6 grow must move users");
        pauses.push(pause);
        per_user.push(pause / moved as f64);
        let shrunk = engine.handle(&EngineRequest::Reshard { num_shards: 4 });
        assert!(
            matches!(shrunk, EngineResponse::Resharded { .. }),
            "shrink back to the starting shape"
        );
    }
    report.record("reshard/migration_pause/4to6".to_string(), pauses);
    report.record("reshard/per_user_move/4to6".to_string(), per_user);
}

fn main() {
    // BENCH_JSON_ONLY=1 skips the interactive criterion groups and runs
    // just the machine-readable scenarios (the CI artifact path).
    if std::env::var("BENCH_JSON_ONLY").is_err() {
        engine();
    }
    let mut report = BenchReport::new();
    churn_scenarios(&mut report);
    view_diff_scenarios(&mut report);
    parallel_repair_scenarios(&mut report);
    utility_tracking_scenarios(&mut report);
    cost_model_scenarios(&mut report);
    pipeline_scenarios(&mut report);
    concurrent_reader_scenarios(&mut report);
    durability_scenarios(&mut report);
    overload_scenarios(&mut report);
    reshard_scenarios(&mut report);
    // Written to the workspace root so the perf trajectory is tracked
    // in one place across PRs (override with BENCH_JSON_PATH).
    report.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine.json"
    ));
}
