//! Serving-engine benchmarks: warm-start repair vs cold re-solve across
//! delta-batch sizes.
//!
//! The claim under test: absorbing a delta through the engine's greedy
//! patch is much cheaper than re-running a solver from scratch, and the
//! advantage persists (though shrinks per delta) when deltas arrive in
//! bursts handled by one repair pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use igepa_algos::{ArrangementAlgorithm, GreedyArrangement};
use igepa_core::{ConstantInterest, Instance, NeverConflict};
use igepa_datagen::{
    generate_clustered_dataset, generate_community_trace, generate_synthetic, generate_trace,
    ClusteredConfig, CommunityTraceConfig, DeltaTrace, SyntheticConfig, TraceConfig,
};
use igepa_engine::{
    Engine, EngineClient, EngineConfig, EngineQuery, EngineServer, EngineService, Framing,
};
use igepa_experiments::sharded_serving_engine;
use std::hint::black_box;
use std::net::TcpListener;

fn base_instance() -> Instance {
    generate_synthetic(
        &SyntheticConfig {
            num_events: 20,
            num_users: 200,
            bids_per_user: 5,
            ..SyntheticConfig::default()
        },
        3,
    )
}

fn trace_for(instance: &Instance, num_deltas: usize) -> DeltaTrace {
    generate_trace(
        instance,
        &TraceConfig {
            num_deltas,
            ..TraceConfig::default()
        },
        11,
    )
}

fn fresh_engine(instance: Instance) -> Engine {
    Engine::new(
        instance,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        EngineConfig {
            seed: 5,
            // Measure pure repair cost: no periodic cold solves mixed in.
            staleness_check_interval: 0,
            ..EngineConfig::default()
        },
    )
}

/// Warm path vs cold re-solve: one engine absorbs the whole trace in
/// `batch`-sized bursts, against re-solving from scratch per burst.
fn warm_engine_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_warm_vs_cold");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(900));

    let base = base_instance();
    let trace = trace_for(&base, 256);

    for &batch in &[1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("warm_repair", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut engine = fresh_engine(base.clone());
                    for chunk in trace.deltas.chunks(batch) {
                        let deltas: Vec<_> = chunk.iter().map(|t| t.delta.clone()).collect();
                        engine.apply_batch(&deltas).expect("trace deltas are valid");
                    }
                    black_box(engine.utility())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cold_resolve", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut instance = base.clone();
                    let solver = GreedyArrangement;
                    let mut utility = 0.0;
                    for (i, chunk) in trace.deltas.chunks(batch).enumerate() {
                        for timed in chunk {
                            instance
                                .apply_delta(&timed.delta, &NeverConflict, &ConstantInterest(0.5))
                                .expect("trace deltas are valid");
                        }
                        let arrangement = solver.run_seeded(&instance, i as u64);
                        utility = arrangement.utility_value(&instance);
                    }
                    black_box(utility)
                })
            },
        );
    }
    group.finish();
}

/// Single-delta absorption cost on growing instances (the serving hot path).
fn single_delta_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_single_delta");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));

    for &num_users in &[200usize, 800] {
        let base = generate_synthetic(
            &SyntheticConfig {
                num_events: 20,
                num_users,
                bids_per_user: 5,
                ..SyntheticConfig::default()
            },
            4,
        );
        let trace = trace_for(&base, 64);
        group.bench_with_input(BenchmarkId::new("apply", num_users), &num_users, |b, _| {
            b.iter(|| {
                let mut engine = fresh_engine(base.clone());
                for timed in &trace.deltas {
                    engine.apply(&timed.delta).expect("trace deltas are valid");
                }
                black_box(engine.arrangement().len())
            })
        });
    }
    group.finish();
}

/// Sharded vs monolithic per-delta latency on a partition-friendly
/// multi-community trace: the claim under test is that per-delta latency
/// *improves* as the shard count grows (each delta touches one smaller
/// repair loop, and staleness/escalation solves run over sub-instances).
fn sharded_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_sharded_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));

    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_events: 40,
            num_users: 600,
            num_communities: 8,
            ..ClusteredConfig::default()
        },
        17,
    );
    let base = dataset.instance.clone();
    let trace = generate_community_trace(
        &base,
        &dataset.event_communities,
        &CommunityTraceConfig::partition_friendly(512, 4),
        23,
    );
    let deltas: Vec<_> = trace.deltas.iter().map(|t| t.delta.clone()).collect();

    for &shards in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("replay", shards), &shards, |b, &shards| {
            b.iter(|| {
                // Same construction as the `serve --shards N` study, so the
                // bench measures exactly the configuration the study reports.
                let mut engine = sharded_serving_engine(base.clone(), 5, shards);
                for delta in &deltas {
                    engine.apply(delta).expect("trace deltas are valid");
                }
                black_box(engine.utility())
            })
        });
    }
    group.finish();
}

/// Service-dispatch overhead: the same read query answered by an
/// in-process `EngineService` vs over the TCP loopback transport with 1
/// and 4 per-shard worker threads. Queries barrier the worker pool, so
/// the TCP numbers put the whole decode → barrier → answer → encode →
/// socket round-trip on the perf trajectory next to raw dispatch.
fn service_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_service_dispatch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(900));

    const QUERIES_PER_ITER: usize = 64;
    let dataset = generate_clustered_dataset(
        &ClusteredConfig {
            num_events: 40,
            num_users: 600,
            num_communities: 8,
            ..ClusteredConfig::default()
        },
        17,
    );
    let base = dataset.instance.clone();

    group.bench_function("in_process", |b| {
        let mut service = EngineService::new(sharded_serving_engine(base.clone(), 5, 4));
        b.iter(|| {
            let mut total = 0.0;
            for _ in 0..QUERIES_PER_ITER {
                if let Ok(igepa_engine::EngineResponse::Utility { total: t, .. }) = service
                    .try_handle(&igepa_engine::EngineRequest::Query {
                        query: EngineQuery::Utility,
                    })
                {
                    total += t;
                }
            }
            black_box(total)
        })
    });

    for &workers in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("tcp_loopback", workers),
            &workers,
            |b, &workers| {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let handle = EngineServer::serve_sharded(
                    listener,
                    sharded_serving_engine(base.clone(), 5, workers),
                    Framing::Lines,
                )
                .unwrap();
                let mut client =
                    EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
                b.iter(|| {
                    let mut total = 0.0;
                    for _ in 0..QUERIES_PER_ITER {
                        if let Ok(igepa_engine::EngineResponse::Utility { total: t, .. }) =
                            client.query(EngineQuery::Utility)
                        {
                            total += t;
                        }
                    }
                    black_box(total)
                });
                drop(client);
                handle.shutdown().unwrap();
            },
        );
    }
    group.finish();
}

criterion_group!(
    engine,
    warm_engine_replay,
    single_delta_latency,
    sharded_scaling,
    service_dispatch
);
criterion_main!(engine);
