//! Figure 1 benchmark groups: one group per subfigure (`fig1a` … `fig1f`),
//! one benchmark per (algorithm, sweep point) pair.
//!
//! Each benchmark measures the wall-clock of running the algorithm on a
//! scaled-down instance of that sweep point, and Criterion's report doubles
//! as the per-point timing series. The utility series themselves (the
//! y-axis of the paper's figure) are produced by
//! `cargo run --release -p igepa-experiments -- figure1-all`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use igepa_bench::paper_roster;
use igepa_datagen::generate_synthetic;
use igepa_experiments::Figure1Factor;
use std::hint::black_box;

/// Scale factor applied to |V| and |U| of each sweep point.
const BENCH_SCALE: f64 = 0.1;

fn bench_factor(c: &mut Criterion, factor: Figure1Factor) {
    let mut group = c.benchmark_group(factor.id());
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let base = igepa_datagen::SyntheticConfig::paper_default();
    for value in factor.sweep_values() {
        let mut config = factor.apply(&base, value);
        config.num_events = ((config.num_events as f64 * BENCH_SCALE).round() as usize).max(4);
        config.num_users = ((config.num_users as f64 * BENCH_SCALE).round() as usize).max(20);
        let instance = generate_synthetic(&config, 42);
        for (name, algorithm) in paper_roster() {
            group.bench_with_input(BenchmarkId::new(name, value), &instance, |b, instance| {
                b.iter(|| black_box(igepa_bench::run_once(algorithm.as_ref(), instance, 7)))
            });
        }
    }
    group.finish();
}

fn fig1a(c: &mut Criterion) {
    bench_factor(c, Figure1Factor::NumEvents);
}
fn fig1b(c: &mut Criterion) {
    bench_factor(c, Figure1Factor::NumUsers);
}
fn fig1c(c: &mut Criterion) {
    bench_factor(c, Figure1Factor::ConflictProbability);
}
fn fig1d(c: &mut Criterion) {
    bench_factor(c, Figure1Factor::FriendProbability);
}
fn fig1e(c: &mut Criterion) {
    bench_factor(c, Figure1Factor::MaxEventCapacity);
}
fn fig1f(c: &mut Criterion) {
    bench_factor(c, Figure1Factor::MaxUserCapacity);
}

criterion_group!(figure1, fig1a, fig1b, fig1c, fig1d, fig1e, fig1f);
criterion_main!(figure1);
